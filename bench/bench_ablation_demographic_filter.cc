// Ablation — demographic filtering (Section 5.2.1). The paper's claims:
// (a) blending demographic hot videos broadens recommendations without
// the latency cost of transitive-closure candidate expansion, and
// (b) it "partly solves the new user problem" — cold users, for whom the
// MF path has nothing, still get a useful page.
//
// Protocol: a cold-heavy world (many unregistered, low-activity users)
// in the A/B harness. Arms:
//   rMF       — the plain engine (empty pages for cold users);
//   rMF+DB    — the full RecommendationService (per-group training +
//               demographic filtering).
// The metric that exposes the difference is clicks-per-request, which
// charges empty pages; CTR-per-impression alone hides the coverage gap.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "eval/ab_test.h"
#include "eval/experiment_runner.h"
#include "service/recommendation_service.h"

using namespace rtrec;

int main() {
  std::printf("=== Ablation: demographic filtering on cold-heavy traffic "
              "===\n\n");
  WorldConfig config = BenchWorldConfig(909);
  config.population.num_users = 800;
  config.population.registered_fraction = 0.5;
  config.population.mean_activity = 1.0;     // Light engagement.
  config.population.activity_sigma = 1.2;    // Many near-inactive users.
  const SyntheticWorld world(config);

  RecEngine rmf(world.TypeResolver(),
                DefaultEngineOptions(UpdatePolicy::kCombine));

  RecommendationService::Options service_options;
  service_options.engine = DefaultEngineOptions(UpdatePolicy::kCombine);
  RecommendationService service(world.TypeResolver(), service_options);
  for (const SimUser& user : world.population().users()) {
    if (user.profile.registered) {
      service.RegisterProfile(user.id, user.profile);
    }
  }

  AbTestHarness::Options ab_options;
  ab_options.num_days = 6;
  ab_options.warmup_days = 2;
  ab_options.requests_per_user = 2;
  ab_options.top_n = 10;
  AbTestHarness harness(&world, ab_options);
  const auto results = harness.Run({&rmf, &service});

  TablePrinter table({"arm", "requests", "empty pages", "impressions",
                      "CTR/impression", "clicks/request"});
  for (const ArmResult& arm : results) {
    table.AddRow({arm.name, std::to_string(arm.requests),
                  std::to_string(arm.empty_pages) + " (" +
                      Cell(100.0 * static_cast<double>(arm.empty_pages) /
                               static_cast<double>(
                                   arm.requests == 0 ? 1 : arm.requests),
                           1) +
                      "%)",
                  std::to_string(arm.impressions), Cell(arm.OverallCtr()),
                  Cell(arm.ClicksPerRequest())});
  }
  table.Print(std::cout);
  std::printf("\nexpected shape (paper Section 5.2.1): the plain engine "
              "returns empty pages for cold users; demographic filtering "
              "answers every request (hot-video fallback), so its "
              "clicks-per-request is higher even when per-impression CTR "
              "is diluted by popularity content.\n");
  return 0;
}
