// Ablation — new-video freshness. The paper's core motivation for
// real-time training: "the model should be updated in real-time to
// capture users' instant interests in very short delay (in seconds)".
// The sharpest observable consequence is *recommendability propagation*:
// once a freshly released video earns its first co-watches, how soon can
// each system recommend it at all?
//
//   - rMF maintains the similar-video tables incrementally, so a release
//     is reachable (it has similar-video entries) within seconds of its
//     first confident co-watch.
//   - A daily-batch model (AR) cannot surface the release until the
//     nightly retrain mines rules over the day's baskets.
//
// Protocol: ~35% of the catalog is released across days 1-6 with
// front-page promotion; both systems consume the identical stream; at
// end-of-day (before the nightly retrain) and again after it we count
// the fresh videos each system could recommend. We also report the
// same-day share of top-10 recommendations, which shows the second-order
// effect (fresh videos are reachable immediately but must still outrank
// incumbents to claim top slots).

#include <cstdio>
#include <iostream>
#include <set>

#include "baselines/assoc_rules.h"
#include "core/engine.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Ablation: new-video freshness (real-time vs daily "
              "batch) ===\n\n");
  WorldConfig config = BenchWorldConfig(606);
  config.population.num_users = 600;
  config.catalog.staggered_release_fraction = 0.35;
  config.catalog.release_window_days = 6;
  config.behavior.new_release_browse_rate = 0.12;  // Front-page promotion.
  const SyntheticWorld world(config);

  RecEngine rmf(world.TypeResolver(),
                DefaultEngineOptions(UpdatePolicy::kCombine));
  AssociationRuleRecommender ar;

  TablePrinter table({"day", "releases", "rMF reachable same-day",
                      "AR reachable same-day", "AR reachable next day"});

  std::uint64_t rmf_same_total = 0, ar_same_total = 0, ar_next_total = 0,
                releases_total = 0;
  std::vector<VideoId> previous_day_releases;

  const int kDays = 7;
  for (int day = 0; day < kDays; ++day) {
    for (const UserAction& action : world.GenerateDay(day)) {
      rmf.Observe(action);
      ar.Observe(action);
    }
    const Timestamp day_end = (day + 1) * kMillisPerDay;

    // Yesterday's releases, measured *after* last night's retrain gave AR
    // its chance.
    std::size_t ar_next = 0;
    for (VideoId v : previous_day_releases) {
      if (ar.IsConsequent(v)) ++ar_next;
    }
    ar_next_total += ar_next;

    // Today's releases, measured before tonight's retrain: could each
    // system recommend them *today*?
    const std::vector<VideoId>& releases = world.catalog().ReleasedOn(day);
    std::size_t rmf_same = 0, ar_same = 0;
    for (VideoId v : releases) {
      // Reachable for rMF = the video has similar-video entries (it then
      // appears in its partners' lists too; updates are bidirectional).
      if (!rmf.sim_table().Query(v, day_end, 1).empty()) ++rmf_same;
      if (ar.IsConsequent(v)) ++ar_same;
    }
    if (day > 0 && !releases.empty()) {
      table.AddRow({std::to_string(day), std::to_string(releases.size()),
                    std::to_string(rmf_same) + "/" +
                        std::to_string(releases.size()),
                    std::to_string(ar_same) + "/" +
                        std::to_string(releases.size()),
                    day + 1 < kDays ? "(next row)" : "-"});
      rmf_same_total += rmf_same;
      ar_same_total += ar_same;
      releases_total += releases.size();
    }
    previous_day_releases.assign(releases.begin(), releases.end());

    // Nightly batch retrain.
    ar.RetrainBatch(day_end);
  }
  table.Print(std::cout);

  std::printf("\nsame-day recommendability: rMF %llu/%llu (%.0f%%) vs "
              "AR %llu/%llu (%.0f%%)\n",
              static_cast<unsigned long long>(rmf_same_total),
              static_cast<unsigned long long>(releases_total),
              releases_total == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(rmf_same_total) /
                        static_cast<double>(releases_total),
              static_cast<unsigned long long>(ar_same_total),
              static_cast<unsigned long long>(releases_total),
              releases_total == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(ar_same_total) /
                        static_cast<double>(releases_total));
  std::printf("next-day recommendability (after nightly retrain), AR: "
              "%llu of the previous days' releases\n",
              static_cast<unsigned long long>(ar_next_total));
  std::printf("\nexpected shape: rMF reaches nearly every promoted release "
              "the same day (incremental similar-video tables); AR reaches "
              "none until the nightly retrain — a propagation delay of up "
              "to 24 h vs seconds.\n");
  return 0;
}
