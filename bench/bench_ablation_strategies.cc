// Ablation — online training strategies (DESIGN.md item: the paper's
// single-pass strategy vs the reservoir-replay alternative of the
// related work [12, 13], plus the neighbourhood-CF reference [17]).
// Reports offline recall@10, average rank, and wall-clock training time;
// the paper's argument is that the reservoir's extra replay work buys
// little on large streams while pure online updates keep the model
// current at a fraction of the cost.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "baselines/item_cf.h"
#include "baselines/reservoir_mf.h"
#include "core/engine.h"
#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

namespace {

struct Row {
  std::string name;
  OfflineResult result;
  double train_seconds = 0.0;
};

Row Run(Recommender& model, const Dataset& train, const Dataset& test) {
  const OfflineEvaluator evaluator{};
  const auto start = std::chrono::steady_clock::now();
  evaluator.Train(model, train);
  const auto end = std::chrono::steady_clock::now();
  Row row;
  row.name = model.name();
  const auto data = evaluator.CollectEvalData(model, test);
  row.result.recall_at = RecallCurve(data, 10);
  row.result.avg_rank = AverageRank(data);
  row.train_seconds =
      std::chrono::duration<double>(end - start).count();
  return row;
}

}  // namespace

int main() {
  std::printf("=== Ablation: training strategies (single-pass rMF vs "
              "reservoir replay vs item CF) ===\n\n");
  const SyntheticWorld world(BenchWorldConfig(11));
  const Dataset cleaned =
      Dataset(world.GenerateDays(0, 7)).FilterMinActivity(15, 10);
  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);
  std::printf("workload: %zu train / %zu test actions\n\n", train.size(),
              test.size());

  std::vector<Row> rows;

  RecEngine rmf(world.TypeResolver(),
                DefaultEngineOptions(UpdatePolicy::kCombine));
  rows.push_back(Run(rmf, train, test));

  for (std::size_t replay : {2u, 8u}) {
    ReservoirMfRecommender::Options options;
    options.engine = DefaultEngineOptions(UpdatePolicy::kCombine);
    options.reservoir_size = 8192;
    options.replay_per_action = replay;
    ReservoirMfRecommender reservoir(world.TypeResolver(), options);
    Row row = Run(reservoir, train, test);
    row.name += "(x" + std::to_string(replay) + ")";
    rows.push_back(std::move(row));
  }

  ItemCfRecommender item_cf;
  rows.push_back(Run(item_cf, train, test));

  TablePrinter table({"strategy", "recall@10", "avgrank", "train time (s)",
                      "rel. cost"});
  const double base_seconds = rows.front().train_seconds;
  for (const Row& row : rows) {
    table.AddRow({row.name, Cell(row.result.recall(10)),
                  Cell(row.result.avg_rank),
                  Cell(row.train_seconds, 2),
                  Cell(base_seconds <= 0 ? 0.0
                                         : row.train_seconds / base_seconds,
                       1) + "x"});
  }
  table.Print(std::cout);
  std::printf("\nexpected shape (paper's Section 1 argument): reservoir "
              "replay multiplies training cost for little or no recall "
              "gain on a large stream; the single-pass strategy is the "
              "efficient point.\n"
              "note: item-based CF is competitive at this small dense "
              "scale (its co-count tables cover the whole catalog); the "
              "paper's model-based advantage appears at production "
              "sparsity, where pure co-counts starve.\n");
  return 0;
}
