// Figure 3 — effectiveness of demographic training: global model vs
// per-group models, for all three update policies, on recall@10 and the
// average-rank metric. Expected shape (the paper's): group models beat
// the global model on both metrics, ~10-20% improvement on recall.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/engine.h"
#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Figure 3: global vs demographic-group training ===\n\n");
  const SyntheticWorld world(BenchWorldConfig());
  DemographicGrouper grouper;
  world.RegisterProfiles(grouper);
  const FeedbackConfig feedback;

  const Dataset cleaned =
      Dataset(world.GenerateDays(0, 7)).FilterMinActivity(15, 10);
  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);
  const auto groups = LargestGroups(train, grouper, 3, feedback);
  if (groups.empty()) {
    std::fprintf(stderr, "no demographic groups in the training data\n");
    return 1;
  }

  const OfflineEvaluator evaluator{};
  TablePrinter table({"metrics", "BinaryModel", "ConfModel", "CombineModel"});

  // Evaluation slice: the union of the three largest groups' test data,
  // mirroring the paper's comparison of global-model vs group-models.
  // Global models are trained once per policy and evaluated per group;
  // group models are trained per (policy, group) on the group's slice.
  for (const bool use_groups : {false, true}) {
    std::vector<double> recalls, ranks;
    for (UpdatePolicy policy :
         {UpdatePolicy::kBinary, UpdatePolicy::kConfidenceAsRating,
          UpdatePolicy::kCombine}) {
      std::unique_ptr<RecEngine> global_engine;
      if (!use_groups) {
        global_engine = std::make_unique<RecEngine>(
            world.TypeResolver(), DefaultEngineOptions(policy));
        evaluator.Train(*global_engine, train);
      }
      double recall_sum = 0.0, rank_sum = 0.0;
      for (GroupId group : groups) {
        const Dataset group_test = test.FilterGroup(grouper, group);
        OfflineResult result;
        if (use_groups) {
          RecEngine engine(world.TypeResolver(),
                           DefaultEngineOptions(policy));
          result = evaluator.Evaluate(engine,
                                      train.FilterGroup(grouper, group),
                                      group_test);
        } else {
          const auto data =
              evaluator.CollectEvalData(*global_engine, group_test);
          result.recall_at = RecallCurve(data, 10);
          result.avg_rank = AverageRank(data);
        }
        recall_sum += result.recall(10);
        rank_sum += result.avg_rank;
      }
      recalls.push_back(recall_sum / static_cast<double>(groups.size()));
      ranks.push_back(rank_sum / static_cast<double>(groups.size()));
    }
    const std::string tag = use_groups ? "(groups)" : "(global)";
    table.AddRow({"recall@10 " + tag, Cell(recalls[0]), Cell(recalls[1]),
                  Cell(recalls[2])});
    table.AddRow({"avgrank   " + tag, Cell(ranks[0]), Cell(ranks[1]),
                  Cell(ranks[2])});
    if (use_groups) {
      // Per-group breakdown (the individual bars of the paper's figure),
      // CombineModel only, to keep the table compact.
      int group_number = 0;
      for (GroupId group : groups) {
        ++group_number;
        RecEngine engine(world.TypeResolver(),
                         DefaultEngineOptions(UpdatePolicy::kCombine));
        const OfflineResult result = evaluator.Evaluate(
            engine, train.FilterGroup(grouper, group),
            test.FilterGroup(grouper, group));
        table.AddRow({"  Group" + std::to_string(group_number) + " (" +
                          DemographicGrouper::GroupName(group) +
                          ", Combine)",
                      "", "", Cell(result.recall(10)) + " / " +
                                  Cell(result.avg_rank)});
      }
    }
  }
  table.Print(std::cout);
  std::printf("\nexpected shape (paper): group rows beat global rows — "
              "higher recall, lower avgrank (avg. improvement >10%%)\n");
  return 0;
}
