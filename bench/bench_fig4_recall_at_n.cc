// Figure 4 — recall@N (N = 1..10) of BinaryModel / ConfModel /
// CombineModel on the three largest demographic groups. Expected shape:
// CombineModel on top (~10% over BinaryModel), ConfModel trailing
// (implicit-feedback weights used as raw ratings inject noise).

#include <cstdio>
#include <iostream>

#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Figure 4: recall@N of the alternative models ===\n\n");
  const SyntheticWorld world(BenchWorldConfig());
  DemographicGrouper grouper;
  world.RegisterProfiles(grouper);
  const FeedbackConfig feedback;

  const Dataset cleaned =
      Dataset(world.GenerateDays(0, 7)).FilterMinActivity(15, 10);
  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);
  const auto groups = LargestGroups(train, grouper, 3, feedback);

  int group_number = 0;
  for (GroupId group : groups) {
    ++group_number;
    const Dataset group_train = train.FilterGroup(grouper, group);
    const Dataset group_test = test.FilterGroup(grouper, group);
    const auto results =
        ComparePolicies(world.TypeResolver(), group_train, group_test,
                        OfflineEvaluator::Options{});

    std::printf("--- recall@N, Group%d (%s): %zu train / %zu test actions "
                "---\n",
                group_number,
                DemographicGrouper::GroupName(group).c_str(),
                group_train.size(), group_test.size());
    TablePrinter table({"N", results[0].model_name, results[1].model_name,
                        results[2].model_name});
    for (std::size_t n = 1; n <= 10; ++n) {
      table.AddRow({std::to_string(n), Cell(results[0].recall(n)),
                    Cell(results[1].recall(n)),
                    Cell(results[2].recall(n))});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "reproduced shape: CombineModel > BinaryModel at every N "
      "(adjustable updating helps).\n"
      "ConfModel divergence vs the paper is discussed in EXPERIMENTS.md.\n");
  return 0;
}
