// Figure 5 — average percentile rank (Eq. 14) of BinaryModel / ConfModel
// / CombineModel on the three largest demographic groups. Lower is
// better. Expected shape: CombineModel lowest; all values hover around
// 0.5 (the paper notes the recommended videos sit mid-list on average).

#include <cstdio>
#include <iostream>

#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Figure 5: rank metric of the alternative models ===\n\n");
  const SyntheticWorld world(BenchWorldConfig());
  DemographicGrouper grouper;
  world.RegisterProfiles(grouper);
  const FeedbackConfig feedback;

  const Dataset cleaned =
      Dataset(world.GenerateDays(0, 7)).FilterMinActivity(15, 10);
  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);
  const auto groups = LargestGroups(train, grouper, 3, feedback);

  TablePrinter table(
      {"", "BinaryModel", "ConfModel", "CombineModel"});
  int group_number = 0;
  for (GroupId group : groups) {
    ++group_number;
    const Dataset group_train = train.FilterGroup(grouper, group);
    const Dataset group_test = test.FilterGroup(grouper, group);
    const auto results =
        ComparePolicies(world.TypeResolver(), group_train, group_test,
                        OfflineEvaluator::Options{});
    table.AddRow({"Group" + std::to_string(group_number),
                  Cell(results[0].avg_rank), Cell(results[1].avg_rank),
                  Cell(results[2].avg_rank)});
  }
  table.Print(std::cout);
  std::printf("\n(lower is better; expected shape: CombineModel lowest in "
              "each group, values around 0.5)\n");
  return 0;
}
