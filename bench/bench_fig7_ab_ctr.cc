// Figure 7 + Table 5 — online A/B test: daily CTR of Hot, AR, SimHash,
// and rMF over ten days of simulated live traffic, plus the pairwise CTR
// improvement matrix. Expected shape: rMF on top most days, AR and
// SimHash similar in the middle, Hot last.

#include <cstdio>
#include <iostream>

#include "baselines/assoc_rules.h"
#include "baselines/hot_recommender.h"
#include "baselines/simhash_cf.h"
#include "core/engine.h"
#include "eval/ab_test.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Figure 7: A/B test CTR over ten days ===\n\n");
  WorldConfig config = BenchWorldConfig(404);
  config.population.num_users = 800;
  // The A/B world is tuned so personalization has headroom, matching the
  // production setting where pure popularity underperforms: a flatter
  // popularity head and sharper tastes.
  config.catalog.zipf_exponent = 0.4;
  config.behavior.affinity_sharpness = 5.0;
  const SyntheticWorld world(config);

  HotRecommender hot;
  AssociationRuleRecommender ar;
  SimHashCfRecommender simhash;
  RecEngine rmf(world.TypeResolver(),
                DefaultEngineOptions(UpdatePolicy::kCombine));

  AbTestHarness::Options options;
  options.num_days = 10;
  options.warmup_days = 2;
  options.requests_per_user = 2;
  options.top_n = 10;
  AbTestHarness harness(&world, options);

  const std::vector<Recommender*> arms = {&hot, &ar, &simhash, &rmf};
  const auto results = harness.Run(arms);

  TablePrinter table({"day", results[0].name, results[1].name,
                      results[2].name, results[3].name});
  for (int day = 0; day < options.num_days; ++day) {
    std::vector<std::string> row = {std::to_string(day + 1)};
    for (const ArmResult& arm : results) {
      row.push_back(Cell(arm.daily_ctr[static_cast<std::size_t>(day)]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::printf("\noverall CTR: ");
  for (const ArmResult& arm : results) {
    std::printf("%s=%.4f (%llu/%llu)  ", arm.name.c_str(), arm.OverallCtr(),
                static_cast<unsigned long long>(arm.clicks),
                static_cast<unsigned long long>(arm.impressions));
  }
  std::printf("\n\n=== Table 5: pairwise CTR improvement "
              "(row over column, %%) ===\n\n");
  const auto matrix = CtrImprovementMatrix(results);
  TablePrinter improvements({"", results[0].name, results[1].name,
                             results[2].name, results[3].name});
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::vector<std::string> row = {results[i].name};
    for (std::size_t j = 0; j < results.size(); ++j) {
      row.push_back(Cell(100.0 * matrix[i][j], 1));
    }
    improvements.AddRow(std::move(row));
  }
  improvements.Print(std::cout);
  std::printf("\nexpected shape (paper): rMF beats the others in most "
              "days; Hot worst; AR ~ SimHash in between\n");
  return 0;
}
