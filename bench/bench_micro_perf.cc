// Micro-performance suite (google-benchmark) backing the paper's
// production claims (Section 6 intro: milliseconds latency, billions of
// tuples/day) and the design-choice ablations of DESIGN.md:
//   - Algorithm 1 update cost and Eq. 2 prediction cost;
//   - end-to-end Recommend latency with candidate selection vs a full
//     catalog scan (the Section 4.1 argument);
//   - KV-store and similar-table primitives;
//   - Fig. 2 topology throughput vs parallelism (single-writer via
//     fields grouping vs locked stores is exercised implicitly).

#include <benchmark/benchmark.h>

#include <memory>

#include "core/engine.h"
#include "kvstore/kv_store.h"
#include "common/lru_cache.h"
#include "core/topology_factory.h"
#include "kvstore/checkpoint.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"
#include "stream/topology.h"

namespace rtrec {
namespace {

UserAction Play(UserId u, VideoId v, Timestamp t) {
  UserAction a;
  a.user = u;
  a.video = v;
  a.type = ActionType::kPlayTime;
  a.view_fraction = 1.0;
  a.time = t;
  return a;
}

// ---------------------------------------------------------------------
// Algorithm 1: single-action model update.
void BM_OnlineMfUpdate(benchmark::State& state) {
  const int factors = static_cast<int>(state.range(0));
  FactorStore::Options options;
  options.num_factors = factors;
  FactorStore store(options);
  MfModelConfig config;
  config.num_factors = factors;
  OnlineMf model(&store, config);
  Rng rng(1);
  Timestamp t = 0;
  for (auto _ : state) {
    const UserId u = 1 + rng.NextUint64(10000);
    const VideoId v = 1 + rng.NextUint64(2000);
    benchmark::DoNotOptimize(model.Update(Play(u, v, ++t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineMfUpdate)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

// Eq. 2 preference prediction.
void BM_Predict(benchmark::State& state) {
  FactorStore::Options options;
  options.num_factors = static_cast<int>(state.range(0));
  FactorStore store(options);
  MfModelConfig config;
  config.num_factors = options.num_factors;
  OnlineMf model(&store, config);
  for (UserId u = 1; u <= 100; ++u) {
    for (VideoId v = 1; v <= 100; ++v) {
      if ((u + v) % 7 == 0) model.Update(Play(u, v, 0));
    }
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Predict(1 + rng.NextUint64(100), 1 + rng.NextUint64(100)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Predict)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------
// Serving path: candidate selection via similar-video tables (the
// production design) vs scoring the whole catalog (the strawman the
// paper's Section 4.1 rules out).
struct ServingFixture {
  // A mid-sized catalog so the full-scan strawman pays the linear cost
  // the paper's Section 4.1 argues against (their catalog has millions
  // of videos; the gap grows with catalog size).
  static WorldConfig FixtureConfig() {
    WorldConfig config = SmallWorldConfig(5);
    config.catalog.num_videos = 4000;
    config.population.num_users = 500;
    return config;
  }

  ServingFixture() : world(FixtureConfig()) {
    engine = std::make_unique<RecEngine>(
        world.TypeResolver(), DefaultEngineOptions(UpdatePolicy::kCombine));
    for (const UserAction& action : world.GenerateDays(0, 3)) {
      engine->Observe(action);
    }
  }
  SyntheticWorld world;
  std::unique_ptr<RecEngine> engine;
};

ServingFixture& Serving() {
  static ServingFixture& fixture = *new ServingFixture();
  return fixture;
}

void BM_RecommendWithCandidateSelection(benchmark::State& state) {
  ServingFixture& f = Serving();
  Rng rng(3);
  for (auto _ : state) {
    RecRequest request;
    request.user = 1 + rng.NextUint64(f.world.population().size());
    request.top_n = 10;
    request.now = 3 * kMillisPerDay;
    benchmark::DoNotOptimize(f.engine->Recommend(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecommendWithCandidateSelection);

void BM_RecommendFullCatalogScan(benchmark::State& state) {
  ServingFixture& f = Serving();
  Rng rng(4);
  OnlineMf& model = f.engine->model();
  const std::size_t catalog_size = f.world.catalog().size();
  for (auto _ : state) {
    const UserId user = 1 + rng.NextUint64(f.world.population().size());
    // Score every video in the catalog (what candidate selection avoids).
    double best = -1e18;
    VideoId best_video = 0;
    for (VideoId v = 1; v <= catalog_size; ++v) {
      const double score = model.Predict(user, v);
      if (score > best) {
        best = score;
        best_video = v;
      }
    }
    benchmark::DoNotOptimize(best_video);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecommendFullCatalogScan);

// YouTube-style limited transitive closure (2-hop candidate expansion):
// the paper's Section 5.2.1 rejects it for latency in favour of
// demographic filtering; this measures the cost it was avoiding.
void BM_RecommendTwoHopClosure(benchmark::State& state) {
  static RecEngine& engine = *[]() -> RecEngine* {
    ServingFixture& f = Serving();
    RecEngine::Options options = f.engine->options();
    options.recommend.candidate_hops = 2;
    RecEngine* e = new RecEngine(f.world.TypeResolver(), options);
    for (const UserAction& action : f.world.GenerateDays(0, 3)) {
      e->Observe(action);
    }
    return e;
  }();
  ServingFixture& f = Serving();
  Rng rng(5);
  for (auto _ : state) {
    RecRequest request;
    request.user = 1 + rng.NextUint64(f.world.population().size());
    request.top_n = 10;
    request.now = 3 * kMillisPerDay;
    benchmark::DoNotOptimize(engine.Recommend(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecommendTwoHopClosure);

// ---------------------------------------------------------------------
// Store primitives.
void BM_KvStorePutGet(benchmark::State& state) {
  ShardedKvStoreOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(0));
  ShardedKvStore store(options);
  Rng rng(6);
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(rng.NextUint64(100000));
    store.Put(key, "value");
    benchmark::DoNotOptimize(store.Get(key));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_KvStorePutGet)->Arg(1)->Arg(16)->Arg(64);

void BM_SimTableUpdate(benchmark::State& state) {
  SimTableStore table;
  Rng rng(7);
  Timestamp t = 0;
  for (auto _ : state) {
    table.Update(1 + rng.NextUint64(2000), 1 + rng.NextUint64(2000),
                 rng.NextDouble(), ++t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimTableUpdate);

void BM_SimTableQuery(benchmark::State& state) {
  SimTableStore table;
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    table.Update(1 + rng.NextUint64(2000), 1 + rng.NextUint64(2000),
                 rng.NextDouble(), i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Query(1 + rng.NextUint64(2000), 100000, 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimTableQuery);

// LRU pair cache (Section 5.1's cache technique).
void BM_LruCacheHitPath(benchmark::State& state) {
  LruCache<VideoPair, double, VideoPairHash> cache(4096);
  Rng rng(11);
  for (int i = 0; i < 4096; ++i) {
    cache.Put(VideoPair(rng.NextUint64(64), rng.NextUint64(64)), 0.5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Get(VideoPair(rng.NextUint64(64), rng.NextUint64(64))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheHitPath);

// Checkpoint save/load of a trained engine's stores.
void BM_CheckpointRoundTrip(benchmark::State& state) {
  ServingFixture& f = Serving();
  const std::string path = "/tmp/rtrec_bench_ckpt.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SaveCheckpoint(path, &f.engine->factors(), &f.engine->sim_table(),
                       &f.engine->history()));
    FactorStore::Options options;
    options.num_factors = f.engine->options().model.num_factors;
    FactorStore restored(options);
    SimTableStore table;
    HistoryStore history;
    benchmark::DoNotOptimize(
        LoadCheckpoint(path, &restored, &table, &history));
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointRoundTrip)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Fig. 2 topology end-to-end throughput vs parallelism.
void BM_TopologyThroughput(benchmark::State& state) {
  const std::size_t parallelism = static_cast<std::size_t>(state.range(0));
  const bool acking = state.range(1) != 0;
  const SyntheticWorld world(SmallWorldConfig(9));
  std::vector<UserAction> actions = world.GenerateDays(0, 1);

  for (auto _ : state) {
    FactorStore::Options factor_options;
    factor_options.num_factors = 32;
    FactorStore factors(factor_options);
    HistoryStore history;
    SimTableStore sim_table;
    PipelineDeps deps;
    deps.factors = &factors;
    deps.history = &history;
    deps.sim_table = &sim_table;
    deps.type_resolver = world.TypeResolver();
    auto source = std::make_shared<VectorActionSource>(actions);
    PipelineParallelism p;
    p.spout = 1;
    p.compute_mf = parallelism;
    p.mf_storage = parallelism;
    p.user_history = parallelism;
    p.get_item_pairs = parallelism;
    p.item_pair_sim = parallelism;
    p.result_storage = parallelism;
    auto spec = BuildRecommendationTopology(source, deps, p);
    stream::TopologyOptions topology_options;
    topology_options.enable_acking = acking;
    auto topo = stream::Topology::Create(std::move(spec).value(),
                                         topology_options);
    (void)(*topo)->Start();
    (void)(*topo)->Join();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(actions.size()));
}
// Args: {parallelism, acking?} — the acking rows measure the overhead of
// the at-least-once reliability layer.
BENCHMARK(BM_TopologyThroughput)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({1, 1})->Args({4, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace rtrec
