// Network serving throughput: spawns a RecServer over a warmed
// RecommendationService on a loopback socket, drives it from N
// concurrent client connections (one RecClient per thread, mixed
// Recommend/Observe traffic), and reports QPS plus client- and
// server-side latency percentiles straight from MetricsRegistry
// histograms.
//
//   $ ./bench_net_throughput [connections] [seconds]   # defaults: 8, 3

#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "net/rec_client.h"
#include "net/rec_server.h"
#include "service/recommendation_service.h"

namespace {

using Clock = std::chrono::steady_clock;

rtrec::UserAction Watch(rtrec::UserId user, rtrec::VideoId video,
                        rtrec::Timestamp t) {
  rtrec::UserAction action;
  action.user = user;
  action.video = video;
  action.type = rtrec::ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

/// Warm the model so Recommend does real scoring work, not fallbacks.
void WarmService(rtrec::RecommendationService* service) {
  rtrec::Timestamp t = 0;
  for (int round = 0; round < 20; ++round) {
    for (rtrec::UserId user = 1; user <= 16; ++user) {
      service->Observe(Watch(user, 10 + user % 5, t += 1000));
      service->Observe(Watch(user, 11 + user % 5, t += 1000));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int connections = argc > 1 ? std::atoi(argv[1]) : 8;
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 3;

  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; });
  WarmService(&service);

  rtrec::MetricsRegistry metrics;
  // Route fault.injected.* here too, so a chaos-enabled run (faults
  // armed via a custom main or debugger) reports in one place.
  rtrec::FaultInjector::Instance().SetMetrics(&metrics);
  rtrec::RecServer::Options server_options;
  server_options.port = 0;  // Ephemeral.
  server_options.num_workers = 4;
  server_options.metrics = &metrics;
  rtrec::RecServer server(&service, server_options);
  rtrec::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // Client-observed end-to-end latency, one histogram shared by all
  // loadgen threads (Histogram is thread-safe).
  rtrec::Histogram* client_latency =
      metrics.GetHistogram("bench.client.rpc.latency_us");
  std::atomic<std::int64_t> ok_calls{0};
  std::atomic<std::int64_t> failed_calls{0};
  std::atomic<bool> stop{false};

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int i = 0; i < connections; ++i) {
    threads.emplace_back([&, i] {
      rtrec::RecClient::Options client_options;
      client_options.port = server.port();
      client_options.metrics = &metrics;  // client.retries
      rtrec::RecClient client(client_options);
      rtrec::RecRequest request;
      request.top_n = 10;
      rtrec::Timestamp t = 1'000'000 + i;
      int seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        request.user = 1 + (seq + i) % 16;
        request.seed_videos = {10 + static_cast<rtrec::VideoId>(seq % 5)};
        request.now = t;
        const auto start = Clock::now();
        // 1-in-8 writes keeps the stream "real-time" while the bench
        // stays read-dominated like the production serving mix.
        bool ok;
        if (seq % 8 == 7) {
          ok = client.Observe(Watch(request.user, 10 + seq % 5, t += 1000))
                   .ok();
        } else {
          ok = client.Recommend(request).ok();
        }
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count();
        client_latency->Add(micros);
        (ok ? ok_calls : failed_calls).fetch_add(1,
                                                 std::memory_order_relaxed);
        ++seq;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.Stop();

  const std::int64_t total = ok_calls.load() + failed_calls.load();
  std::printf("== bench_net_throughput ==\n");
  std::printf("connections            %d\n", connections);
  std::printf("duration               %.2fs\n", elapsed);
  std::printf("requests               %lld (%lld ok, %lld failed)\n",
              static_cast<long long>(total),
              static_cast<long long>(ok_calls.load()),
              static_cast<long long>(failed_calls.load()));
  std::printf("QPS                    %.0f\n", total / elapsed);
  std::printf("client latency (us)    p50 %.0f   p99 %.0f   mean %.0f\n",
              client_latency->Percentile(50), client_latency->Percentile(99),
              client_latency->Mean());
  const rtrec::Histogram* server_latency =
      metrics.GetHistogram("net.server.rpc.recommend.latency_us");
  std::printf("server recommend (us)  p50 %.0f   p99 %.0f   mean %.0f\n",
              server_latency->Percentile(50), server_latency->Percentile(99),
              server_latency->Mean());
  // The robustness ledger: all zero on a healthy loopback run; any
  // injected faults, degraded answers, or client retries show up here.
  std::printf("robustness             faults %lld   degraded %lld   "
              "retries %lld   task_restarts %lld\n",
              static_cast<long long>(
                  metrics.GetCounter("fault.injected")->value()),
              static_cast<long long>(
                  metrics.GetCounter("server.degraded_responses")->value()),
              static_cast<long long>(
                  metrics.GetCounter("client.retries")->value()),
              static_cast<long long>(
                  metrics.GetCounter("topology.task_restarts")->value()));
  std::printf("\nserver metrics:\n%s\n", metrics.Report().c_str());
  return 0;
}
