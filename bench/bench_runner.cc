// Unified benchmark runner: one binary, four phases, one
// machine-readable ledger.
//
//   ingest  — replays a seeded synthetic action stream through the
//             Fig. 2 topology with tracing on and reports end-to-end
//             actions/sec (first spout emission through the last
//             terminal-bolt drain, via the topology.first_emit_us /
//             final_done_us gauges) plus per-stage latency percentiles
//             derived from the propagated trace contexts
//             (trace.stage.*, trace.e2e.*) and the ring-queue counters
//             (stream.queue.*);
//   serve   — stands up a traced RecServer over a warmed service,
//             drives it from concurrent RecClient loadgen threads, and
//             reports QPS, client/server percentiles, and a Stats-RPC
//             scrape pair (verifying counters are monotone);
//   tracing — the distributed-tracing drill: a span-collecting server
//             (head sampling + tail capture armed) driven by a client
//             that also propagates its own sampled contexts over the
//             wire. Reports recording volume, wire adoption, slow
//             captures, the Chrome trace-event export cost, and the
//             traced-vs-untraced QPS delta on the same workload;
//   transport — the wire-bound drill: the SAME warmed service behind
//             one RecServer, driven through four transport legs over a
//             single connection each — TCP v1 (one request in flight,
//             the pre-pipelining contract), TCP v2 pipelined (a window
//             of requests in flight, out-of-order-capable), TCP v2
//             batched (BatchRecommend frames), and the same-host
//             shared-memory rings — plus a raw shm ping leg for the
//             transport ceiling with the service out of the loop.
//             Reports per-leg QPS + latency percentiles and the
//             speedups over the v1 baseline. Single-connection by
//             design: "break the wire bound" is a per-connection claim;
//   recall  — offline recall@N / average-rank of the CombineModel
//             engine under the Section 6.1 protocol;
//   quality — drives a deterministic co-watch workload through a
//             service with the quality monitor attached and reports the
//             live signals (progressive logloss, online recall@10, the
//             CTR join segments, drift gauges, alert counters);
//   workload — the million-scale + quantized-storage leg: bytes-per-
//             entry across factor precisions (float32/float16/int8,
//             with RSS deltas), then the production-shaped stream —
//             evening-peaked diurnal sessions, a day-1 flash crowd,
//             staggered cold-start catalog churn, and a day-2
//             demographic drift that must trip the quality watchdog —
//             through an fp16-quantized engine, and the recall
//             guardrail proving fp16 storage costs <1% recall@10. Full
//             mode runs the real 1M-user / 100k-video world; smoke
//             keeps the scenario shape at CI size;
//   cluster — (only with --serve-binary=PATH) the sharded-deployment
//             drill: forks real `serve` processes from a generated
//             manifest, routes loadgen through ClusterClient, kill -9s
//             a shard mid-traffic, and reports aggregate scaling vs one
//             process, failover latency, the degraded-response fraction
//             during the outage, and recovery time after the restart.
//             The kill is also traced: a sampled context propagated
//             through the router's failover retry must surface on the
//             fallback shard's /traces with hop=1 — one stitched
//             multi-shard trace of the outage.
//
// Everything is seeded (WorldConfig seed 2016), so two runs on the same
// machine produce the same workload; timings of course vary.
//
//   $ ./bench_runner [--smoke] [--out=BENCH_PR9.json]
//                    [--connections=N] [--seconds=N]
//                    [--queue-capacity=N] [--drain-batch=N] [--pin-cpus]
//                    [--serve-binary=PATH] [--cluster-only]
//
// --smoke shrinks every phase for CI (a few seconds total).
// --queue-capacity / --drain-batch / --pin-cpus tune the ingest
// topology's ring queues (0 = engine defaults). --serve-binary points
// at the examples/serve executable and enables the cluster phase;
// --cluster-only skips the in-process phases (scripts/cluster.sh uses
// it for the standalone drill). The ledger is written to --out (default
// BENCH_PR10.json in the working directory); scripts/bench.sh wraps the
// build + run + validate cycle.

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/manifest.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/topology_factory.h"
#include "data/dataset.h"
#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"
#include "net/rec_client.h"
#include "net/rec_server.h"
#include "net/shm_transport.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/span_collector.h"
#include "kvstore/factor_store.h"
#include "kvstore/quantization.h"
#include "quality/quality_monitor.h"
#include "service/recommendation_service.h"
#include "stream/topology.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// --- Minimal JSON writer ---------------------------------------------------
// The ledger is flat enough that a hand-rolled writer beats dragging in a
// JSON dependency; keys are code-controlled (no escaping needed).

class Json {
 public:
  void Open() { Begin("{"); }
  void Close() { End("}"); }
  void OpenObject(const std::string& key) {
    Key(key);
    out_ << '{';
    needs_comma_ = false;
  }

  void Field(const std::string& key, double value) {
    Key(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ << buf;
  }
  void Field(const std::string& key, std::int64_t value) {
    Key(key);
    out_ << value;
  }
  void Field(const std::string& key, const std::string& value) {
    Key(key);
    out_ << '"' << value << '"';
  }
  void Field(const std::string& key, bool value) {
    Key(key);
    out_ << (value ? "true" : "false");
  }

  std::string str() const { return out_.str() + "\n"; }

 private:
  void Key(const std::string& key) {
    Comma();
    out_ << '"' << key << "\": ";
  }
  void Begin(const char* bracket) {
    Comma();
    out_ << bracket;
    needs_comma_ = false;
  }
  void End(const char* bracket) {
    out_ << bracket;
    needs_comma_ = true;
  }
  void Comma() {
    if (needs_comma_) out_ << ", ";
    needs_comma_ = true;
  }

  std::ostringstream out_;
  bool needs_comma_ = false;
};

/// Emits {count, mean_us, p50_us, p95_us, p99_us} for a histogram.
void Percentiles(Json& json, const std::string& key,
                 const rtrec::Histogram& hist) {
  json.OpenObject(key);
  json.Field("count", static_cast<std::int64_t>(hist.count()));
  json.Field("mean_us", hist.Mean());
  json.Field("p50_us", hist.Percentile(50));
  json.Field("p95_us", hist.Percentile(95));
  json.Field("p99_us", hist.Percentile(99));
  json.Close();
}

// --- Shared workload helpers ----------------------------------------------

rtrec::UserAction Watch(rtrec::UserId user, rtrec::VideoId video,
                        rtrec::Timestamp t) {
  rtrec::UserAction action;
  action.user = user;
  action.video = video;
  action.type = rtrec::ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

// --- Phase 1: ingest -------------------------------------------------------

struct IngestConfig {
  std::size_t queue_capacity = 0;  // 0 = engine default.
  std::size_t drain_batch = 0;     // 0 = engine default.
  bool pin_cpus = false;
};

bool RunIngest(Json& json, bool smoke, const IngestConfig& config) {
  const int days = smoke ? 1 : 4;
  const rtrec::SyntheticWorld world(rtrec::SmallWorldConfig());
  std::vector<rtrec::UserAction> actions = world.GenerateDays(0, days);
  const std::size_t num_actions = actions.size();

  rtrec::FactorStore::Options factor_options;
  factor_options.num_factors = 16;
  rtrec::FactorStore factors(factor_options);
  rtrec::HistoryStore history;
  rtrec::SimTableStore sim_table;
  rtrec::PipelineDeps deps;
  deps.factors = &factors;
  deps.history = &history;
  deps.sim_table = &sim_table;
  deps.type_resolver = world.TypeResolver();
  deps.model_config.num_factors = 16;

  rtrec::MetricsRegistry metrics;
  rtrec::Tracer::Options tracer_options;
  tracer_options.sample_every_n = 8;
  tracer_options.metrics = &metrics;
  rtrec::Tracer tracer(tracer_options);

  auto source =
      std::make_shared<rtrec::VectorActionSource>(std::move(actions));
  auto spec = rtrec::BuildRecommendationTopology(source, deps);
  if (!spec.ok()) {
    std::fprintf(stderr, "ingest: topology spec failed: %s\n",
                 spec.status().ToString().c_str());
    return false;
  }
  rtrec::stream::TopologyOptions topo_options;
  topo_options.metrics = &metrics;
  topo_options.tracer = &tracer;
  topo_options.queue_capacity = config.queue_capacity;
  topo_options.drain_batch = config.drain_batch;
  topo_options.pin_cpus = config.pin_cpus;
  auto topo =
      rtrec::stream::Topology::Create(std::move(spec).value(), topo_options);
  if (!topo.ok()) {
    std::fprintf(stderr, "ingest: topology create failed: %s\n",
                 topo.status().ToString().c_str());
    return false;
  }

  const auto t0 = Clock::now();
  if (!(*topo)->Start().ok() || !(*topo)->Join().ok()) {
    std::fprintf(stderr, "ingest: topology run failed\n");
    return false;
  }
  const double wall_elapsed = Seconds(t0, Clock::now());

  // Honest end-to-end accounting: the topology stamps the first spout
  // emission, the last spout finishing, and the last terminal bolt
  // finishing its drain. actions_per_sec covers spout-emit through
  // final-bolt-ack — thread spawn/join overhead excluded, queue drain
  // included (the old wall-clock number hid neither).
  const std::int64_t first_emit_us =
      metrics.GetGauge("topology.first_emit_us")->value();
  const std::int64_t spout_done_us =
      metrics.GetGauge("topology.spout_done_us")->value();
  const std::int64_t final_done_us =
      metrics.GetGauge("topology.final_done_us")->value();
  double e2e_elapsed = (final_done_us - first_emit_us) / 1e6;
  double emit_elapsed = (spout_done_us - first_emit_us) / 1e6;
  if (first_emit_us == 0 || e2e_elapsed <= 0) e2e_elapsed = wall_elapsed;
  if (first_emit_us == 0 || emit_elapsed <= 0) emit_elapsed = wall_elapsed;
  const double actions_per_sec =
      e2e_elapsed > 0 ? static_cast<double>(num_actions) / e2e_elapsed : 0.0;

  json.OpenObject("ingest");
  json.Field("days", static_cast<std::int64_t>(days));
  json.Field("actions", static_cast<std::int64_t>(num_actions));
  json.Field("elapsed_s", wall_elapsed);
  json.Field("e2e_elapsed_s", e2e_elapsed);
  json.Field("actions_per_sec", actions_per_sec);
  json.Field("spout_emit_per_sec",
             emit_elapsed > 0
                 ? static_cast<double>(num_actions) / emit_elapsed
                 : 0.0);
  json.OpenObject("queue");
  json.Field("capacity",
             static_cast<std::int64_t>(config.queue_capacity));
  json.Field("drain_batch", static_cast<std::int64_t>(config.drain_batch));
  json.Field("pinned_tasks", metrics.GetCounter("topology.pinned_tasks")
                                 ->value());
  json.Field("push_retries",
             metrics.GetCounter("stream.queue.push_retries")->value());
  json.Field("batch_drains",
             metrics.GetCounter("stream.queue.batch_drains")->value());
  json.Field("parked_wakeups",
             metrics.GetCounter("stream.queue.parked_wakeups")->value());
  json.Close();
  json.Field(
      "traces_sampled",
      static_cast<std::int64_t>(metrics.GetCounter("trace.sampled")->value()));
  json.OpenObject("stages");
  const char* stages[] = {"compute_mf",     "mf_storage",   "user_history",
                          "get_item_pairs", "item_pair_sim", "result_storage"};
  for (const char* stage : stages) {
    json.OpenObject(stage);
    Percentiles(json, "process",
                *tracer.StageHistogram(stage));
    Percentiles(json, "queue_wait", *tracer.QueueHistogram(stage));
    Percentiles(json, "since_root", *tracer.SinceRootHistogram(stage));
    json.Close();
  }
  json.Close();
  // result_storage ends the longest chain, so its since-root time is the
  // pipeline's end-to-end latency.
  Percentiles(json, "e2e_us", *tracer.SinceRootHistogram("result_storage"));
  json.Close();

  std::printf(
      "ingest   %zu actions in %.2fs e2e (%.0f actions/sec, %lld traces, "
      "%lld drains)\n",
      num_actions, e2e_elapsed, actions_per_sec,
      static_cast<long long>(metrics.GetCounter("trace.sampled")->value()),
      static_cast<long long>(
          metrics.GetCounter("stream.queue.batch_drains")->value()));
  return true;
}

// --- Phase 2: serve --------------------------------------------------------

/// Reads the value of `name` from Prometheus text; -1 if absent.
double ScrapeValue(const std::string& text, const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, name.size(), name) == 0 &&
        line.size() > name.size() && line[name.size()] == ' ') {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  return -1.0;
}

bool RunServe(Json& json, bool smoke, int connections, int seconds) {
  if (smoke) {
    connections = std::min(connections, 4);
    seconds = 1;
  }

  rtrec::MetricsRegistry metrics;
  rtrec::Tracer::Options tracer_options;
  tracer_options.sample_every_n = 4;
  tracer_options.metrics = &metrics;
  rtrec::Tracer tracer(tracer_options);

  rtrec::RecommendationService::Options service_options;
  service_options.metrics = &metrics;
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; },
      service_options);
  rtrec::Timestamp warm_t = 0;
  for (int round = 0; round < 20; ++round) {
    for (rtrec::UserId user = 1; user <= 16; ++user) {
      service.Observe(Watch(user, 10 + user % 5, warm_t += 1000));
      service.Observe(Watch(user, 11 + user % 5, warm_t += 1000));
    }
  }

  rtrec::RecServer::Options server_options;
  server_options.port = 0;  // Ephemeral.
  server_options.num_workers = 4;
  server_options.metrics = &metrics;
  server_options.tracer = &tracer;
  rtrec::RecServer server(&service, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "serve: server failed to start\n");
    return false;
  }

  rtrec::Histogram* client_latency =
      metrics.GetHistogram("bench.client.rpc.latency_us");
  std::atomic<std::int64_t> ok_calls{0};
  std::atomic<std::int64_t> failed_calls{0};
  std::atomic<bool> stop{false};

  // First Stats scrape before the load, second one after: the counters
  // in the second must dominate the first.
  rtrec::RecClient::Options stats_client_options;
  stats_client_options.port = server.port();
  rtrec::RecClient stats_client(stats_client_options);
  auto first_scrape = stats_client.Stats();
  if (!first_scrape.ok()) {
    std::fprintf(stderr, "serve: first stats scrape failed: %s\n",
                 first_scrape.status().ToString().c_str());
    server.Stop();
    return false;
  }

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int i = 0; i < connections; ++i) {
    threads.emplace_back([&, i] {
      rtrec::RecClient::Options client_options;
      client_options.port = server.port();
      client_options.metrics = &metrics;
      rtrec::RecClient client(client_options);
      rtrec::RecRequest request;
      request.top_n = 10;
      rtrec::Timestamp t = 1'000'000 + i;
      int seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        request.user = 1 + (seq + i) % 16;
        request.seed_videos = {10 + static_cast<rtrec::VideoId>(seq % 5)};
        request.now = t;
        const auto start = Clock::now();
        bool ok;
        // 1-in-8 writes: read-dominated, like the production mix.
        if (seq % 8 == 7) {
          ok = client.Observe(Watch(request.user, 10 + seq % 5, t += 1000))
                   .ok();
        } else {
          ok = client.Recommend(request).ok();
        }
        client_latency->Add(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
        (ok ? ok_calls : failed_calls)
            .fetch_add(1, std::memory_order_relaxed);
        ++seq;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const double elapsed = Seconds(t0, Clock::now());

  auto second_scrape = stats_client.Stats();
  server.Stop();
  if (!second_scrape.ok()) {
    std::fprintf(stderr, "serve: second stats scrape failed: %s\n",
                 second_scrape.status().ToString().c_str());
    return false;
  }
  const double requests_before =
      ScrapeValue(*first_scrape, "net_server_requests_total");
  const double requests_after =
      ScrapeValue(*second_scrape, "net_server_requests_total");
  const bool monotone =
      requests_before >= 0 && requests_after > requests_before;

  const std::int64_t total = ok_calls.load() + failed_calls.load();
  json.OpenObject("serve");
  json.Field("connections", static_cast<std::int64_t>(connections));
  json.Field("elapsed_s", elapsed);
  json.Field("requests", total);
  json.Field("ok", ok_calls.load());
  json.Field("failed", failed_calls.load());
  json.Field("qps", elapsed > 0 ? total / elapsed : 0.0);
  Percentiles(json, "client_latency", *client_latency);
  Percentiles(json, "server_recommend",
              *metrics.GetHistogram("net.server.rpc.recommend.latency_us"));
  Percentiles(json, "server_observe",
              *metrics.GetHistogram("net.server.rpc.observe.latency_us"));
  Percentiles(json, "trace_wire_recommend",
              *tracer.SinceRootHistogram("wire.recommend"));
  Percentiles(json, "trace_service_recommend",
              *tracer.StageHistogram("service.recommend"));
  json.OpenObject("stats_scrape");
  json.Field("first_bytes", static_cast<std::int64_t>(first_scrape->size()));
  json.Field("second_bytes",
             static_cast<std::int64_t>(second_scrape->size()));
  json.Field("requests_before", requests_before);
  json.Field("requests_after", requests_after);
  json.Field("counters_monotone", monotone);
  // Serving hot-path counters, read off the same Stats scrape that
  // operators see: the batched VectorsGet and the factor cache must be
  // doing work during the serve phase.
  json.Field("multiget_calls",
             ScrapeValue(*second_scrape, "kvstore_multiget_calls_total"));
  json.Field("multiget_keys",
             ScrapeValue(*second_scrape, "kvstore_multiget_keys_total"));
  json.Field(
      "multiget_shard_batches",
      ScrapeValue(*second_scrape, "kvstore_multiget_shard_batches_total"));
  json.Field(
      "factor_cache_hits",
      ScrapeValue(*second_scrape, "service_factor_cache_hits_total"));
  json.Field(
      "factor_cache_misses",
      ScrapeValue(*second_scrape, "service_factor_cache_misses_total"));
  json.Close();
  json.Close();

  std::printf("serve    %lld requests in %.2fs (%.0f QPS, p99 %.0fus, "
              "scrapes %s)\n",
              static_cast<long long>(total), elapsed, total / elapsed,
              client_latency->Percentile(99),
              monotone ? "monotone" : "NOT MONOTONE");
  return monotone;
}

// --- Phase 2a: tracing -----------------------------------------------------
// The distributed-tracing drill. One server with the full observability
// stack attached (head sampler, span collector, tail capture armed at
// 1µs so every request commits its span tree — the worst-case recording
// load), one identically-warmed server with tracing off, and the same
// single-connection loadgen against both. Every 4th call is issued
// under a client-minted sampled context, so wire propagation and
// server-side adoption are exercised, not just local sampling.

std::string HexTraceId16(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Drives `seconds` of read-dominated traffic over one connection;
/// every 4th request under a sampled context when `propagate`.
std::int64_t TracingLoadgen(std::uint16_t port, double seconds,
                            bool propagate, bool* negotiated) {
  rtrec::RecClient::Options client_options;
  client_options.port = port;
  rtrec::RecClient client(client_options);
  if (!client.Connect().ok()) return -1;
  if (negotiated != nullptr) {
    *negotiated = client.trace_propagation_negotiated();
  }
  std::int64_t requests = 0;
  std::int64_t seq = 0;
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    rtrec::RecRequest request;
    request.user = 1 + seq % 16;
    request.seed_videos = {10 + static_cast<rtrec::VideoId>(seq % 5)};
    request.top_n = 10;
    request.now = 2'000'000 + seq;
    bool ok;
    if (propagate && seq % 4 == 0) {
      rtrec::TraceContext trace;
      trace.id = 0xC0FFEE0000000000ull + static_cast<std::uint64_t>(seq);
      trace.start_us = rtrec::Tracer::NowMicros();
      rtrec::ScopedTraceContext scope(trace);
      ok = client.Recommend(request).ok();
    } else if (seq % 8 == 7) {
      ok = client.Observe(Watch(request.user, 10 + seq % 5, request.now))
               .ok();
    } else {
      ok = client.Recommend(request).ok();
    }
    if (ok) ++requests;
    ++seq;
  }
  return requests;
}

bool RunTracing(Json& json, bool smoke, const std::string& trace_dump) {
  const double run_seconds = smoke ? 0.4 : 2.0;

  rtrec::RecommendationService::Options service_options;
  auto type_of = [](rtrec::VideoId v) -> rtrec::VideoType {
    return v < 100 ? 0 : 1;
  };
  auto warm = [&](rtrec::RecommendationService& service) {
    rtrec::Timestamp warm_t = 0;
    for (int round = 0; round < 20; ++round) {
      for (rtrec::UserId user = 1; user <= 16; ++user) {
        service.Observe(Watch(user, 10 + user % 5, warm_t += 1000));
        service.Observe(Watch(user, 11 + user % 5, warm_t += 1000));
      }
    }
  };

  // Traced leg.
  rtrec::MetricsRegistry metrics;
  rtrec::Tracer::Options tracer_options;
  tracer_options.sample_every_n = 4;
  tracer_options.metrics = &metrics;
  rtrec::Tracer tracer(tracer_options);
  rtrec::obs::SpanCollector::Options span_options;
  span_options.metrics = &metrics;
  rtrec::obs::SpanCollector spans(span_options);
  rtrec::RecommendationService traced_service(type_of, service_options);
  warm(traced_service);
  rtrec::RecServer::Options traced_options;
  traced_options.port = 0;
  traced_options.num_workers = 2;
  traced_options.metrics = &metrics;
  traced_options.tracer = &tracer;
  traced_options.spans = &spans;
  traced_options.trace_slow_us = 1;  // Tail capture keeps everything.
  rtrec::RecServer traced_server(&traced_service, traced_options);
  if (!traced_server.Start().ok()) {
    std::fprintf(stderr, "tracing: traced server failed to start\n");
    return false;
  }
  bool negotiated = false;
  const auto traced_t0 = Clock::now();
  const std::int64_t traced_requests = TracingLoadgen(
      traced_server.port(), run_seconds, /*propagate=*/true, &negotiated);
  const double traced_elapsed = Seconds(traced_t0, Clock::now());
  traced_server.Stop();
  if (traced_requests <= 0) {
    std::fprintf(stderr, "tracing: traced loadgen failed\n");
    return false;
  }

  // Untraced baseline: same service shape, same loadgen, no recording.
  rtrec::MetricsRegistry baseline_metrics;
  rtrec::RecommendationService plain_service(type_of, service_options);
  warm(plain_service);
  rtrec::RecServer::Options plain_options;
  plain_options.port = 0;
  plain_options.num_workers = 2;
  plain_options.metrics = &baseline_metrics;
  rtrec::RecServer plain_server(&plain_service, plain_options);
  if (!plain_server.Start().ok()) {
    std::fprintf(stderr, "tracing: baseline server failed to start\n");
    return false;
  }
  const auto plain_t0 = Clock::now();
  const std::int64_t plain_requests = TracingLoadgen(
      plain_server.port(), run_seconds, /*propagate=*/false, nullptr);
  const double plain_elapsed = Seconds(plain_t0, Clock::now());
  plain_server.Stop();

  spans.Flush();
  const rtrec::obs::SpanCollector::Stats stats = spans.GetStats();
  const auto export_t0 = Clock::now();
  const std::string chrome = spans.ExportChromeJson();
  const double export_ms =
      Seconds(export_t0, Clock::now()) * 1000.0;
  const std::string slow = spans.ExportSlowJson();
  const bool export_valid =
      chrome.rfind("{", 0) == 0 &&
      chrome.find("\"traceEvents\":[") != std::string::npos &&
      !chrome.empty() && chrome.back() == '}' &&
      slow.find("\"total_us\"") != std::string::npos;

  const std::int64_t sampled = metrics.GetCounter("trace.sampled")->value();
  const std::int64_t adopted = metrics.GetCounter("trace.adopted")->value();
  const double traced_qps =
      traced_elapsed > 0 ? traced_requests / traced_elapsed : 0.0;
  const double plain_qps =
      plain_elapsed > 0 && plain_requests > 0
          ? plain_requests / plain_elapsed
          : 0.0;

  json.OpenObject("tracing");
  json.Field("seconds", run_seconds);
  json.Field("propagation_negotiated", negotiated);
  json.Field("requests", traced_requests);
  json.Field("qps_traced", traced_qps);
  json.Field("qps_untraced", plain_qps);
  json.Field("overhead_pct",
             plain_qps > 0 ? (1.0 - traced_qps / plain_qps) * 100.0 : 0.0);
  json.Field("sampled", sampled);
  json.Field("adopted", adopted);
  json.Field("spans_recorded",
             static_cast<std::int64_t>(stats.spans_recorded));
  json.Field("spans_dropped",
             static_cast<std::int64_t>(stats.spans_dropped));
  json.Field("traces_finished",
             static_cast<std::int64_t>(stats.traces_finished));
  json.Field("slow_captured",
             static_cast<std::int64_t>(stats.slow_captured));
  json.Field("spans_per_trace",
             stats.traces_finished > 0
                 ? static_cast<double>(stats.spans_recorded) /
                       static_cast<double>(stats.traces_finished)
                 : 0.0);
  json.OpenObject("export");
  json.Field("chrome_bytes", static_cast<std::int64_t>(chrome.size()));
  json.Field("chrome_ms", export_ms);
  json.Field("slow_bytes", static_cast<std::int64_t>(slow.size()));
  json.Field("valid", export_valid);
  json.Close();
  json.Close();

  // The Chrome trace-event artifact CI uploads (and validates as JSON).
  if (!trace_dump.empty()) {
    std::ofstream dump(trace_dump, std::ios::trunc);
    dump << chrome;
    if (!dump.good()) {
      std::fprintf(stderr, "tracing: failed to write %s\n",
                   trace_dump.c_str());
      return false;
    }
    std::printf("tracing  dump %s (%zu bytes)\n", trace_dump.c_str(),
                chrome.size());
  }

  std::printf(
      "tracing  %lld requests (%.0f QPS traced vs %.0f untraced), "
      "%llu spans / %llu traces, %lld adopted, %llu slow-captured, "
      "export %zuB in %.1fms\n",
      static_cast<long long>(traced_requests), traced_qps, plain_qps,
      static_cast<unsigned long long>(stats.spans_recorded),
      static_cast<unsigned long long>(stats.traces_finished),
      static_cast<long long>(adopted),
      static_cast<unsigned long long>(stats.slow_captured), chrome.size(),
      export_ms);

  // The gates the ledger validation repeats: propagation negotiated and
  // adopted on the wire, span trees finished, tail capture fired, and
  // the export is well-formed Chrome trace-event JSON.
  return negotiated && adopted > 0 && sampled > 0 &&
         stats.traces_finished > 0 && stats.slow_captured > 0 &&
         export_valid;
}

// --- Phase 2b: transport ---------------------------------------------------
// The wire-bound drill (docs/WIRE_PROTOCOL.md is the contract being
// measured). Every leg speaks the wire protocol directly — raw frames
// over a TCP fd or an shm slot, NOT RecClient — so the comparison
// isolates transport mechanics (round trips, syscalls, copies) from
// client-library locking. One connection per leg, on purpose: v2's
// claim is that a single connection no longer serializes on RTTs.

/// Raw single-connection wire peer: a TCP fd + FrameDecoder, or an shm
/// slot. Synchronous; the windowed driver below supplies pipelining.
struct RawTransport {
  rtrec::UniqueFd fd;
  rtrec::FrameDecoder decoder;
  std::unique_ptr<rtrec::ShmClient> shm;

  static bool OpenTcp(std::uint16_t port, RawTransport* t,
                      std::string* error) {
    auto conn = rtrec::ConnectTcp("127.0.0.1", port, 2000);
    if (!conn.ok()) {
      *error = conn.status().ToString();
      return false;
    }
    t->fd = std::move(*conn);
    return true;
  }

  static bool OpenShm(const std::string& shm_name, RawTransport* t,
                      std::string* error) {
    auto attached = rtrec::ShmClient::Attach(shm_name, {});
    if (!attached.ok()) {
      *error = attached.status().ToString();
      return false;
    }
    t->shm = std::move(*attached);
    return true;
  }

  bool Send(const std::string& bytes) {
    if (shm) {
      return shm->Send(bytes, SteadyMillis() + 2000).ok();
    }
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::write(fd.get(), bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!rtrec::WaitReady(fd.get(), /*for_read=*/false, 2000).ok()) {
          return false;
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  rtrec::StatusOr<rtrec::Frame> Next(int timeout_ms) {
    if (shm) return shm->NextFrame(SteadyMillis() + timeout_ms);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      auto frame = decoder.Next();
      if (frame.ok() || !frame.status().IsNotFound()) return frame;
      const int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now())
              .count());
      if (remaining <= 0) {
        return rtrec::Status::NotFound("no frame before deadline");
      }
      auto ready = rtrec::WaitReady(fd.get(), /*for_read=*/true, remaining);
      if (!ready.ok()) {
        if (ready.IsUnavailable()) {
          return rtrec::Status::NotFound("no frame before deadline");
        }
        return ready;
      }
      char buf[16384];
      const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
      if (n > 0) {
        decoder.Append(std::string_view(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {
        return rtrec::Status::Unavailable("server closed the connection");
      }
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return rtrec::Status::Internal("read failed");
    }
  }

 private:
  static std::int64_t SteadyMillis() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now().time_since_epoch())
        .count();
  }
};

/// Sends a Hello and expects the server to grant v2 (§5 of the spec).
bool NegotiateV2(RawTransport& t, std::string* error) {
  if (!t.Send(rtrec::EncodeHelloRequest(1, rtrec::HelloRequest{}))) {
    *error = "hello send failed";
    return false;
  }
  auto frame = t.Next(2000);
  if (!frame.ok()) {
    *error = "hello read failed: " + frame.status().ToString();
    return false;
  }
  auto reply = rtrec::DecodeHelloResponse(*frame);
  if (!reply.ok() || reply->version < rtrec::kWireVersionV2) {
    *error = "server did not grant v2";
    return false;
  }
  return true;
}

struct TransportLeg {
  std::int64_t requests = 0;         ///< Completed request/response pairs.
  std::int64_t wire_round_trips = 0; ///< Response frames read.
  double elapsed_s = 0;
  bool ok = false;
  std::string error;
};

rtrec::RecRequest TransportRequest(std::int64_t seq) {
  rtrec::RecRequest request;
  request.user = 1 + seq % 16;
  request.seed_videos = {10 + static_cast<rtrec::VideoId>(seq % 5)};
  request.top_n = 10;
  request.now = 2'000'000 + seq;
  return request;
}

/// Windowed pipelining driver: keeps `window` requests in flight on one
/// connection for ~`seconds`, then drains. window=1 reproduces the v1
/// lock-step contract; window=N is the v2 pipelined contract (§6).
/// Responses may arrive out of order — latency is matched by request id.
TransportLeg DriveWindowed(
    RawTransport& t, int window, double seconds,
    const std::function<std::string(std::uint64_t, std::int64_t)>& encode,
    rtrec::Histogram* latency) {
  TransportLeg leg;
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  in_flight.reserve(static_cast<std::size_t>(window) * 2);
  std::uint64_t next_id = 100;
  std::int64_t seq = 0;
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);

  auto send_one = [&]() -> bool {
    const std::uint64_t id = next_id++;
    const auto start = Clock::now();
    if (!t.Send(encode(id, seq++))) return false;
    in_flight.emplace(id, start);
    return true;
  };

  for (int i = 0; i < window; ++i) {
    if (!send_one()) {
      leg.error = "send failed while priming the window";
      return leg;
    }
  }
  bool draining = false;
  while (!in_flight.empty()) {
    auto frame = t.Next(2000);
    if (!frame.ok()) {
      leg.error = "read failed: " + frame.status().ToString();
      return leg;
    }
    if (frame->type == rtrec::MessageType::kErrorResponse) {
      leg.error = "server answered with an error frame";
      return leg;
    }
    ++leg.wire_round_trips;
    auto it = in_flight.find(frame->request_id);
    if (it == in_flight.end()) {
      leg.error = "response for an unknown request id";
      return leg;
    }
    latency->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - it->second)
                     .count());
    in_flight.erase(it);
    ++leg.requests;
    if (!draining && Clock::now() >= deadline) draining = true;
    if (!draining && !send_one()) {
      leg.error = "send failed mid-run";
      return leg;
    }
  }
  leg.elapsed_s = Seconds(t0, Clock::now());
  leg.ok = true;
  return leg;
}

/// Batched driver (§7): lock-step BatchRecommend round trips, each
/// carrying kMaxBatchedRequests requests. QPS counts items; the latency
/// histogram records per-round-trip time (64 requests amortize it).
TransportLeg DriveBatched(RawTransport& t, double seconds,
                          rtrec::Histogram* latency) {
  TransportLeg leg;
  std::uint64_t next_id = 100;
  std::int64_t seq = 0;
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    std::vector<rtrec::RecRequest> batch;
    batch.reserve(rtrec::kMaxBatchedRequests);
    for (std::size_t i = 0; i < rtrec::kMaxBatchedRequests; ++i) {
      batch.push_back(TransportRequest(seq++));
    }
    const std::uint64_t id = next_id++;
    const auto start = Clock::now();
    if (!t.Send(rtrec::EncodeBatchRecommendRequest(id, batch))) {
      leg.error = "batch send failed";
      return leg;
    }
    auto frame = t.Next(2000);
    if (!frame.ok()) {
      leg.error = "batch read failed: " + frame.status().ToString();
      return leg;
    }
    if (frame->type != rtrec::MessageType::kBatchRecommendResponse ||
        frame->request_id != id) {
      leg.error = "unexpected batch response";
      return leg;
    }
    auto items = rtrec::DecodeBatchRecommendResponse(*frame);
    if (!items.ok()) {
      leg.error = "batch decode failed: " + items.status().ToString();
      return leg;
    }
    latency->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - start)
                     .count());
    ++leg.wire_round_trips;
    for (const auto& item : *items) {
      if (item.ok()) ++leg.requests;
    }
  }
  leg.elapsed_s = Seconds(t0, Clock::now());
  leg.ok = leg.requests > 0;
  if (!leg.ok) leg.error = "no batched requests completed";
  return leg;
}

void EmitLeg(Json& json, const std::string& key, const TransportLeg& leg,
             const rtrec::Histogram& latency) {
  json.OpenObject(key);
  json.Field("ok", leg.ok);
  if (!leg.ok) json.Field("error", leg.error);
  json.Field("requests", leg.requests);
  json.Field("wire_round_trips", leg.wire_round_trips);
  json.Field("elapsed_s", leg.elapsed_s);
  json.Field("qps", leg.elapsed_s > 0 ? leg.requests / leg.elapsed_s : 0.0);
  Percentiles(json, "latency", latency);
  json.Close();
}

bool RunTransport(Json& json, bool smoke, int seconds) {
  const double leg_seconds = smoke ? 0.4 : std::max(1, seconds);
  constexpr int kWindow = 64;  // Matches the server's batch cap hint.

  rtrec::MetricsRegistry metrics;
  rtrec::RecommendationService::Options service_options;
  service_options.metrics = &metrics;
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; },
      service_options);
  rtrec::Timestamp warm_t = 0;
  for (int round = 0; round < 20; ++round) {
    for (rtrec::UserId user = 1; user <= 16; ++user) {
      service.Observe(Watch(user, 10 + user % 5, warm_t += 1000));
      service.Observe(Watch(user, 11 + user % 5, warm_t += 1000));
    }
  }

  const std::string shm_name =
      "/rtrec.bench-" + std::to_string(::getpid());
  rtrec::RecServer::Options server_options;
  server_options.port = 0;
  server_options.num_workers = 2;
  server_options.metrics = &metrics;
  server_options.shm_name = shm_name;
  rtrec::RecServer server(&service, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "transport: server failed to start\n");
    return false;
  }

  struct LegPlan {
    const char* key;
    bool shm;
    bool hello;
    int window;            // 0 = batched driver.
    bool ping_only;
  };
  const LegPlan plans[] = {
      // v1 baseline: one request in flight — every RPC pays a full RTT.
      {"tcp_v1", false, false, 1, false},
      {"tcp_v2_pipelined", false, true, kWindow, false},
      {"tcp_v2_batched", false, true, 0, false},
      {"shm_v2_pipelined", true, true, kWindow, false},
      // Transport ceiling: pipelined pings keep the service out of the
      // loop, so this is pure ring throughput.
      {"shm_ping", true, true, kWindow, true},
  };

  bool all_ok = true;
  std::unordered_map<std::string, TransportLeg> legs;
  for (const LegPlan& plan : plans) {
    rtrec::Histogram* latency = metrics.GetHistogram(
        std::string("bench.transport.") + plan.key + ".latency_us");
    RawTransport t;
    std::string error;
    TransportLeg leg;
    const bool open =
        plan.shm ? RawTransport::OpenShm(shm_name, &t, &error)
                 : RawTransport::OpenTcp(server.port(), &t, &error);
    if (!open) {
      leg.error = "connect failed: " + error;
    } else if (plan.hello && !NegotiateV2(t, &error)) {
      leg.error = error;
    } else if (plan.window == 0) {
      leg = DriveBatched(t, leg_seconds, latency);
    } else if (plan.ping_only) {
      leg = DriveWindowed(
          t, plan.window, leg_seconds,
          [](std::uint64_t id, std::int64_t) {
            return rtrec::EncodePingRequest(id);
          },
          latency);
    } else {
      leg = DriveWindowed(
          t, plan.window, leg_seconds,
          [](std::uint64_t id, std::int64_t seq) {
            return rtrec::EncodeRecommendRequest(id, TransportRequest(seq));
          },
          latency);
    }
    if (!leg.ok) {
      std::fprintf(stderr, "transport: leg %s failed: %s\n", plan.key,
                   leg.error.c_str());
      all_ok = false;
    }
    legs[plan.key] = leg;
  }
  server.Stop();

  auto qps = [&](const char* key) {
    const TransportLeg& leg = legs[key];
    return leg.elapsed_s > 0 ? leg.requests / leg.elapsed_s : 0.0;
  };
  const double v1_qps = qps("tcp_v1");
  const double v2_qps = qps("tcp_v2_pipelined");
  const double batched_qps = qps("tcp_v2_batched");
  const double shm_qps = qps("shm_v2_pipelined");
  const unsigned cpus = std::thread::hardware_concurrency();

  std::string note =
      "one connection per leg; latency is per wire round trip (the "
      "batched leg carries up to 64 requests per round trip)";
  if (cpus <= 2) {
    note +=
        "; this host has " + std::to_string(cpus) +
        " CPU(s), so the loadgen, server workers, and shm poller "
        "time-share cores -- absolute QPS and the shm ceiling are "
        "scheduler-bound, and the per-connection speedup ratios are the "
        "meaningful numbers";
  }

  json.OpenObject("transport");
  json.Field("host_cpus", static_cast<std::int64_t>(cpus));
  json.Field("window", static_cast<std::int64_t>(kWindow));
  json.Field("leg_seconds", leg_seconds);
  json.Field("note", note);
  for (const LegPlan& plan : plans) {
    EmitLeg(json, plan.key, legs[plan.key],
            *metrics.GetHistogram(std::string("bench.transport.") +
                                  plan.key + ".latency_us"));
  }
  json.Field("v2_pipelined_speedup_vs_v1",
             v1_qps > 0 ? v2_qps / v1_qps : 0.0);
  json.Field("v2_batched_speedup_vs_v1",
             v1_qps > 0 ? batched_qps / v1_qps : 0.0);
  json.Field("shm_speedup_vs_v1", v1_qps > 0 ? shm_qps / v1_qps : 0.0);
  json.OpenObject("shm_ring");
  json.Field("polls", metrics.GetCounter("shm.ring.polls")->value());
  json.Field("wraps", metrics.GetCounter("shm.ring.wraps")->value());
  json.Field("attach_errors",
             metrics.GetCounter("shm.ring.attach_errors")->value());
  json.Close();
  json.Close();

  std::printf(
      "transport v1 %.0f QPS | v2 pipelined %.0f (%.1fx) | v2 batched "
      "%.0f (%.1fx) | shm %.0f (%.1fx) | shm ping %.0f [%u cpus]\n",
      v1_qps, v2_qps, v1_qps > 0 ? v2_qps / v1_qps : 0.0, batched_qps,
      v1_qps > 0 ? batched_qps / v1_qps : 0.0, shm_qps,
      v1_qps > 0 ? shm_qps / v1_qps : 0.0, qps("shm_ping"), cpus);

  // Soft gate: pipelining must beat lock-step on the same box. The
  // exact ratio lives in the ledger; absolute targets (3x, 500k) are
  // judged there because a 1-CPU host caps them.
  return all_ok && v2_qps > v1_qps;
}

// --- Phase 3: recall -------------------------------------------------------

bool RunRecall(Json& json, bool smoke) {
  const rtrec::SyntheticWorld world(rtrec::SmallWorldConfig());
  const rtrec::Dataset cleaned =
      rtrec::Dataset(world.GenerateDays(0, 7))
          .FilterMinActivity(smoke ? 5 : 10, smoke ? 3 : 5);
  const auto [train, test] = cleaned.SplitAtTime(6 * rtrec::kMillisPerDay);

  rtrec::RecEngine engine(
      world.TypeResolver(),
      rtrec::DefaultEngineOptions(rtrec::UpdatePolicy::kCombine));
  const rtrec::OfflineEvaluator evaluator;
  const auto t0 = Clock::now();
  const rtrec::OfflineResult result =
      evaluator.Evaluate(engine, train, test);
  const double elapsed = Seconds(t0, Clock::now());

  json.OpenObject("recall");
  json.Field("model", result.model_name);
  json.Field("train_actions", static_cast<std::int64_t>(train.size()));
  json.Field("test_actions", static_cast<std::int64_t>(test.size()));
  json.Field("users_evaluated",
             static_cast<std::int64_t>(result.users_evaluated));
  json.Field("elapsed_s", elapsed);
  json.Field("recall_at_1", result.recall(1));
  json.Field("recall_at_5", result.recall(5));
  json.Field("recall_at_10", result.recall(10));
  json.Field("avg_rank", result.avg_rank);
  json.Close();

  std::printf("recall   %s: recall@10 %.4f, avg rank %.4f "
              "(%zu users, %.2fs)\n",
              result.model_name.c_str(), result.recall(10), result.avg_rank,
              result.users_evaluated, elapsed);
  return true;
}

// --- Phase 4: quality ------------------------------------------------------

bool RunQuality(Json& json, bool smoke) {
  rtrec::MetricsRegistry metrics;
  rtrec::RecommendationService::Options service_options;
  service_options.metrics = &metrics;
  service_options.engine.model.num_factors = 16;
  service_options.quality.holdout_every_n = 5;
  service_options.quality.num_arms = 2;
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; },
      service_options);

  // Deterministic co-watch workload: every user cycles the same small
  // catalog slice, so the 1-in-5 held-out actions are predictable from
  // the co-watch structure and online recall comes out > 0.
  const int rounds = smoke ? 20 : 60;
  const int num_users = 12;
  const int num_videos = 4;
  rtrec::Timestamp t = 0;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (rtrec::UserId user = 1; user <= num_users; ++user) {
      for (int v = 0; v < num_videos; ++v) {
        service.Observe(
            Watch(user, 10 + static_cast<rtrec::VideoId>(v), t += 1000));
      }
    }
  }

  // Serving + click simulation for the CTR join: every user gets a page
  // and every third user "clicks" its top slot; a couple of users take
  // the degraded (hot-video fallback) path instead.
  for (rtrec::UserId user = 1; user <= num_users; ++user) {
    rtrec::RecRequest request;
    request.user = user;
    request.top_n = 5;
    request.now = t;
    std::vector<rtrec::ScoredVideo> page;
    if (user % 6 == 0) {
      page = service.FallbackRecommend(request);
    } else {
      auto served = service.Recommend(request);
      if (served.ok()) page = std::move(served).value();
    }
    if (!page.empty() && user % 3 == 0) {
      rtrec::UserAction click;
      click.user = user;
      click.video = page[0].video;
      click.type = rtrec::ActionType::kClick;
      click.time = t + 10;
      service.Observe(click);
    }
  }
  const double elapsed = Seconds(t0, Clock::now());

  auto counter = [&metrics](const char* name) {
    return metrics.GetCounter(name)->value();
  };
  auto gauge = [&metrics](const char* name) {
    return metrics.GetDoubleGauge(name)->value();
  };

  const std::int64_t evaluated = counter("quality.holdout.evaluated");
  const std::int64_t hits = counter("quality.holdout.hits");
  const double recall = gauge("quality.online_recall@10");
  const double logloss = gauge("quality.progressive.logloss");

  json.OpenObject("quality");
  json.Field("elapsed_s", elapsed);
  json.OpenObject("progressive");
  json.Field("samples", counter("quality.progressive.samples"));
  json.Field("logloss", logloss);
  json.Field("bias", gauge("quality.progressive.bias"));
  json.Close();
  json.OpenObject("holdout");
  json.Field("evaluated", evaluated);
  json.Field("hits", hits);
  json.Field("online_recall_at_10", recall);
  json.Close();
  json.OpenObject("ctr");
  json.Field("impressions", counter("quality.ctr.impressions"));
  json.Field("clicks", counter("quality.ctr.clicks"));
  json.Field("overall", gauge("quality.ctr.overall"));
  json.Field("position_weighted", gauge("quality.ctr.position_weighted"));
  json.Field("primary", gauge("quality.ctr.primary"));
  json.Field("degraded", gauge("quality.ctr.degraded"));
  json.Field("arm_0", gauge("quality.ctr.arm.0"));
  json.Field("arm_1", gauge("quality.ctr.arm.1"));
  json.Field("duplicate_clicks", counter("quality.ctr.duplicate_clicks"));
  json.Field("unmatched_engagements",
             counter("quality.ctr.unmatched_engagements"));
  json.Close();
  json.OpenObject("drift");
  json.Field("embedding_norm", gauge("quality.drift.embedding_norm"));
  json.Field("global_bias", gauge("quality.drift.global_bias"));
  json.Field("sim_staleness_ms",
             metrics.GetGauge("quality.drift.sim_staleness_ms")->value());
  json.Field("served_coverage", gauge("quality.drift.served_coverage"));
  json.Close();
  json.OpenObject("alerts");
  json.Field("logloss", counter("quality.alerts.logloss"));
  json.Field("calibration", counter("quality.alerts.calibration"));
  json.Field("embedding_norm", counter("quality.alerts.embedding_norm"));
  json.Field("bias_drift", counter("quality.alerts.bias_drift"));
  json.Field("label_shift", counter("quality.alerts.label_shift"));
  json.Field("staleness", counter("quality.alerts.staleness"));
  json.Field("coverage", counter("quality.alerts.coverage"));
  json.Close();
  json.Close();

  std::printf("quality  logloss %.4f, online recall@10 %.4f "
              "(%lld/%lld holdouts), ctr %.3f\n",
              logloss, recall, static_cast<long long>(hits),
              static_cast<long long>(evaluated),
              gauge("quality.ctr.overall"));
  // The signals the ledger validation gates on: a model that trained on
  // a co-watch workload must be able to predict some of it.
  return evaluated > 0 && hits > 0 && std::isfinite(logloss) && logloss > 0;
}

// --- Phase 6: workload (million-scale + quantized storage) -----------------
//
// The ROADMAP item 4 leg: memory accounting of the quantized factor
// store across precisions, then the production-shaped million-scale
// stream (diurnal load, a day-1 flash crowd, catalog churn, a day-2
// demographic drift that must trip the quality watchdog), and the
// recall guardrail proving fp16 storage costs <1% recall@10.

/// One "Key:   123 kB" value from /proc/self/status, or 0 off-Linux.
std::int64_t ReadProcStatusKb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const std::size_t len = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, len, key) == 0) {
      return std::atoll(line.c_str() + len);
    }
  }
  return 0;
}

double RssMb() {
  return static_cast<double>(ReadProcStatusKb("VmRSS:")) / 1024.0;
}

bool RunWorkload(Json& json, bool smoke) {
  bool all_ok = true;
  const auto phase_t0 = Clock::now();
  json.OpenObject("workload");

  // --- Leg 1: bytes-per-entry across storage precisions. The three
  // stores stay alive together so each RSS delta is fresh pages, not
  // allocator reuse of the previous leg's freed arena.
  const std::size_t mem_entries = smoke ? 20000 : 200000;
  constexpr int kMemFactors = 32;
  json.OpenObject("memory");
  json.Field("entries", static_cast<std::int64_t>(mem_entries));
  json.Field("num_factors", std::int64_t{kMemFactors});
  std::vector<std::unique_ptr<rtrec::FactorStore>> keep_alive;
  double fp32_bytes_per_entry = 0.0;
  double fp16_reduction = 0.0;
  for (rtrec::FactorPrecision precision :
       {rtrec::FactorPrecision::kFloat32, rtrec::FactorPrecision::kFloat16,
        rtrec::FactorPrecision::kInt8}) {
    rtrec::FactorStore::Options options;
    options.num_factors = kMemFactors;
    options.precision = precision;
    options.seed = 2016;
    const double rss_before = RssMb();
    const auto t0 = Clock::now();
    auto store = std::make_unique<rtrec::FactorStore>(options);
    for (std::size_t id = 1; id <= mem_entries; ++id) {
      (void)store->GetOrInitUser(id);
    }
    const double fill_s = Seconds(t0, Clock::now());
    const double rss_after = RssMb();
    const double bytes_per_entry =
        static_cast<double>(store->BytesPerEntry());
    json.OpenObject(rtrec::FactorPrecisionToString(precision));
    json.Field("bytes_per_entry", bytes_per_entry);
    json.Field("approx_factor_mb",
               static_cast<double>(store->ApproxFactorBytes()) /
                   (1024.0 * 1024.0));
    json.Field("rss_delta_mb", rss_after - rss_before);
    json.Field("fill_s", fill_s);
    if (precision == rtrec::FactorPrecision::kFloat32) {
      fp32_bytes_per_entry = bytes_per_entry;
    } else {
      const double reduction = 1.0 - bytes_per_entry / fp32_bytes_per_entry;
      json.Field("reduction_vs_float32", reduction);
      if (precision == rtrec::FactorPrecision::kFloat16) {
        fp16_reduction = reduction;
      }
    }
    json.Close();
    keep_alive.push_back(std::move(store));
  }
  // The ISSUE guardrail: quantized entries must be >=40% smaller.
  const bool fp16_reduction_ok = fp16_reduction >= 0.40;
  json.Field("fp16_reduction_ok", fp16_reduction_ok);
  all_ok = all_ok && fp16_reduction_ok;
  json.Close();
  keep_alive.clear();
  std::printf("workload memory: fp16 %.1f%% smaller per entry than fp32\n",
              fp16_reduction * 100.0);

  // --- Leg 2: the million-scale stream. Full mode runs the real 1M-user
  // / 100k-video world; smoke keeps the exact scenario shape (diurnal +
  // flash crowd + drift) at CI size.
  rtrec::WorldConfig config = rtrec::MillionScaleWorldConfig();
  int days = 3;  // Days 0-1 pre-drift (flash crowd on 1), day 2 drifted.
  if (smoke) {
    config.population.num_users = 20000;
    config.catalog.num_videos = 5000;
    config.population.mean_activity = 0.2;
  }
  const double rss_start_mb = RssMb();
  const auto world_t0 = Clock::now();
  const rtrec::SyntheticWorld world(config);
  const double world_build_s = Seconds(world_t0, Clock::now());

  rtrec::MetricsRegistry metrics;
  rtrec::QualityMonitor::Options quality_options;
  rtrec::QualityMonitor monitor(&metrics, quality_options);
  rtrec::RecEngine::Options engine_options =
      rtrec::DefaultEngineOptions(rtrec::UpdatePolicy::kCombine);
  engine_options.model.precision = rtrec::FactorPrecision::kFloat16;
  engine_options.validation_hook = &monitor;
  rtrec::RecEngine engine(world.TypeResolver(), engine_options);

  auto alert_total = [&metrics]() {
    std::int64_t total = 0;
    for (const char* name :
         {"quality.alerts.logloss", "quality.alerts.calibration",
          "quality.alerts.embedding_norm", "quality.alerts.bias_drift",
          "quality.alerts.label_shift", "quality.alerts.staleness",
          "quality.alerts.coverage"}) {
      total += metrics.GetCounter(name)->value();
    }
    return total;
  };

  const rtrec::VideoId flash_video =
      config.scenario.flash_crowds.empty()
          ? 0
          : config.scenario.flash_crowds.front().video;
  std::int64_t actions = 0;
  std::int64_t flash_day_impressions = 0;
  std::int64_t flash_day_on_video = 0;
  std::int64_t alerts_before_drift = 0;
  struct DaySignals {
    std::int64_t actions = 0;
    std::int64_t impressions = 0;
    std::int64_t engagements = 0;
    double logloss = 0.0;
    double calibration = 0.0;
    double prediction_drift = 0.0;
    // Within-day peaks of the EWMAs (sampled alongside the stream): an
    // online model re-adapts within the drift day, so the transient is
    // what the watchdog sees, not the end-of-day steady state.
    double max_logloss = 0.0;
    double max_abs_calibration = 0.0;
    double max_abs_prediction_drift = 0.0;
    double max_abs_label_shift = 0.0;
    std::int64_t alerts = 0;              // All watchdog alerts this day.
    std::int64_t label_shift_alerts = 0;  // The drift-detection channel.
  };
  std::vector<DaySignals> day_signals;
  const auto stream_t0 = Clock::now();
  for (int day = 0; day < days; ++day) {
    if (day == config.scenario.drift_start_day) {
      alerts_before_drift = alert_total();
    }
    const std::int64_t day_start_actions = actions;
    const std::int64_t day_start_alerts = alert_total();
    const std::int64_t day_start_label_alerts =
        metrics.GetCounter("quality.alerts.label_shift")->value();
    DaySignals signals;
    world.GenerateDayChunked(
        day, /*chunk_users=*/8192,
        [&](std::vector<rtrec::UserAction>&& chunk) {
          for (const rtrec::UserAction& action : chunk) {
            engine.Observe(action);
            ++actions;
            if (action.type == rtrec::ActionType::kImpress) {
              ++signals.impressions;
              if (day == 1) {
                ++flash_day_impressions;
                if (action.video == flash_video) ++flash_day_on_video;
              }
            } else {
              ++signals.engagements;
            }
            if (actions % 512 == 0) {
              signals.max_logloss = std::max(
                  signals.max_logloss,
                  metrics.GetDoubleGauge("quality.progressive.logloss")
                      ->value());
              signals.max_abs_calibration = std::max(
                  signals.max_abs_calibration,
                  std::fabs(
                      metrics.GetDoubleGauge("quality.progressive.bias")
                          ->value()));
              signals.max_abs_prediction_drift = std::max(
                  signals.max_abs_prediction_drift,
                  std::fabs(
                      metrics.GetDoubleGauge("quality.drift.global_bias")
                          ->value()));
              signals.max_abs_label_shift = std::max(
                  signals.max_abs_label_shift,
                  std::fabs(
                      metrics.GetDoubleGauge("quality.drift.label_shift")
                          ->value()));
            }
          }
        });
    signals.actions = actions - day_start_actions;
    signals.alerts = alert_total() - day_start_alerts;
    signals.label_shift_alerts =
        metrics.GetCounter("quality.alerts.label_shift")->value() -
        day_start_label_alerts;
    signals.logloss =
        metrics.GetDoubleGauge("quality.progressive.logloss")->value();
    signals.calibration =
        metrics.GetDoubleGauge("quality.progressive.bias")->value();
    signals.prediction_drift =
        metrics.GetDoubleGauge("quality.drift.global_bias")->value();
    day_signals.push_back(signals);
  }
  const double stream_s = Seconds(stream_t0, Clock::now());
  const std::int64_t alerts_after_drift = alert_total();
  // The planted demographic drift must be noticed: the watchdog has to
  // fire more after the drift day than before it.
  const bool drift_tripped = alerts_after_drift > alerts_before_drift;
  all_ok = all_ok && drift_tripped;

  rtrec::FactorStore& factors = engine.factors();
  const double rss_end_mb = RssMb();
  json.OpenObject("million_scale");
  json.Field("users",
             static_cast<std::int64_t>(config.population.num_users));
  json.Field("videos",
             static_cast<std::int64_t>(config.catalog.num_videos));
  json.Field("days", std::int64_t{3});
  json.Field("precision",
             std::string(rtrec::FactorPrecisionToString(
                 engine_options.model.precision)));
  json.Field("actions", actions);
  json.Field("actions_per_sec",
             stream_s > 0 ? static_cast<double>(actions) / stream_s : 0.0);
  json.Field("elapsed_s", stream_s);
  json.Field("world_build_s", world_build_s);
  json.Field("rss_start_mb", rss_start_mb);
  json.Field("rss_end_mb", rss_end_mb);
  json.Field("rss_peak_mb",
             static_cast<double>(ReadProcStatusKb("VmHWM:")) / 1024.0);
  json.Field("factor_entries",
             static_cast<std::int64_t>(factors.NumUsers() +
                                       factors.NumVideos()));
  json.Field("bytes_per_factor_entry",
             static_cast<std::int64_t>(factors.BytesPerEntry()));
  json.Field("approx_factor_mb",
             static_cast<double>(factors.ApproxFactorBytes()) /
                 (1024.0 * 1024.0));
  json.Field("sim_arena_mb",
             static_cast<double>(engine.sim_table().ArenaBytes()) /
                 (1024.0 * 1024.0));
  json.Field("flash_crowd_impression_share",
             flash_day_impressions > 0
                 ? static_cast<double>(flash_day_on_video) /
                       static_cast<double>(flash_day_impressions)
                 : 0.0);
  for (std::size_t day = 0; day < day_signals.size(); ++day) {
    json.OpenObject("day_" + std::to_string(day));
    json.Field("actions", day_signals[day].actions);
    json.Field("impressions", day_signals[day].impressions);
    json.Field("engagements", day_signals[day].engagements);
    json.Field("engagement_rate",
               day_signals[day].impressions > 0
                   ? static_cast<double>(day_signals[day].engagements) /
                         static_cast<double>(day_signals[day].impressions)
                   : 0.0);
    json.Field("logloss", day_signals[day].logloss);
    json.Field("calibration", day_signals[day].calibration);
    json.Field("prediction_drift", day_signals[day].prediction_drift);
    json.Field("max_logloss", day_signals[day].max_logloss);
    json.Field("max_abs_calibration",
               day_signals[day].max_abs_calibration);
    json.Field("max_abs_prediction_drift",
               day_signals[day].max_abs_prediction_drift);
    json.Field("max_abs_label_shift", day_signals[day].max_abs_label_shift);
    json.Field("alerts", day_signals[day].alerts);
    json.Field("label_shift_alerts", day_signals[day].label_shift_alerts);
    json.Close();
  }
  json.OpenObject("drift");
  json.Field("start_day",
             static_cast<std::int64_t>(config.scenario.drift_start_day));
  json.Field("alerts_before", alerts_before_drift);
  json.Field("alerts_after", alerts_after_drift);
  json.Field("tripped", drift_tripped);
  json.Close();
  json.Close();
  std::printf("workload stream: %lld actions over %d days, %.0f/s, "
              "RSS %.0f MB, drift alerts %lld -> %lld\n",
              static_cast<long long>(actions), days,
              static_cast<double>(actions) / stream_s, rss_end_mb,
              static_cast<long long>(alerts_before_drift),
              static_cast<long long>(alerts_after_drift));
  for (std::size_t day = 0; day < day_signals.size(); ++day) {
    std::printf("  day %zu: %lld actions (eng/imp %.3f), logloss %.4f "
                "(max %.4f), calibration %+.4f (max |%.4f|), drift %+.4f "
                "(max |%.4f|), label shift max |%.4f|, alerts %lld "
                "(%lld label)\n",
                day, static_cast<long long>(day_signals[day].actions),
                day_signals[day].impressions > 0
                    ? static_cast<double>(day_signals[day].engagements) /
                          static_cast<double>(day_signals[day].impressions)
                    : 0.0,
                day_signals[day].logloss, day_signals[day].max_logloss,
                day_signals[day].calibration,
                day_signals[day].max_abs_calibration,
                day_signals[day].prediction_drift,
                day_signals[day].max_abs_prediction_drift,
                day_signals[day].max_abs_label_shift,
                static_cast<long long>(day_signals[day].alerts),
                static_cast<long long>(day_signals[day].label_shift_alerts));
  }

  // --- Leg 3: the recall guardrail. Same world, same split, same seed;
  // the engines differ only in factor storage precision.
  const rtrec::SyntheticWorld recall_world(rtrec::SmallWorldConfig());
  const rtrec::Dataset cleaned =
      rtrec::Dataset(recall_world.GenerateDays(0, 7))
          .FilterMinActivity(smoke ? 5 : 10, smoke ? 3 : 5);
  const auto [train, test] = cleaned.SplitAtTime(6 * rtrec::kMillisPerDay);
  const rtrec::OfflineEvaluator evaluator;
  double recall10[3] = {0.0, 0.0, 0.0};
  const rtrec::FactorPrecision precisions[3] = {
      rtrec::FactorPrecision::kFloat32, rtrec::FactorPrecision::kFloat16,
      rtrec::FactorPrecision::kInt8};
  for (int i = 0; i < 3; ++i) {
    rtrec::RecEngine::Options options =
        rtrec::DefaultEngineOptions(rtrec::UpdatePolicy::kCombine);
    options.model.precision = precisions[i];
    rtrec::RecEngine recall_engine(recall_world.TypeResolver(), options);
    recall10[i] = evaluator.Evaluate(recall_engine, train, test).recall(10);
  }
  const double fp16_delta =
      recall10[0] > 0 ? std::fabs(recall10[1] - recall10[0]) / recall10[0]
                      : 1.0;
  const double int8_delta =
      recall10[0] > 0 ? std::fabs(recall10[2] - recall10[0]) / recall10[0]
                      : 1.0;
  // The committed claim: fp16 storage costs <1% recall@10. int8 is
  // reported (its resolution can round SGD steps away) but not gated.
  const bool fp16_within_1pct = recall10[0] > 0 && fp16_delta < 0.01;
  all_ok = all_ok && fp16_within_1pct;
  json.OpenObject("recall_guardrail");
  json.Field("train_actions", static_cast<std::int64_t>(train.size()));
  json.Field("test_actions", static_cast<std::int64_t>(test.size()));
  json.Field("recall_at_10_float32", recall10[0]);
  json.Field("recall_at_10_float16", recall10[1]);
  json.Field("recall_at_10_int8", recall10[2]);
  json.Field("fp16_rel_delta", fp16_delta);
  json.Field("int8_rel_delta", int8_delta);
  json.Field("fp16_within_1pct", fp16_within_1pct);
  json.Close();
  std::printf("workload recall@10: fp32 %.4f, fp16 %.4f (%.2f%% delta), "
              "int8 %.4f (%.2f%% delta)\n",
              recall10[0], recall10[1], fp16_delta * 100.0, recall10[2],
              int8_delta * 100.0);

  json.Field("elapsed_s", Seconds(phase_t0, Clock::now()));
  json.Close();
  return all_ok;
}

// --- Phase 5: cluster ------------------------------------------------------
//
// The sharded-deployment drill. Unlike the in-process phases this one
// forks real `serve` processes (the production shape): a generated
// manifest on ephemeral ports, per-shard checkpoint directories, loadgen
// threads routing through ClusterClient. Mid-traffic it kill -9s the
// shard owning a probe key and measures the numbers an operator asks
// about a sharded deployment:
//
//  - aggregate QPS vs a 1-process baseline (scaling ratio — honest, not
//    flattering, on a small host where all shards share cores);
//  - failover latency: kill -9 to the first successful answer for a key
//    the dead shard owned (served DEGRADED by the failover shard);
//  - error/degraded fractions during the outage window;
//  - recovery time: respawn to the restarted shard answering Ping,
//    restored from its checkpoint slice;
//  - a zero-error post-recovery window.

struct ClusterConfig {
  std::string serve_binary;  // Empty disables the phase.
  int num_shards = 4;
  int threads = 4;          // Loadgen threads (one ClusterClient each).
  int window_seconds = 3;   // Steady / outage / post-recovery windows.
  int workers_per_shard = 2;
};

/// Reserves an ephemeral loopback port by bind(0)/getsockname/close.
/// There is an inherent race (someone could grab the port before serve
/// binds it), but the bench owns the machine's rtrec processes and the
/// readiness gate catches the losing case.
int PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  int port = -1;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ::close(fd);
  return port;
}

/// Everything a shard child process needs, prebuilt in the parent.
/// fork() happens while loadgen threads run, so the child must not
/// allocate between fork and exec (another thread could hold the malloc
/// lock at fork time) — all strings exist before the fork.
struct ShardSpec {
  std::string binary;
  std::string manifest_flag;
  std::string shard_flag;
  std::string checkpoint_flag;
  std::string stats_flag;
  std::string workers;
  std::string log_path;
};

ShardSpec MakeShardSpec(const ClusterConfig& config,
                        const std::string& manifest_path,
                        const std::string& checkpoint_dir,
                        const std::string& log_prefix, int shard,
                        int stats_port) {
  ShardSpec spec;
  spec.binary = config.serve_binary;
  spec.manifest_flag = "--cluster-manifest=" + manifest_path;
  spec.shard_flag = "--shard-id=" + std::to_string(shard);
  spec.checkpoint_flag = "--checkpoint-dir=" + checkpoint_dir;
  spec.stats_flag = "--stats-port=" + std::to_string(stats_port);
  spec.workers = std::to_string(config.workers_per_shard);
  spec.log_path = log_prefix + std::to_string(shard) + ".log";
  return spec;
}

pid_t SpawnShard(const ShardSpec& spec) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: per-shard log file, then exec serve. Positional "0" is the
  // port, overridden by the manifest. Head sampling off keeps shards
  // lean; contexts adopted from the wire still record spans, which is
  // what the stitched-trace drill scrapes off /traces.
  const int fd =
      ::open(spec.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  ::execl(spec.binary.c_str(), spec.binary.c_str(), spec.manifest_flag.c_str(),
          spec.shard_flag.c_str(), spec.checkpoint_flag.c_str(),
          spec.stats_flag.c_str(), "--checkpoint-interval-ms=500",
          "--trace-sample-every-n=0", "0", spec.workers.c_str(),
          static_cast<char*>(nullptr));
  ::_exit(127);  // exec failed; the readiness gate reports it.
}

/// Minimal HTTP/1.0 GET against a shard's stats port; whole response
/// (headers + body) or "" on any failure.
std::string HttpGet(int port, const std::string& path) {
  auto conn =
      rtrec::ConnectTcp("127.0.0.1", static_cast<std::uint16_t>(port), 2000);
  if (!conn.ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(conn->get(), request.data() + sent, request.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!rtrec::WaitReady(conn->get(), /*for_read=*/false, 2000).ok()) {
        return "";
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return "";
  }
  std::string out;
  char buf[8192];
  while (true) {
    const ssize_t n = ::read(conn->get(), buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!rtrec::WaitReady(conn->get(), /*for_read=*/true, 2000).ok()) break;
      continue;
    }
    break;
  }
  return out;
}

/// Owns the shard processes: TERMs and reaps whatever is still alive on
/// scope exit, so no drill path leaks serve processes.
struct ProcessGroup {
  std::vector<pid_t> pids;

  ~ProcessGroup() {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    ReapAll();
  }
  void ReapAll() {
    for (pid_t& pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
};

/// Removes the drill's scratch directory on scope exit.
struct TempDir {
  std::string path;
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

bool AwaitClusterHealthy(rtrec::ClusterClient& client, int deadline_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (Clock::now() < deadline) {
    if (client.Healthy()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Prints the tail of each shard log — the post-mortem when bring-up or
/// the drill fails.
void DumpShardLogs(const std::string& workdir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(workdir, ec)) {
    if (entry.path().extension() != ".log") continue;
    std::ifstream in(entry.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (text.size() > 2048) text = text.substr(text.size() - 2048);
    std::fprintf(stderr, "---- %s ----\n%s\n",
                 entry.path().filename().c_str(), text.c_str());
  }
}

/// Per-window loadgen tallies (steady / outage / post-recovery).
struct ClusterWindow {
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> errors{0};
  std::atomic<std::int64_t> degraded{0};

  std::int64_t total() const { return ok.load() + errors.load(); }
  double ErrorFraction() const {
    const std::int64_t n = total();
    return n > 0 ? static_cast<double>(errors.load()) / n : 0.0;
  }
  double DegradedFraction() const {
    const std::int64_t n = total();
    return n > 0 ? static_cast<double>(degraded.load()) / n : 0.0;
  }
};

enum ClusterPhase { kSteady = 0, kOutage = 1, kPost = 2 };

/// One loadgen thread: its own ClusterClient (per the thread-safety
/// guidance), read-dominated mix over 64 users so every shard owns
/// traffic, tallies into whichever window is current.
void ClusterLoadgenThread(const rtrec::ClusterManifest& manifest,
                          rtrec::MetricsRegistry* metrics, int thread_index,
                          const std::atomic<int>& phase,
                          const std::atomic<bool>& stop,
                          ClusterWindow* windows) {
  rtrec::ClusterClient::Options options;
  options.manifest = manifest;
  options.metrics = metrics;
  rtrec::ClusterClient client(std::move(options));
  rtrec::RecRequest request;
  request.top_n = 10;
  rtrec::Timestamp t = 5'000'000 + thread_index;
  int seq = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    ClusterWindow& window = windows[phase.load(std::memory_order_relaxed)];
    const rtrec::UserId user = 1 + (seq * 7 + thread_index) % 64;
    if (seq % 8 == 7) {
      const rtrec::Status status =
          client.Observe(Watch(user, 10 + seq % 5, t += 1000));
      (status.ok() ? window.ok : window.errors)
          .fetch_add(1, std::memory_order_relaxed);
    } else {
      request.user = user;
      request.seed_videos = {10 + static_cast<rtrec::VideoId>(seq % 5)};
      request.now = t;
      auto reply = client.RecommendDetailed(request);
      if (reply.ok()) {
        window.ok.fetch_add(1, std::memory_order_relaxed);
        if (reply->degraded()) {
          window.degraded.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        window.errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    ++seq;
  }
}

/// Steady-state loadgen against `manifest` for `seconds`; returns QPS.
double MeasureClusterQps(const rtrec::ClusterManifest& manifest, int threads,
                         int seconds, std::int64_t* requests_out) {
  std::atomic<int> phase{kSteady};
  std::atomic<bool> stop{false};
  ClusterWindow windows[3];
  std::vector<std::thread> loadgen;
  loadgen.reserve(threads);
  const auto t0 = Clock::now();
  for (int i = 0; i < threads; ++i) {
    loadgen.emplace_back([&, i] {
      ClusterLoadgenThread(manifest, nullptr, i, phase, stop, windows);
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (auto& thread : loadgen) thread.join();
  const double elapsed = Seconds(t0, Clock::now());
  if (requests_out != nullptr) *requests_out = windows[kSteady].total();
  return elapsed > 0 ? windows[kSteady].total() / elapsed : 0.0;
}

/// Builds a loopback manifest over freshly reserved ephemeral ports and
/// writes it to `path`.
bool WriteManifest(int num_shards, const std::string& path,
                   rtrec::ClusterManifest* manifest) {
  std::string text = "# rtrec bench cluster manifest\n";
  for (int shard = 0; shard < num_shards; ++shard) {
    const int port = PickFreePort();
    if (port <= 0) {
      std::fprintf(stderr, "cluster: no free port for shard %d\n", shard);
      return false;
    }
    text += "shard " + std::to_string(shard) + " 127.0.0.1 " +
            std::to_string(port) + "\n";
  }
  auto parsed = rtrec::ClusterManifest::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "cluster: manifest build failed: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  std::ofstream out(path, std::ios::trunc);
  out << text;
  if (!out.good()) {
    std::fprintf(stderr, "cluster: cannot write %s\n", path.c_str());
    return false;
  }
  *manifest = *std::move(parsed);
  return true;
}

void EmitWindow(Json& json, const std::string& key,
                const ClusterWindow& window, double elapsed) {
  json.OpenObject(key);
  json.Field("elapsed_s", elapsed);
  json.Field("requests", window.total());
  json.Field("ok", window.ok.load());
  json.Field("errors", window.errors.load());
  json.Field("degraded", window.degraded.load());
  json.Field("qps", elapsed > 0 ? window.total() / elapsed : 0.0);
  json.Field("error_fraction", window.ErrorFraction());
  json.Field("degraded_fraction", window.DegradedFraction());
  json.Close();
}

bool RunCluster(Json& json, bool smoke, ClusterConfig config) {
  if (smoke) {
    config.threads = 2;
    config.window_seconds = 1;
  }

  char workdir_template[] = "rtrec-cluster-XXXXXX";
  if (::mkdtemp(workdir_template) == nullptr) {
    std::perror("cluster: mkdtemp");
    return false;
  }
  TempDir workdir{workdir_template};

  // 1-process baseline for the scaling ratio: same binary, same loadgen,
  // a manifest of one.
  double baseline_qps = 0.0;
  std::int64_t baseline_requests = 0;
  {
    rtrec::ClusterManifest manifest;
    const std::string manifest_path = workdir.path + "/manifest-baseline.txt";
    if (!WriteManifest(1, manifest_path, &manifest)) return false;
    ProcessGroup procs;
    procs.pids.push_back(SpawnShard(MakeShardSpec(
        config, manifest_path, workdir.path + "/baseline-checkpoints",
        workdir.path + "/baseline-shard-", 0, PickFreePort())));
    rtrec::ClusterClient::Options ready_options;
    ready_options.manifest = manifest;
    rtrec::ClusterClient ready(std::move(ready_options));
    if (!AwaitClusterHealthy(ready, 15'000)) {
      std::fprintf(stderr, "cluster: baseline shard never became healthy\n");
      DumpShardLogs(workdir.path);
      return false;
    }
    baseline_qps = MeasureClusterQps(manifest, config.threads,
                                     config.window_seconds,
                                     &baseline_requests);
  }  // ProcessGroup TERMs + reaps the baseline shard here.

  // The real cluster.
  rtrec::ClusterManifest manifest;
  const std::string manifest_path = workdir.path + "/manifest.txt";
  if (!WriteManifest(config.num_shards, manifest_path, &manifest)) {
    return false;
  }
  std::vector<ShardSpec> specs;
  std::vector<int> stats_ports;
  ProcessGroup procs;
  for (int shard = 0; shard < config.num_shards; ++shard) {
    stats_ports.push_back(PickFreePort());
    specs.push_back(MakeShardSpec(config, manifest_path,
                                  workdir.path + "/checkpoints",
                                  workdir.path + "/shard-", shard,
                                  stats_ports.back()));
    procs.pids.push_back(SpawnShard(specs.back()));
  }

  rtrec::ClusterClient::Options control_options;
  control_options.manifest = manifest;
  rtrec::ClusterClient control(std::move(control_options));
  if (!AwaitClusterHealthy(control, 15'000)) {
    std::fprintf(stderr, "cluster: %d-shard cluster never became healthy\n",
                 config.num_shards);
    DumpShardLogs(workdir.path);
    return false;
  }

  rtrec::MetricsRegistry metrics;
  std::atomic<int> phase{kSteady};
  std::atomic<bool> stop{false};
  ClusterWindow windows[3];
  std::vector<std::thread> loadgen;
  loadgen.reserve(config.threads);
  for (int i = 0; i < config.threads; ++i) {
    loadgen.emplace_back([&, i] {
      ClusterLoadgenThread(manifest, &metrics, i, phase, stop, windows);
    });
  }

  // Steady window.
  const auto steady_t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(config.window_seconds));
  const double steady_elapsed = Seconds(steady_t0, Clock::now());

  // kill -9 the shard owning the probe key, mid-traffic.
  const rtrec::UserId probe_user = 7;
  const rtrec::ShardId victim = control.OwnerOf(probe_user);
  phase.store(kOutage);
  const auto outage_t0 = Clock::now();
  ::kill(procs.pids[victim], SIGKILL);
  ::waitpid(procs.pids[victim], nullptr, 0);

  // Failover latency: a fresh router (closed breakers, no warm
  // connections — the worst case) asking for a key the dead shard owned,
  // timed to the first successful answer.
  double failover_ms = -1.0;
  bool failover_degraded = false;
  {
    rtrec::ClusterClient::Options probe_options;
    probe_options.manifest = manifest;
    rtrec::ClusterClient probe(std::move(probe_options));
    rtrec::RecRequest request;
    request.user = probe_user;
    request.top_n = 10;
    request.now = 1;
    const auto k0 = Clock::now();
    const auto deadline = k0 + std::chrono::seconds(5);
    while (Clock::now() < deadline) {
      auto reply = probe.RecommendDetailed(request);
      if (reply.ok()) {
        failover_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - k0)
                .count();
        failover_degraded = reply->degraded();
        break;
      }
    }
  }

  // One stitched multi-shard trace of the kill: the same dead-owner key
  // asked for under a sampled context. The router re-stamps the context
  // with the hop number on each failover attempt, the fallback shard
  // adopts it off the wire, and its /traces must then show the span
  // tree under our trace id, with hop=1 on /traces/slow. The shard
  // processes head-sample nothing (--trace-sample-every-n=0), so this
  // is the only trace the cluster records — pure wire propagation.
  const std::uint64_t drill_trace_id = 0xD157CA11ull;
  bool stitched_trace_found = false;
  bool stitched_hop_found = false;
  {
    rtrec::ClusterClient::Options drill_options;
    drill_options.manifest = manifest;
    rtrec::ClusterClient drill(std::move(drill_options));
    rtrec::TraceContext trace;
    trace.id = drill_trace_id;
    trace.start_us = rtrec::Tracer::NowMicros();
    rtrec::ScopedTraceContext scope(trace);
    rtrec::RecRequest request;
    request.user = probe_user;
    request.top_n = 10;
    request.now = 2;
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < deadline) {
      if (drill.RecommendDetailed(request).ok()) break;
    }
  }
  const std::string drill_hex = HexTraceId16(drill_trace_id);
  for (int shard = 0; shard < config.num_shards; ++shard) {
    if (shard == static_cast<int>(victim)) continue;
    const std::string traces = HttpGet(stats_ports[shard], "/traces");
    if (traces.find(drill_hex) == std::string::npos) continue;
    stitched_trace_found = true;
    const std::string slow = HttpGet(stats_ports[shard], "/traces/slow");
    if (slow.find(drill_hex) != std::string::npos &&
        slow.find("\"hop\":1") != std::string::npos) {
      stitched_hop_found = true;
    }
  }
  std::this_thread::sleep_for(std::chrono::seconds(config.window_seconds));

  // Restart the victim; recovery = respawn to answering Ping (it
  // restores its checkpointed slice on boot).
  const auto respawn_t0 = Clock::now();
  procs.pids[victim] = SpawnShard(specs[victim]);
  double recovery_ms = -1.0;
  {
    const auto deadline = respawn_t0 + std::chrono::seconds(20);
    while (Clock::now() < deadline) {
      if (control.ShardHealthy(victim)) {
        recovery_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      respawn_t0)
                .count();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  const double outage_elapsed = Seconds(outage_t0, Clock::now());

  // Post-recovery window: the cluster is whole again — zero errors
  // expected (degraded responses decay as the loadgen breakers close).
  phase.store(kPost);
  const auto post_t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(config.window_seconds));
  stop.store(true);
  for (auto& thread : loadgen) thread.join();
  const double post_elapsed = Seconds(post_t0, Clock::now());

  auto scrape = control.Stats();
  const double shards_healthy =
      scrape.ok() ? ScrapeValue(*scrape, "cluster_shards_healthy") : -1.0;

  const double steady_qps =
      steady_elapsed > 0 ? windows[kSteady].total() / steady_elapsed : 0.0;
  const double total_elapsed = steady_elapsed + outage_elapsed + post_elapsed;
  auto counter = [&metrics](const std::string& name) {
    return metrics.GetCounter(name)->value();
  };

  json.OpenObject("cluster");
  json.Field("shards", static_cast<std::int64_t>(config.num_shards));
  json.Field("loadgen_threads", static_cast<std::int64_t>(config.threads));
  json.Field("workers_per_shard",
             static_cast<std::int64_t>(config.workers_per_shard));
  json.OpenObject("baseline_one_shard");
  json.Field("requests", baseline_requests);
  json.Field("qps", baseline_qps);
  json.Close();
  EmitWindow(json, "steady", windows[kSteady], steady_elapsed);
  json.Field("scaling_vs_one_shard",
             baseline_qps > 0 ? steady_qps / baseline_qps : 0.0);
  EmitWindow(json, "outage", windows[kOutage], outage_elapsed);
  json.Field("victim_shard", static_cast<std::int64_t>(victim));
  json.Field("failover_latency_ms", failover_ms);
  json.Field("failover_reply_degraded", failover_degraded);
  json.OpenObject("stitched_trace");
  json.Field("trace_id", drill_hex);
  json.Field("found_on_fallback_shard", stitched_trace_found);
  json.Field("failover_hop_recorded", stitched_hop_found);
  json.Close();
  json.Field("recovery_ms", recovery_ms);
  EmitWindow(json, "post_recovery", windows[kPost], post_elapsed);
  json.OpenObject("router");
  json.Field("requests", counter("cluster.router.requests"));
  json.Field("failovers", counter("cluster.router.failovers"));
  json.Field("degraded_responses",
             counter("cluster.router.degraded_responses"));
  json.Field("errors", counter("cluster.router.errors"));
  json.Field("breaker_trips", counter("cluster.router.breaker_trips"));
  json.Field("probe_success", counter("cluster.router.probe_success"));
  json.Field("probe_failure", counter("cluster.router.probe_failure"));
  json.Close();
  json.OpenObject("per_shard");
  for (int shard = 0; shard < config.num_shards; ++shard) {
    const std::string prefix = "cluster.shard." + std::to_string(shard);
    const std::int64_t requests = counter(prefix + ".requests");
    json.OpenObject("shard_" + std::to_string(shard));
    json.Field("requests", requests);
    json.Field("failures", counter(prefix + ".failures"));
    json.Field("qps", total_elapsed > 0 ? requests / total_elapsed : 0.0);
    json.Close();
  }
  json.Close();
  json.Field("merged_scrape_bytes",
             scrape.ok() ? static_cast<std::int64_t>(scrape->size())
                         : std::int64_t{-1});
  json.Field("shards_healthy_at_end", shards_healthy);
  json.Close();

  std::printf(
      "cluster  %d shards %.0f QPS (1 shard %.0f, x%.2f); kill -9 shard %u: "
      "failover %.1fms%s, outage errors %.2f%% degraded %.1f%%, recovery "
      "%.0fms, post errors %lld\n",
      config.num_shards, steady_qps, baseline_qps,
      baseline_qps > 0 ? steady_qps / baseline_qps : 0.0, victim, failover_ms,
      failover_degraded ? " (DEGRADED)" : "",
      windows[kOutage].ErrorFraction() * 100,
      windows[kOutage].DegradedFraction() * 100, recovery_ms,
      static_cast<long long>(windows[kPost].errors.load()));
  std::printf("cluster  stitched trace %s: %s on fallback /traces, hop=1 %s\n",
              drill_hex.c_str(),
              stitched_trace_found ? "found" : "MISSING",
              stitched_hop_found ? "recorded" : "MISSING");

  // The drill's contract: the kill is survivable (bounded errors, the
  // failover answer arrives and is DEGRADED), the restart heals
  // (recovery measured, post window error-free).
  bool ok = true;
  if (steady_qps <= 0) {
    std::fprintf(stderr, "cluster: no steady throughput\n");
    ok = false;
  }
  if (failover_ms < 0 || !failover_degraded) {
    std::fprintf(stderr, "cluster: failover answer missing or not DEGRADED\n");
    ok = false;
  }
  if (!stitched_trace_found || !stitched_hop_found) {
    std::fprintf(stderr,
                 "cluster: no stitched multi-shard trace — the propagated "
                 "context %s did not surface on a fallback shard's /traces "
                 "with hop=1\n",
                 drill_hex.c_str());
    ok = false;
  }
  if (windows[kOutage].ErrorFraction() > 0.2) {
    std::fprintf(stderr, "cluster: outage error fraction above 20%%\n");
    ok = false;
  }
  if (recovery_ms < 0) {
    std::fprintf(stderr, "cluster: victim never recovered\n");
    ok = false;
  }
  if (windows[kPost].errors.load() != 0) {
    std::fprintf(stderr, "cluster: errors after recovery\n");
    ok = false;
  }
  if (!ok) DumpShardLogs(workdir.path);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR10.json";
  std::string trace_dump;
  int connections = 8;
  int seconds = 3;
  IngestConfig ingest_config;
  ClusterConfig cluster_config;
  bool cluster_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--pin-cpus") == 0) {
      ingest_config.pin_cpus = true;
    } else if (std::strcmp(argv[i], "--cluster-only") == 0) {
      cluster_only = true;
    } else if (ParseFlag(argv[i], "--serve-binary", &value)) {
      cluster_config.serve_binary = value;
    } else if (ParseFlag(argv[i], "--out", &value)) {
      out_path = value;
    } else if (ParseFlag(argv[i], "--trace-dump", &value)) {
      trace_dump = value;
    } else if (ParseFlag(argv[i], "--connections", &value)) {
      connections = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--seconds", &value)) {
      seconds = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--queue-capacity", &value)) {
      ingest_config.queue_capacity =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--drain-batch", &value)) {
      ingest_config.drain_batch =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--trace-dump=PATH] "
                   "[--connections=N] [--seconds=N] [--queue-capacity=N] "
                   "[--drain-batch=N] [--pin-cpus] [--serve-binary=PATH] "
                   "[--cluster-only]\n",
                   argv[0]);
      return 2;
    }
  }
  if (cluster_only && cluster_config.serve_binary.empty()) {
    std::fprintf(stderr, "--cluster-only requires --serve-binary=PATH\n");
    return 2;
  }

  std::printf("== bench_runner (%s mode, seed 2016) ==\n",
              smoke ? "smoke" : "full");
  Json json;
  json.Open();
  json.Field("schema", std::string("rtrec-bench/1"));
  json.Field("seed", std::int64_t{2016});
  json.Field("smoke", smoke);

  bool ok = true;
  if (!cluster_only) {
    ok = RunIngest(json, smoke, ingest_config);
    ok = RunServe(json, smoke, connections, seconds) && ok;
    ok = RunTracing(json, smoke, trace_dump) && ok;
    ok = RunTransport(json, smoke, seconds) && ok;
    ok = RunRecall(json, smoke) && ok;
    ok = RunQuality(json, smoke) && ok;
    ok = RunWorkload(json, smoke) && ok;
  }
  if (!cluster_config.serve_binary.empty()) {
    ok = RunCluster(json, smoke, cluster_config) && ok;
  }
  json.Close();

  std::ofstream out(out_path, std::ios::trunc);
  out << json.str();
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("ledger   %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
