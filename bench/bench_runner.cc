// Unified benchmark runner: one binary, four phases, one
// machine-readable ledger.
//
//   ingest  — replays a seeded synthetic action stream through the
//             Fig. 2 topology with tracing on and reports end-to-end
//             actions/sec (first spout emission through the last
//             terminal-bolt drain, via the topology.first_emit_us /
//             final_done_us gauges) plus per-stage latency percentiles
//             derived from the propagated trace contexts
//             (trace.stage.*, trace.e2e.*) and the ring-queue counters
//             (stream.queue.*);
//   serve   — stands up a traced RecServer over a warmed service,
//             drives it from concurrent RecClient loadgen threads, and
//             reports QPS, client/server percentiles, and a Stats-RPC
//             scrape pair (verifying counters are monotone);
//   recall  — offline recall@N / average-rank of the CombineModel
//             engine under the Section 6.1 protocol;
//   quality — drives a deterministic co-watch workload through a
//             service with the quality monitor attached and reports the
//             live signals (progressive logloss, online recall@10, the
//             CTR join segments, drift gauges, alert counters).
//
// Everything is seeded (WorldConfig seed 2016), so two runs on the same
// machine produce the same workload; timings of course vary.
//
//   $ ./bench_runner [--smoke] [--out=BENCH_PR6.json]
//                    [--connections=N] [--seconds=N]
//                    [--queue-capacity=N] [--drain-batch=N] [--pin-cpus]
//
// --smoke shrinks every phase for CI (a few seconds total).
// --queue-capacity / --drain-batch / --pin-cpus tune the ingest
// topology's ring queues (0 = engine defaults). The ledger is written
// to --out (default BENCH_PR6.json in the working directory);
// scripts/bench.sh wraps the build + run + validate cycle.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/engine.h"
#include "core/topology_factory.h"
#include "data/dataset.h"
#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"
#include "net/rec_client.h"
#include "net/rec_server.h"
#include "service/recommendation_service.h"
#include "stream/topology.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// --- Minimal JSON writer ---------------------------------------------------
// The ledger is flat enough that a hand-rolled writer beats dragging in a
// JSON dependency; keys are code-controlled (no escaping needed).

class Json {
 public:
  void Open() { Begin("{"); }
  void Close() { End("}"); }
  void OpenObject(const std::string& key) {
    Key(key);
    out_ << '{';
    needs_comma_ = false;
  }

  void Field(const std::string& key, double value) {
    Key(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ << buf;
  }
  void Field(const std::string& key, std::int64_t value) {
    Key(key);
    out_ << value;
  }
  void Field(const std::string& key, const std::string& value) {
    Key(key);
    out_ << '"' << value << '"';
  }
  void Field(const std::string& key, bool value) {
    Key(key);
    out_ << (value ? "true" : "false");
  }

  std::string str() const { return out_.str() + "\n"; }

 private:
  void Key(const std::string& key) {
    Comma();
    out_ << '"' << key << "\": ";
  }
  void Begin(const char* bracket) {
    Comma();
    out_ << bracket;
    needs_comma_ = false;
  }
  void End(const char* bracket) {
    out_ << bracket;
    needs_comma_ = true;
  }
  void Comma() {
    if (needs_comma_) out_ << ", ";
    needs_comma_ = true;
  }

  std::ostringstream out_;
  bool needs_comma_ = false;
};

/// Emits {count, mean_us, p50_us, p95_us, p99_us} for a histogram.
void Percentiles(Json& json, const std::string& key,
                 const rtrec::Histogram& hist) {
  json.OpenObject(key);
  json.Field("count", static_cast<std::int64_t>(hist.count()));
  json.Field("mean_us", hist.Mean());
  json.Field("p50_us", hist.Percentile(50));
  json.Field("p95_us", hist.Percentile(95));
  json.Field("p99_us", hist.Percentile(99));
  json.Close();
}

// --- Shared workload helpers ----------------------------------------------

rtrec::UserAction Watch(rtrec::UserId user, rtrec::VideoId video,
                        rtrec::Timestamp t) {
  rtrec::UserAction action;
  action.user = user;
  action.video = video;
  action.type = rtrec::ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

// --- Phase 1: ingest -------------------------------------------------------

struct IngestConfig {
  std::size_t queue_capacity = 0;  // 0 = engine default.
  std::size_t drain_batch = 0;     // 0 = engine default.
  bool pin_cpus = false;
};

bool RunIngest(Json& json, bool smoke, const IngestConfig& config) {
  const int days = smoke ? 1 : 4;
  const rtrec::SyntheticWorld world(rtrec::SmallWorldConfig());
  std::vector<rtrec::UserAction> actions = world.GenerateDays(0, days);
  const std::size_t num_actions = actions.size();

  rtrec::FactorStore::Options factor_options;
  factor_options.num_factors = 16;
  rtrec::FactorStore factors(factor_options);
  rtrec::HistoryStore history;
  rtrec::SimTableStore sim_table;
  rtrec::PipelineDeps deps;
  deps.factors = &factors;
  deps.history = &history;
  deps.sim_table = &sim_table;
  deps.type_resolver = world.TypeResolver();
  deps.model_config.num_factors = 16;

  rtrec::MetricsRegistry metrics;
  rtrec::Tracer::Options tracer_options;
  tracer_options.sample_every_n = 8;
  tracer_options.metrics = &metrics;
  rtrec::Tracer tracer(tracer_options);

  auto source =
      std::make_shared<rtrec::VectorActionSource>(std::move(actions));
  auto spec = rtrec::BuildRecommendationTopology(source, deps);
  if (!spec.ok()) {
    std::fprintf(stderr, "ingest: topology spec failed: %s\n",
                 spec.status().ToString().c_str());
    return false;
  }
  rtrec::stream::TopologyOptions topo_options;
  topo_options.metrics = &metrics;
  topo_options.tracer = &tracer;
  topo_options.queue_capacity = config.queue_capacity;
  topo_options.drain_batch = config.drain_batch;
  topo_options.pin_cpus = config.pin_cpus;
  auto topo =
      rtrec::stream::Topology::Create(std::move(spec).value(), topo_options);
  if (!topo.ok()) {
    std::fprintf(stderr, "ingest: topology create failed: %s\n",
                 topo.status().ToString().c_str());
    return false;
  }

  const auto t0 = Clock::now();
  if (!(*topo)->Start().ok() || !(*topo)->Join().ok()) {
    std::fprintf(stderr, "ingest: topology run failed\n");
    return false;
  }
  const double wall_elapsed = Seconds(t0, Clock::now());

  // Honest end-to-end accounting: the topology stamps the first spout
  // emission, the last spout finishing, and the last terminal bolt
  // finishing its drain. actions_per_sec covers spout-emit through
  // final-bolt-ack — thread spawn/join overhead excluded, queue drain
  // included (the old wall-clock number hid neither).
  const std::int64_t first_emit_us =
      metrics.GetGauge("topology.first_emit_us")->value();
  const std::int64_t spout_done_us =
      metrics.GetGauge("topology.spout_done_us")->value();
  const std::int64_t final_done_us =
      metrics.GetGauge("topology.final_done_us")->value();
  double e2e_elapsed = (final_done_us - first_emit_us) / 1e6;
  double emit_elapsed = (spout_done_us - first_emit_us) / 1e6;
  if (first_emit_us == 0 || e2e_elapsed <= 0) e2e_elapsed = wall_elapsed;
  if (first_emit_us == 0 || emit_elapsed <= 0) emit_elapsed = wall_elapsed;
  const double actions_per_sec =
      e2e_elapsed > 0 ? static_cast<double>(num_actions) / e2e_elapsed : 0.0;

  json.OpenObject("ingest");
  json.Field("days", static_cast<std::int64_t>(days));
  json.Field("actions", static_cast<std::int64_t>(num_actions));
  json.Field("elapsed_s", wall_elapsed);
  json.Field("e2e_elapsed_s", e2e_elapsed);
  json.Field("actions_per_sec", actions_per_sec);
  json.Field("spout_emit_per_sec",
             emit_elapsed > 0
                 ? static_cast<double>(num_actions) / emit_elapsed
                 : 0.0);
  json.OpenObject("queue");
  json.Field("capacity",
             static_cast<std::int64_t>(config.queue_capacity));
  json.Field("drain_batch", static_cast<std::int64_t>(config.drain_batch));
  json.Field("pinned_tasks", metrics.GetCounter("topology.pinned_tasks")
                                 ->value());
  json.Field("push_retries",
             metrics.GetCounter("stream.queue.push_retries")->value());
  json.Field("batch_drains",
             metrics.GetCounter("stream.queue.batch_drains")->value());
  json.Field("parked_wakeups",
             metrics.GetCounter("stream.queue.parked_wakeups")->value());
  json.Close();
  json.Field(
      "traces_sampled",
      static_cast<std::int64_t>(metrics.GetCounter("trace.sampled")->value()));
  json.OpenObject("stages");
  const char* stages[] = {"compute_mf",     "mf_storage",   "user_history",
                          "get_item_pairs", "item_pair_sim", "result_storage"};
  for (const char* stage : stages) {
    json.OpenObject(stage);
    Percentiles(json, "process",
                *tracer.StageHistogram(stage));
    Percentiles(json, "queue_wait", *tracer.QueueHistogram(stage));
    Percentiles(json, "since_root", *tracer.SinceRootHistogram(stage));
    json.Close();
  }
  json.Close();
  // result_storage ends the longest chain, so its since-root time is the
  // pipeline's end-to-end latency.
  Percentiles(json, "e2e_us", *tracer.SinceRootHistogram("result_storage"));
  json.Close();

  std::printf(
      "ingest   %zu actions in %.2fs e2e (%.0f actions/sec, %lld traces, "
      "%lld drains)\n",
      num_actions, e2e_elapsed, actions_per_sec,
      static_cast<long long>(metrics.GetCounter("trace.sampled")->value()),
      static_cast<long long>(
          metrics.GetCounter("stream.queue.batch_drains")->value()));
  return true;
}

// --- Phase 2: serve --------------------------------------------------------

/// Reads the value of `name` from Prometheus text; -1 if absent.
double ScrapeValue(const std::string& text, const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, name.size(), name) == 0 &&
        line.size() > name.size() && line[name.size()] == ' ') {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  return -1.0;
}

bool RunServe(Json& json, bool smoke, int connections, int seconds) {
  if (smoke) {
    connections = std::min(connections, 4);
    seconds = 1;
  }

  rtrec::MetricsRegistry metrics;
  rtrec::Tracer::Options tracer_options;
  tracer_options.sample_every_n = 4;
  tracer_options.metrics = &metrics;
  rtrec::Tracer tracer(tracer_options);

  rtrec::RecommendationService::Options service_options;
  service_options.metrics = &metrics;
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; },
      service_options);
  rtrec::Timestamp warm_t = 0;
  for (int round = 0; round < 20; ++round) {
    for (rtrec::UserId user = 1; user <= 16; ++user) {
      service.Observe(Watch(user, 10 + user % 5, warm_t += 1000));
      service.Observe(Watch(user, 11 + user % 5, warm_t += 1000));
    }
  }

  rtrec::RecServer::Options server_options;
  server_options.port = 0;  // Ephemeral.
  server_options.num_workers = 4;
  server_options.metrics = &metrics;
  server_options.tracer = &tracer;
  rtrec::RecServer server(&service, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "serve: server failed to start\n");
    return false;
  }

  rtrec::Histogram* client_latency =
      metrics.GetHistogram("bench.client.rpc.latency_us");
  std::atomic<std::int64_t> ok_calls{0};
  std::atomic<std::int64_t> failed_calls{0};
  std::atomic<bool> stop{false};

  // First Stats scrape before the load, second one after: the counters
  // in the second must dominate the first.
  rtrec::RecClient::Options stats_client_options;
  stats_client_options.port = server.port();
  rtrec::RecClient stats_client(stats_client_options);
  auto first_scrape = stats_client.Stats();
  if (!first_scrape.ok()) {
    std::fprintf(stderr, "serve: first stats scrape failed: %s\n",
                 first_scrape.status().ToString().c_str());
    server.Stop();
    return false;
  }

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int i = 0; i < connections; ++i) {
    threads.emplace_back([&, i] {
      rtrec::RecClient::Options client_options;
      client_options.port = server.port();
      client_options.metrics = &metrics;
      rtrec::RecClient client(client_options);
      rtrec::RecRequest request;
      request.top_n = 10;
      rtrec::Timestamp t = 1'000'000 + i;
      int seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        request.user = 1 + (seq + i) % 16;
        request.seed_videos = {10 + static_cast<rtrec::VideoId>(seq % 5)};
        request.now = t;
        const auto start = Clock::now();
        bool ok;
        // 1-in-8 writes: read-dominated, like the production mix.
        if (seq % 8 == 7) {
          ok = client.Observe(Watch(request.user, 10 + seq % 5, t += 1000))
                   .ok();
        } else {
          ok = client.Recommend(request).ok();
        }
        client_latency->Add(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
        (ok ? ok_calls : failed_calls)
            .fetch_add(1, std::memory_order_relaxed);
        ++seq;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop.store(true);
  for (auto& thread : threads) thread.join();
  const double elapsed = Seconds(t0, Clock::now());

  auto second_scrape = stats_client.Stats();
  server.Stop();
  if (!second_scrape.ok()) {
    std::fprintf(stderr, "serve: second stats scrape failed: %s\n",
                 second_scrape.status().ToString().c_str());
    return false;
  }
  const double requests_before =
      ScrapeValue(*first_scrape, "net_server_requests_total");
  const double requests_after =
      ScrapeValue(*second_scrape, "net_server_requests_total");
  const bool monotone =
      requests_before >= 0 && requests_after > requests_before;

  const std::int64_t total = ok_calls.load() + failed_calls.load();
  json.OpenObject("serve");
  json.Field("connections", static_cast<std::int64_t>(connections));
  json.Field("elapsed_s", elapsed);
  json.Field("requests", total);
  json.Field("ok", ok_calls.load());
  json.Field("failed", failed_calls.load());
  json.Field("qps", elapsed > 0 ? total / elapsed : 0.0);
  Percentiles(json, "client_latency", *client_latency);
  Percentiles(json, "server_recommend",
              *metrics.GetHistogram("net.server.rpc.recommend.latency_us"));
  Percentiles(json, "server_observe",
              *metrics.GetHistogram("net.server.rpc.observe.latency_us"));
  Percentiles(json, "trace_wire_recommend",
              *tracer.SinceRootHistogram("wire.recommend"));
  Percentiles(json, "trace_service_recommend",
              *tracer.StageHistogram("service.recommend"));
  json.OpenObject("stats_scrape");
  json.Field("first_bytes", static_cast<std::int64_t>(first_scrape->size()));
  json.Field("second_bytes",
             static_cast<std::int64_t>(second_scrape->size()));
  json.Field("requests_before", requests_before);
  json.Field("requests_after", requests_after);
  json.Field("counters_monotone", monotone);
  // Serving hot-path counters, read off the same Stats scrape that
  // operators see: the batched VectorsGet and the factor cache must be
  // doing work during the serve phase.
  json.Field("multiget_calls",
             ScrapeValue(*second_scrape, "kvstore_multiget_calls_total"));
  json.Field("multiget_keys",
             ScrapeValue(*second_scrape, "kvstore_multiget_keys_total"));
  json.Field(
      "multiget_shard_batches",
      ScrapeValue(*second_scrape, "kvstore_multiget_shard_batches_total"));
  json.Field(
      "factor_cache_hits",
      ScrapeValue(*second_scrape, "service_factor_cache_hits_total"));
  json.Field(
      "factor_cache_misses",
      ScrapeValue(*second_scrape, "service_factor_cache_misses_total"));
  json.Close();
  json.Close();

  std::printf("serve    %lld requests in %.2fs (%.0f QPS, p99 %.0fus, "
              "scrapes %s)\n",
              static_cast<long long>(total), elapsed, total / elapsed,
              client_latency->Percentile(99),
              monotone ? "monotone" : "NOT MONOTONE");
  return monotone;
}

// --- Phase 3: recall -------------------------------------------------------

bool RunRecall(Json& json, bool smoke) {
  const rtrec::SyntheticWorld world(rtrec::SmallWorldConfig());
  const rtrec::Dataset cleaned =
      rtrec::Dataset(world.GenerateDays(0, 7))
          .FilterMinActivity(smoke ? 5 : 10, smoke ? 3 : 5);
  const auto [train, test] = cleaned.SplitAtTime(6 * rtrec::kMillisPerDay);

  rtrec::RecEngine engine(
      world.TypeResolver(),
      rtrec::DefaultEngineOptions(rtrec::UpdatePolicy::kCombine));
  const rtrec::OfflineEvaluator evaluator;
  const auto t0 = Clock::now();
  const rtrec::OfflineResult result =
      evaluator.Evaluate(engine, train, test);
  const double elapsed = Seconds(t0, Clock::now());

  json.OpenObject("recall");
  json.Field("model", result.model_name);
  json.Field("train_actions", static_cast<std::int64_t>(train.size()));
  json.Field("test_actions", static_cast<std::int64_t>(test.size()));
  json.Field("users_evaluated",
             static_cast<std::int64_t>(result.users_evaluated));
  json.Field("elapsed_s", elapsed);
  json.Field("recall_at_1", result.recall(1));
  json.Field("recall_at_5", result.recall(5));
  json.Field("recall_at_10", result.recall(10));
  json.Field("avg_rank", result.avg_rank);
  json.Close();

  std::printf("recall   %s: recall@10 %.4f, avg rank %.4f "
              "(%zu users, %.2fs)\n",
              result.model_name.c_str(), result.recall(10), result.avg_rank,
              result.users_evaluated, elapsed);
  return true;
}

// --- Phase 4: quality ------------------------------------------------------

bool RunQuality(Json& json, bool smoke) {
  rtrec::MetricsRegistry metrics;
  rtrec::RecommendationService::Options service_options;
  service_options.metrics = &metrics;
  service_options.engine.model.num_factors = 16;
  service_options.quality.holdout_every_n = 5;
  service_options.quality.num_arms = 2;
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; },
      service_options);

  // Deterministic co-watch workload: every user cycles the same small
  // catalog slice, so the 1-in-5 held-out actions are predictable from
  // the co-watch structure and online recall comes out > 0.
  const int rounds = smoke ? 20 : 60;
  const int num_users = 12;
  const int num_videos = 4;
  rtrec::Timestamp t = 0;
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (rtrec::UserId user = 1; user <= num_users; ++user) {
      for (int v = 0; v < num_videos; ++v) {
        service.Observe(
            Watch(user, 10 + static_cast<rtrec::VideoId>(v), t += 1000));
      }
    }
  }

  // Serving + click simulation for the CTR join: every user gets a page
  // and every third user "clicks" its top slot; a couple of users take
  // the degraded (hot-video fallback) path instead.
  for (rtrec::UserId user = 1; user <= num_users; ++user) {
    rtrec::RecRequest request;
    request.user = user;
    request.top_n = 5;
    request.now = t;
    std::vector<rtrec::ScoredVideo> page;
    if (user % 6 == 0) {
      page = service.FallbackRecommend(request);
    } else {
      auto served = service.Recommend(request);
      if (served.ok()) page = std::move(served).value();
    }
    if (!page.empty() && user % 3 == 0) {
      rtrec::UserAction click;
      click.user = user;
      click.video = page[0].video;
      click.type = rtrec::ActionType::kClick;
      click.time = t + 10;
      service.Observe(click);
    }
  }
  const double elapsed = Seconds(t0, Clock::now());

  auto counter = [&metrics](const char* name) {
    return metrics.GetCounter(name)->value();
  };
  auto gauge = [&metrics](const char* name) {
    return metrics.GetDoubleGauge(name)->value();
  };

  const std::int64_t evaluated = counter("quality.holdout.evaluated");
  const std::int64_t hits = counter("quality.holdout.hits");
  const double recall = gauge("quality.online_recall@10");
  const double logloss = gauge("quality.progressive.logloss");

  json.OpenObject("quality");
  json.Field("elapsed_s", elapsed);
  json.OpenObject("progressive");
  json.Field("samples", counter("quality.progressive.samples"));
  json.Field("logloss", logloss);
  json.Field("bias", gauge("quality.progressive.bias"));
  json.Close();
  json.OpenObject("holdout");
  json.Field("evaluated", evaluated);
  json.Field("hits", hits);
  json.Field("online_recall_at_10", recall);
  json.Close();
  json.OpenObject("ctr");
  json.Field("impressions", counter("quality.ctr.impressions"));
  json.Field("clicks", counter("quality.ctr.clicks"));
  json.Field("overall", gauge("quality.ctr.overall"));
  json.Field("position_weighted", gauge("quality.ctr.position_weighted"));
  json.Field("primary", gauge("quality.ctr.primary"));
  json.Field("degraded", gauge("quality.ctr.degraded"));
  json.Field("arm_0", gauge("quality.ctr.arm.0"));
  json.Field("arm_1", gauge("quality.ctr.arm.1"));
  json.Field("duplicate_clicks", counter("quality.ctr.duplicate_clicks"));
  json.Field("unmatched_engagements",
             counter("quality.ctr.unmatched_engagements"));
  json.Close();
  json.OpenObject("drift");
  json.Field("embedding_norm", gauge("quality.drift.embedding_norm"));
  json.Field("global_bias", gauge("quality.drift.global_bias"));
  json.Field("sim_staleness_ms",
             metrics.GetGauge("quality.drift.sim_staleness_ms")->value());
  json.Field("served_coverage", gauge("quality.drift.served_coverage"));
  json.Close();
  json.OpenObject("alerts");
  json.Field("logloss", counter("quality.alerts.logloss"));
  json.Field("calibration", counter("quality.alerts.calibration"));
  json.Field("embedding_norm", counter("quality.alerts.embedding_norm"));
  json.Field("bias_drift", counter("quality.alerts.bias_drift"));
  json.Field("staleness", counter("quality.alerts.staleness"));
  json.Field("coverage", counter("quality.alerts.coverage"));
  json.Close();
  json.Close();

  std::printf("quality  logloss %.4f, online recall@10 %.4f "
              "(%lld/%lld holdouts), ctr %.3f\n",
              logloss, recall, static_cast<long long>(hits),
              static_cast<long long>(evaluated),
              gauge("quality.ctr.overall"));
  // The signals the ledger validation gates on: a model that trained on
  // a co-watch workload must be able to predict some of it.
  return evaluated > 0 && hits > 0 && std::isfinite(logloss) && logloss > 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_PR6.json";
  int connections = 8;
  int seconds = 3;
  IngestConfig ingest_config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--pin-cpus") == 0) {
      ingest_config.pin_cpus = true;
    } else if (ParseFlag(argv[i], "--out", &value)) {
      out_path = value;
    } else if (ParseFlag(argv[i], "--connections", &value)) {
      connections = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--seconds", &value)) {
      seconds = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--queue-capacity", &value)) {
      ingest_config.queue_capacity =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--drain-batch", &value)) {
      ingest_config.drain_batch =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--connections=N] "
                   "[--seconds=N] [--queue-capacity=N] [--drain-batch=N] "
                   "[--pin-cpus]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== bench_runner (%s mode, seed 2016) ==\n",
              smoke ? "smoke" : "full");
  Json json;
  json.Open();
  json.Field("schema", std::string("rtrec-bench/1"));
  json.Field("seed", std::int64_t{2016});
  json.Field("smoke", smoke);

  bool ok = RunIngest(json, smoke, ingest_config);
  ok = RunServe(json, smoke, connections, seconds) && ok;
  ok = RunRecall(json, smoke) && ok;
  ok = RunQuality(json, smoke) && ok;
  json.Close();

  std::ofstream out(out_path, std::ios::trunc);
  out << json.str();
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("ledger   %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
