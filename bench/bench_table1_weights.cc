// Table 1 — user action weight settings. Prints the confidence weight of
// every action type under the default FeedbackConfig, including the
// PlayTime view-rate law of Eq. 6 (the paper prints the PlayTime range
// [1.5, 2.5]).

#include <cstdio>
#include <iostream>

#include "core/implicit_feedback.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Table 1: user action weight settings ===\n\n");
  const FeedbackConfig config;
  if (Status s = config.Validate(); !s.ok()) {
    std::fprintf(stderr, "invalid config: %s\n", s.ToString().c_str());
    return 1;
  }

  TablePrinter table({"Action", "Weight"});
  for (ActionType type :
       {ActionType::kImpress, ActionType::kClick, ActionType::kPlay,
        ActionType::kComment, ActionType::kLike, ActionType::kShare}) {
    UserAction action;
    action.type = type;
    table.AddRow({ActionTypeToString(type),
                  Cell(ActionConfidence(action, config), 2)});
  }
  UserAction full_watch;
  full_watch.type = ActionType::kPlayTime;
  full_watch.view_fraction = 1.0;
  UserAction min_watch = full_watch;
  min_watch.view_fraction = config.min_view_rate;
  table.AddRow({"play_time",
                "[" + Cell(ActionConfidence(min_watch, config), 2) + ", " +
                    Cell(ActionConfidence(full_watch, config), 2) + "]"});
  table.Print(std::cout);

  std::printf("\nEq. 6 PlayTime weight vs view rate "
              "(w = a + b*log10(vrate), a=%.1f b=%.1f):\n\n",
              config.playtime_a, config.playtime_b);
  TablePrinter sweep({"vrate", "weight"});
  for (double vrate : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    UserAction action;
    action.type = ActionType::kPlayTime;
    action.view_fraction = vrate;
    sweep.AddRow({Cell(vrate, 2), Cell(ActionConfidence(action, config), 3)});
  }
  sweep.Print(std::cout);
  std::printf("\n(vrate < %.2f falls back to the Play weight — inefficient "
              "plays carry no extra signal, Section 3.2)\n",
              config.min_view_rate);
  return 0;
}
