// Table 2 — hyper-parameter grid search. Reproduces how the paper's
// parameter values "are determined by using grid search to obtain the
// optimal values": a reduced grid over the model parameters (η0, α) and
// the similarity parameters (β, ξ), scored by recall@10 on a held-out
// day. Prints each cell and the winning configuration.

#include <cstdio>
#include <iostream>

#include "core/engine.h"
#include "data/event_generator.h"
#include "eval/evaluator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

namespace {

double Score(const SyntheticWorld& world, const Dataset& train,
             const Dataset& test, const RecEngine::Options& options) {
  RecEngine engine(world.TypeResolver(), options);
  return OfflineEvaluator().Evaluate(engine, train, test).recall(10);
}

}  // namespace

int main() {
  std::printf("=== Table 2: hyper-parameter grid search ===\n\n");
  const SyntheticWorld world(SmallWorldConfig(2024));
  const Dataset cleaned =
      Dataset(world.GenerateDays(0, 4)).FilterMinActivity(8, 4);
  const auto [train, test] = cleaned.SplitAtTime(3 * kMillisPerDay);

  // Phase 1: model parameters (η0 × α), CombineModel, defaults elsewhere.
  std::printf("--- sweep 1: learning rate η0 x confidence coefficient α "
              "(recall@10) ---\n");
  const std::vector<double> eta0_grid = {0.0025, 0.005, 0.01};
  const std::vector<double> alpha_grid = {0.0, 0.0034, 0.01};
  TablePrinter model_table({"eta0 \\ alpha", Cell(alpha_grid[0], 4),
                            Cell(alpha_grid[1], 4), Cell(alpha_grid[2], 4)});
  double best_score = -1.0;
  RecEngine::Options best = DefaultEngineOptions(UpdatePolicy::kCombine);
  for (double eta0 : eta0_grid) {
    std::vector<std::string> row = {Cell(eta0, 4)};
    for (double alpha : alpha_grid) {
      RecEngine::Options options =
          DefaultEngineOptions(UpdatePolicy::kCombine);
      options.model.eta0 = eta0;
      options.model.alpha = alpha;
      const double score = Score(world, train, test, options);
      row.push_back(Cell(score));
      if (score > best_score) {
        best_score = score;
        best = options;
      }
    }
    model_table.AddRow(std::move(row));
  }
  model_table.Print(std::cout);

  // Phase 2: similarity parameters (β × ξ) around the phase-1 winner.
  std::printf("\n--- sweep 2: fusion weight β x decay half-life ξ "
              "(recall@10) ---\n");
  const std::vector<double> beta_grid = {0.0, 0.3, 0.7};
  const std::vector<double> xi_days_grid = {0.5, 3.0, 14.0};
  TablePrinter sim_table({"beta \\ xi(days)", Cell(xi_days_grid[0], 1),
                          Cell(xi_days_grid[1], 1),
                          Cell(xi_days_grid[2], 1)});
  for (double beta : beta_grid) {
    std::vector<std::string> row = {Cell(beta, 1)};
    for (double xi_days : xi_days_grid) {
      RecEngine::Options options = best;
      options.similarity.beta = beta;
      options.similarity.xi_millis = xi_days * kMillisPerDay;
      const double score = Score(world, train, test, options);
      row.push_back(Cell(score));
      if (score > best_score) {
        best_score = score;
        best = options;
      }
    }
    sim_table.AddRow(std::move(row));
  }
  sim_table.Print(std::cout);

  std::printf("\n=== Table 2 (selected values) ===\n\n");
  TablePrinter selected({"f", "lambda", "eta0", "alpha", "beta", "xi(days)"});
  selected.AddRow({std::to_string(best.model.num_factors),
                   Cell(best.model.lambda, 3), Cell(best.model.eta0, 3),
                   Cell(best.model.alpha, 3), Cell(best.similarity.beta, 2),
                   Cell(best.similarity.xi_millis / kMillisPerDay, 1)});
  selected.Print(std::cout);
  std::printf("\nbest recall@10 = %.4f\n", best_score);
  return 0;
}
