// Table 3 — dataset statistics after cleaning. Reproduces the Section 6.1
// protocol on the synthetic world: collect one week of actions, keep
// users/videos above an activity floor, split 6 days train / 1 day test,
// and print the statistics table (counts differ from the paper's
// proprietary log; the *structure* — heavy filtering, sub-percent
// sparsity, test day an order of magnitude smaller — is the target).

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "data/dataset.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Table 3: dataset statistics (synthetic stand-in for the "
              "1-week Tencent Video log) ===\n\n");
  const SyntheticWorld world(SparseWorldConfig());
  const FeedbackConfig feedback;

  const Dataset raw(world.GenerateDays(0, 7));
  const DatasetStats raw_stats = raw.Stats(feedback);
  std::printf("raw week:      %s\n", raw_stats.ToString().c_str());

  // The paper keeps users with >50 actions and videos with >50 related
  // actions; our world is ~3 orders of magnitude smaller, so the floor
  // scales to 20.
  const std::size_t kMinActions = 50;
  const Dataset cleaned = raw.FilterMinActivity(kMinActions, kMinActions);
  const DatasetStats cleaned_stats = cleaned.Stats(feedback);
  std::printf("after cleaning (>=%zu actions per user and video, the paper's floor):\n",
              kMinActions);
  std::printf("               %s\n\n", cleaned_stats.ToString().c_str());

  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);
  const DatasetStats train_stats = train.Stats(feedback);
  const DatasetStats test_stats = test.Stats(feedback);

  TablePrinter table({"", "Users", "Videos", "Actions", "Test Actions"});
  table.AddRow({"Counts", FormatCount(cleaned_stats.num_users),
                FormatCount(cleaned_stats.num_videos),
                FormatCount(train_stats.num_actions),
                FormatCount(test_stats.num_actions)});
  table.Print(std::cout);

  std::printf("\ntrain sparsity: %.3f%%  (paper: 0.48%% on the global "
              "matrix)\n",
              train_stats.sparsity_percent);
  std::printf("train/test action ratio: %.1f : 1\n",
              test_stats.num_actions == 0
                  ? 0.0
                  : static_cast<double>(train_stats.num_actions) /
                        static_cast<double>(test_stats.num_actions));
  return 0;
}
