// Table 4 — per-demographic-group dataset statistics. Selects the three
// largest demographic groups of the (cleaned) training data and prints
// their user/video/action counts and sparsity next to the global matrix.
// The paper's headline: group matrices are ~3x denser (avg 1.45% vs
// 0.48%), which is what makes demographic training effective.

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "data/dataset.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  std::printf("=== Table 4: dataset statistics of demographic groups ===\n\n");
  const SyntheticWorld world(SparseWorldConfig());
  DemographicGrouper grouper;
  world.RegisterProfiles(grouper);
  const FeedbackConfig feedback;

  const Dataset raw(world.GenerateDays(0, 7));
  const Dataset cleaned = raw.FilterMinActivity(50, 50);
  const auto [train, test] = cleaned.SplitAtTime(6 * kMillisPerDay);

  const DatasetStats global_stats = train.Stats(feedback);

  TablePrinter table({"", "#Users", "#Videos", "#Actions", "Sparsity(%)"});
  table.AddRow({"Global", FormatCount(global_stats.num_users),
                FormatCount(global_stats.num_videos),
                FormatCount(global_stats.num_actions),
                Cell(global_stats.sparsity_percent, 3)});

  double group_sparsity_sum = 0.0;
  int group_count = 0;
  for (GroupId group : LargestGroups(train, grouper, 3, feedback)) {
    const Dataset slice = train.FilterGroup(grouper, group);
    const DatasetStats stats = slice.Stats(feedback);
    ++group_count;
    group_sparsity_sum += stats.sparsity_percent;
    table.AddRow({"Group" + std::to_string(group_count) + " (" +
                      DemographicGrouper::GroupName(group) + ")",
                  FormatCount(stats.num_users), FormatCount(stats.num_videos),
                  FormatCount(stats.num_actions),
                  Cell(stats.sparsity_percent, 3)});
  }
  table.Print(std::cout);

  if (group_count > 0) {
    std::printf("\naverage group sparsity %.3f%% vs global %.3f%% "
                "(paper: 1.45%% vs 0.48%%) -> groups are %.1fx denser\n",
                group_sparsity_sum / group_count,
                global_stats.sparsity_percent,
                global_stats.sparsity_percent <= 0
                    ? 0.0
                    : (group_sparsity_sum / group_count) /
                          global_stats.sparsity_percent);
  }
  return 0;
}
