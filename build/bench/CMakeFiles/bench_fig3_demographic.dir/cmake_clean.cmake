file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_demographic.dir/bench_fig3_demographic.cc.o"
  "CMakeFiles/bench_fig3_demographic.dir/bench_fig3_demographic.cc.o.d"
  "bench_fig3_demographic"
  "bench_fig3_demographic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_demographic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
