file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_recall_at_n.dir/bench_fig4_recall_at_n.cc.o"
  "CMakeFiles/bench_fig4_recall_at_n.dir/bench_fig4_recall_at_n.cc.o.d"
  "bench_fig4_recall_at_n"
  "bench_fig4_recall_at_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_recall_at_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
