# Empty dependencies file for bench_fig4_recall_at_n.
# This may be replaced when dependencies are built.
