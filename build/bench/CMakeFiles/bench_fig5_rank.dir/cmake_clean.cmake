file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rank.dir/bench_fig5_rank.cc.o"
  "CMakeFiles/bench_fig5_rank.dir/bench_fig5_rank.cc.o.d"
  "bench_fig5_rank"
  "bench_fig5_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
