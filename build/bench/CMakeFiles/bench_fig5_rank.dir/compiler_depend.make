# Empty compiler generated dependencies file for bench_fig5_rank.
# This may be replaced when dependencies are built.
