file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ab_ctr.dir/bench_fig7_ab_ctr.cc.o"
  "CMakeFiles/bench_fig7_ab_ctr.dir/bench_fig7_ab_ctr.cc.o.d"
  "bench_fig7_ab_ctr"
  "bench_fig7_ab_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ab_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
