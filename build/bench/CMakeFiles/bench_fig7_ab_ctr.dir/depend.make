# Empty dependencies file for bench_fig7_ab_ctr.
# This may be replaced when dependencies are built.
