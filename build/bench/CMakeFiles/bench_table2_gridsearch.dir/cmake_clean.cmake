file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gridsearch.dir/bench_table2_gridsearch.cc.o"
  "CMakeFiles/bench_table2_gridsearch.dir/bench_table2_gridsearch.cc.o.d"
  "bench_table2_gridsearch"
  "bench_table2_gridsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gridsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
