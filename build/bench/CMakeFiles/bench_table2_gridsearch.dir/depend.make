# Empty dependencies file for bench_table2_gridsearch.
# This may be replaced when dependencies are built.
