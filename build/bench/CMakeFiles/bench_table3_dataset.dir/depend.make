# Empty dependencies file for bench_table3_dataset.
# This may be replaced when dependencies are built.
