file(REMOVE_RECURSE
  "CMakeFiles/guess_you_like.dir/guess_you_like.cpp.o"
  "CMakeFiles/guess_you_like.dir/guess_you_like.cpp.o.d"
  "guess_you_like"
  "guess_you_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guess_you_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
