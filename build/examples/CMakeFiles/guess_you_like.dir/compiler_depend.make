# Empty compiler generated dependencies file for guess_you_like.
# This may be replaced when dependencies are built.
