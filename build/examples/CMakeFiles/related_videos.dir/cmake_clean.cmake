file(REMOVE_RECURSE
  "CMakeFiles/related_videos.dir/related_videos.cpp.o"
  "CMakeFiles/related_videos.dir/related_videos.cpp.o.d"
  "related_videos"
  "related_videos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_videos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
