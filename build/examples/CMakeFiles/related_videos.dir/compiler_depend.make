# Empty compiler generated dependencies file for related_videos.
# This may be replaced when dependencies are built.
