file(REMOVE_RECURSE
  "CMakeFiles/replay_log.dir/replay_log.cpp.o"
  "CMakeFiles/replay_log.dir/replay_log.cpp.o.d"
  "replay_log"
  "replay_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
