# Empty dependencies file for replay_log.
# This may be replaced when dependencies are built.
