
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/assoc_rules.cc" "src/CMakeFiles/rtrec_baselines.dir/baselines/assoc_rules.cc.o" "gcc" "src/CMakeFiles/rtrec_baselines.dir/baselines/assoc_rules.cc.o.d"
  "/root/repo/src/baselines/hot_recommender.cc" "src/CMakeFiles/rtrec_baselines.dir/baselines/hot_recommender.cc.o" "gcc" "src/CMakeFiles/rtrec_baselines.dir/baselines/hot_recommender.cc.o.d"
  "/root/repo/src/baselines/item_cf.cc" "src/CMakeFiles/rtrec_baselines.dir/baselines/item_cf.cc.o" "gcc" "src/CMakeFiles/rtrec_baselines.dir/baselines/item_cf.cc.o.d"
  "/root/repo/src/baselines/reservoir_mf.cc" "src/CMakeFiles/rtrec_baselines.dir/baselines/reservoir_mf.cc.o" "gcc" "src/CMakeFiles/rtrec_baselines.dir/baselines/reservoir_mf.cc.o.d"
  "/root/repo/src/baselines/simhash_cf.cc" "src/CMakeFiles/rtrec_baselines.dir/baselines/simhash_cf.cc.o" "gcc" "src/CMakeFiles/rtrec_baselines.dir/baselines/simhash_cf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_demographic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
