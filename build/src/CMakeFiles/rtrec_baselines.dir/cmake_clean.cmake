file(REMOVE_RECURSE
  "CMakeFiles/rtrec_baselines.dir/baselines/assoc_rules.cc.o"
  "CMakeFiles/rtrec_baselines.dir/baselines/assoc_rules.cc.o.d"
  "CMakeFiles/rtrec_baselines.dir/baselines/hot_recommender.cc.o"
  "CMakeFiles/rtrec_baselines.dir/baselines/hot_recommender.cc.o.d"
  "CMakeFiles/rtrec_baselines.dir/baselines/item_cf.cc.o"
  "CMakeFiles/rtrec_baselines.dir/baselines/item_cf.cc.o.d"
  "CMakeFiles/rtrec_baselines.dir/baselines/reservoir_mf.cc.o"
  "CMakeFiles/rtrec_baselines.dir/baselines/reservoir_mf.cc.o.d"
  "CMakeFiles/rtrec_baselines.dir/baselines/simhash_cf.cc.o"
  "CMakeFiles/rtrec_baselines.dir/baselines/simhash_cf.cc.o.d"
  "librtrec_baselines.a"
  "librtrec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
