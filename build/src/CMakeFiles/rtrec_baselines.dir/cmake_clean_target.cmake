file(REMOVE_RECURSE
  "librtrec_baselines.a"
)
