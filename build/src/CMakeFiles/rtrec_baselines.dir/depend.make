# Empty dependencies file for rtrec_baselines.
# This may be replaced when dependencies are built.
