file(REMOVE_RECURSE
  "CMakeFiles/rtrec_common.dir/common/clock.cc.o"
  "CMakeFiles/rtrec_common.dir/common/clock.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/histogram.cc.o"
  "CMakeFiles/rtrec_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/logging.cc.o"
  "CMakeFiles/rtrec_common.dir/common/logging.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/metrics.cc.o"
  "CMakeFiles/rtrec_common.dir/common/metrics.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/random.cc.o"
  "CMakeFiles/rtrec_common.dir/common/random.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/status.cc.o"
  "CMakeFiles/rtrec_common.dir/common/status.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/string_util.cc.o"
  "CMakeFiles/rtrec_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/rtrec_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/rtrec_common.dir/common/thread_pool.cc.o.d"
  "librtrec_common.a"
  "librtrec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
