file(REMOVE_RECURSE
  "librtrec_common.a"
)
