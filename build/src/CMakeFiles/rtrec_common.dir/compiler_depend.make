# Empty compiler generated dependencies file for rtrec_common.
# This may be replaced when dependencies are built.
