
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action.cc" "src/CMakeFiles/rtrec_core.dir/core/action.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/action.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/rtrec_core.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/engine.cc.o.d"
  "/root/repo/src/core/implicit_feedback.cc" "src/CMakeFiles/rtrec_core.dir/core/implicit_feedback.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/implicit_feedback.cc.o.d"
  "/root/repo/src/core/model_config.cc" "src/CMakeFiles/rtrec_core.dir/core/model_config.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/model_config.cc.o.d"
  "/root/repo/src/core/online_mf.cc" "src/CMakeFiles/rtrec_core.dir/core/online_mf.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/online_mf.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/CMakeFiles/rtrec_core.dir/core/recommender.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/recommender.cc.o.d"
  "/root/repo/src/core/sim_table.cc" "src/CMakeFiles/rtrec_core.dir/core/sim_table.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/sim_table.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/CMakeFiles/rtrec_core.dir/core/similarity.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/similarity.cc.o.d"
  "/root/repo/src/core/topology_factory.cc" "src/CMakeFiles/rtrec_core.dir/core/topology_factory.cc.o" "gcc" "src/CMakeFiles/rtrec_core.dir/core/topology_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
