file(REMOVE_RECURSE
  "CMakeFiles/rtrec_core.dir/core/action.cc.o"
  "CMakeFiles/rtrec_core.dir/core/action.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/engine.cc.o"
  "CMakeFiles/rtrec_core.dir/core/engine.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/implicit_feedback.cc.o"
  "CMakeFiles/rtrec_core.dir/core/implicit_feedback.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/model_config.cc.o"
  "CMakeFiles/rtrec_core.dir/core/model_config.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/online_mf.cc.o"
  "CMakeFiles/rtrec_core.dir/core/online_mf.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/recommender.cc.o"
  "CMakeFiles/rtrec_core.dir/core/recommender.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/sim_table.cc.o"
  "CMakeFiles/rtrec_core.dir/core/sim_table.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/similarity.cc.o"
  "CMakeFiles/rtrec_core.dir/core/similarity.cc.o.d"
  "CMakeFiles/rtrec_core.dir/core/topology_factory.cc.o"
  "CMakeFiles/rtrec_core.dir/core/topology_factory.cc.o.d"
  "librtrec_core.a"
  "librtrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
