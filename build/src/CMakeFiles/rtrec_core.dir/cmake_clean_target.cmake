file(REMOVE_RECURSE
  "librtrec_core.a"
)
