# Empty compiler generated dependencies file for rtrec_core.
# This may be replaced when dependencies are built.
