
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/action_source.cc" "src/CMakeFiles/rtrec_data.dir/data/action_source.cc.o" "gcc" "src/CMakeFiles/rtrec_data.dir/data/action_source.cc.o.d"
  "/root/repo/src/data/catalog.cc" "src/CMakeFiles/rtrec_data.dir/data/catalog.cc.o" "gcc" "src/CMakeFiles/rtrec_data.dir/data/catalog.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/rtrec_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/rtrec_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/event_generator.cc" "src/CMakeFiles/rtrec_data.dir/data/event_generator.cc.o" "gcc" "src/CMakeFiles/rtrec_data.dir/data/event_generator.cc.o.d"
  "/root/repo/src/data/log_format.cc" "src/CMakeFiles/rtrec_data.dir/data/log_format.cc.o" "gcc" "src/CMakeFiles/rtrec_data.dir/data/log_format.cc.o.d"
  "/root/repo/src/data/user_population.cc" "src/CMakeFiles/rtrec_data.dir/data/user_population.cc.o" "gcc" "src/CMakeFiles/rtrec_data.dir/data/user_population.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_demographic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
