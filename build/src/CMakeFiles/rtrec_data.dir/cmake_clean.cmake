file(REMOVE_RECURSE
  "CMakeFiles/rtrec_data.dir/data/action_source.cc.o"
  "CMakeFiles/rtrec_data.dir/data/action_source.cc.o.d"
  "CMakeFiles/rtrec_data.dir/data/catalog.cc.o"
  "CMakeFiles/rtrec_data.dir/data/catalog.cc.o.d"
  "CMakeFiles/rtrec_data.dir/data/dataset.cc.o"
  "CMakeFiles/rtrec_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/rtrec_data.dir/data/event_generator.cc.o"
  "CMakeFiles/rtrec_data.dir/data/event_generator.cc.o.d"
  "CMakeFiles/rtrec_data.dir/data/log_format.cc.o"
  "CMakeFiles/rtrec_data.dir/data/log_format.cc.o.d"
  "CMakeFiles/rtrec_data.dir/data/user_population.cc.o"
  "CMakeFiles/rtrec_data.dir/data/user_population.cc.o.d"
  "librtrec_data.a"
  "librtrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
