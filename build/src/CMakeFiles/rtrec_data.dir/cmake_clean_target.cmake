file(REMOVE_RECURSE
  "librtrec_data.a"
)
