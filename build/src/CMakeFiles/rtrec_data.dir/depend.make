# Empty dependencies file for rtrec_data.
# This may be replaced when dependencies are built.
