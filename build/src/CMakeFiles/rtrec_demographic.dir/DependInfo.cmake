
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/demographic/demographic_filter.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/demographic_filter.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/demographic_filter.cc.o.d"
  "/root/repo/src/demographic/demographic_topology.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/demographic_topology.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/demographic_topology.cc.o.d"
  "/root/repo/src/demographic/demographic_trainer.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/demographic_trainer.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/demographic_trainer.cc.o.d"
  "/root/repo/src/demographic/group_checkpoint.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/group_checkpoint.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/group_checkpoint.cc.o.d"
  "/root/repo/src/demographic/group_stores.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/group_stores.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/group_stores.cc.o.d"
  "/root/repo/src/demographic/grouper.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/grouper.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/grouper.cc.o.d"
  "/root/repo/src/demographic/hot_videos.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/hot_videos.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/hot_videos.cc.o.d"
  "/root/repo/src/demographic/profile.cc" "src/CMakeFiles/rtrec_demographic.dir/demographic/profile.cc.o" "gcc" "src/CMakeFiles/rtrec_demographic.dir/demographic/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
