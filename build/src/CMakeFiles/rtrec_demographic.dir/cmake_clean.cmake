file(REMOVE_RECURSE
  "CMakeFiles/rtrec_demographic.dir/demographic/demographic_filter.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/demographic_filter.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/demographic_topology.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/demographic_topology.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/demographic_trainer.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/demographic_trainer.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/group_checkpoint.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/group_checkpoint.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/group_stores.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/group_stores.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/grouper.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/grouper.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/hot_videos.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/hot_videos.cc.o.d"
  "CMakeFiles/rtrec_demographic.dir/demographic/profile.cc.o"
  "CMakeFiles/rtrec_demographic.dir/demographic/profile.cc.o.d"
  "librtrec_demographic.a"
  "librtrec_demographic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_demographic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
