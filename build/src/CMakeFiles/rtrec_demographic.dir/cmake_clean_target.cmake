file(REMOVE_RECURSE
  "librtrec_demographic.a"
)
