# Empty dependencies file for rtrec_demographic.
# This may be replaced when dependencies are built.
