
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/ab_test.cc" "src/CMakeFiles/rtrec_eval.dir/eval/ab_test.cc.o" "gcc" "src/CMakeFiles/rtrec_eval.dir/eval/ab_test.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/rtrec_eval.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/rtrec_eval.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/experiment_runner.cc" "src/CMakeFiles/rtrec_eval.dir/eval/experiment_runner.cc.o" "gcc" "src/CMakeFiles/rtrec_eval.dir/eval/experiment_runner.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/rtrec_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/rtrec_eval.dir/eval/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_demographic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
