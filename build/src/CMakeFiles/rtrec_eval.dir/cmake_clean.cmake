file(REMOVE_RECURSE
  "CMakeFiles/rtrec_eval.dir/eval/ab_test.cc.o"
  "CMakeFiles/rtrec_eval.dir/eval/ab_test.cc.o.d"
  "CMakeFiles/rtrec_eval.dir/eval/evaluator.cc.o"
  "CMakeFiles/rtrec_eval.dir/eval/evaluator.cc.o.d"
  "CMakeFiles/rtrec_eval.dir/eval/experiment_runner.cc.o"
  "CMakeFiles/rtrec_eval.dir/eval/experiment_runner.cc.o.d"
  "CMakeFiles/rtrec_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/rtrec_eval.dir/eval/metrics.cc.o.d"
  "librtrec_eval.a"
  "librtrec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
