file(REMOVE_RECURSE
  "librtrec_eval.a"
)
