# Empty compiler generated dependencies file for rtrec_eval.
# This may be replaced when dependencies are built.
