
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/checkpoint.cc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/checkpoint.cc.o" "gcc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/checkpoint.cc.o.d"
  "/root/repo/src/kvstore/factor_store.cc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/factor_store.cc.o" "gcc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/factor_store.cc.o.d"
  "/root/repo/src/kvstore/history_store.cc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/history_store.cc.o" "gcc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/history_store.cc.o.d"
  "/root/repo/src/kvstore/kv_store.cc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/kv_store.cc.o" "gcc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/kv_store.cc.o.d"
  "/root/repo/src/kvstore/sim_table_store.cc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/sim_table_store.cc.o" "gcc" "src/CMakeFiles/rtrec_kvstore.dir/kvstore/sim_table_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
