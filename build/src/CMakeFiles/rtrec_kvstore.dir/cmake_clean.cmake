file(REMOVE_RECURSE
  "CMakeFiles/rtrec_kvstore.dir/kvstore/checkpoint.cc.o"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/checkpoint.cc.o.d"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/factor_store.cc.o"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/factor_store.cc.o.d"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/history_store.cc.o"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/history_store.cc.o.d"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/kv_store.cc.o"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/kv_store.cc.o.d"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/sim_table_store.cc.o"
  "CMakeFiles/rtrec_kvstore.dir/kvstore/sim_table_store.cc.o.d"
  "librtrec_kvstore.a"
  "librtrec_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
