file(REMOVE_RECURSE
  "librtrec_kvstore.a"
)
