# Empty dependencies file for rtrec_kvstore.
# This may be replaced when dependencies are built.
