file(REMOVE_RECURSE
  "CMakeFiles/rtrec_service.dir/service/recommendation_service.cc.o"
  "CMakeFiles/rtrec_service.dir/service/recommendation_service.cc.o.d"
  "librtrec_service.a"
  "librtrec_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
