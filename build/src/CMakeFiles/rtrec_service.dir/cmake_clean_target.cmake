file(REMOVE_RECURSE
  "librtrec_service.a"
)
