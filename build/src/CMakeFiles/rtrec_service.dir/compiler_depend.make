# Empty compiler generated dependencies file for rtrec_service.
# This may be replaced when dependencies are built.
