
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/acker.cc" "src/CMakeFiles/rtrec_stream.dir/stream/acker.cc.o" "gcc" "src/CMakeFiles/rtrec_stream.dir/stream/acker.cc.o.d"
  "/root/repo/src/stream/grouping.cc" "src/CMakeFiles/rtrec_stream.dir/stream/grouping.cc.o" "gcc" "src/CMakeFiles/rtrec_stream.dir/stream/grouping.cc.o.d"
  "/root/repo/src/stream/reliable_spout.cc" "src/CMakeFiles/rtrec_stream.dir/stream/reliable_spout.cc.o" "gcc" "src/CMakeFiles/rtrec_stream.dir/stream/reliable_spout.cc.o.d"
  "/root/repo/src/stream/topology.cc" "src/CMakeFiles/rtrec_stream.dir/stream/topology.cc.o" "gcc" "src/CMakeFiles/rtrec_stream.dir/stream/topology.cc.o.d"
  "/root/repo/src/stream/topology_builder.cc" "src/CMakeFiles/rtrec_stream.dir/stream/topology_builder.cc.o" "gcc" "src/CMakeFiles/rtrec_stream.dir/stream/topology_builder.cc.o.d"
  "/root/repo/src/stream/tuple.cc" "src/CMakeFiles/rtrec_stream.dir/stream/tuple.cc.o" "gcc" "src/CMakeFiles/rtrec_stream.dir/stream/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
