file(REMOVE_RECURSE
  "CMakeFiles/rtrec_stream.dir/stream/acker.cc.o"
  "CMakeFiles/rtrec_stream.dir/stream/acker.cc.o.d"
  "CMakeFiles/rtrec_stream.dir/stream/grouping.cc.o"
  "CMakeFiles/rtrec_stream.dir/stream/grouping.cc.o.d"
  "CMakeFiles/rtrec_stream.dir/stream/reliable_spout.cc.o"
  "CMakeFiles/rtrec_stream.dir/stream/reliable_spout.cc.o.d"
  "CMakeFiles/rtrec_stream.dir/stream/topology.cc.o"
  "CMakeFiles/rtrec_stream.dir/stream/topology.cc.o.d"
  "CMakeFiles/rtrec_stream.dir/stream/topology_builder.cc.o"
  "CMakeFiles/rtrec_stream.dir/stream/topology_builder.cc.o.d"
  "CMakeFiles/rtrec_stream.dir/stream/tuple.cc.o"
  "CMakeFiles/rtrec_stream.dir/stream/tuple.cc.o.d"
  "librtrec_stream.a"
  "librtrec_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrec_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
