file(REMOVE_RECURSE
  "librtrec_stream.a"
)
