# Empty compiler generated dependencies file for rtrec_stream.
# This may be replaced when dependencies are built.
