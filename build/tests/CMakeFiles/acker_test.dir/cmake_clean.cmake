file(REMOVE_RECURSE
  "CMakeFiles/acker_test.dir/acker_test.cc.o"
  "CMakeFiles/acker_test.dir/acker_test.cc.o.d"
  "acker_test"
  "acker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
