# Empty dependencies file for acker_test.
# This may be replaced when dependencies are built.
