# Empty dependencies file for assoc_rules_test.
# This may be replaced when dependencies are built.
