file(REMOVE_RECURSE
  "CMakeFiles/baseline_evaluation_test.dir/baseline_evaluation_test.cc.o"
  "CMakeFiles/baseline_evaluation_test.dir/baseline_evaluation_test.cc.o.d"
  "baseline_evaluation_test"
  "baseline_evaluation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
