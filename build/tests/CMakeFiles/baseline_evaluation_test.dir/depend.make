# Empty dependencies file for baseline_evaluation_test.
# This may be replaced when dependencies are built.
