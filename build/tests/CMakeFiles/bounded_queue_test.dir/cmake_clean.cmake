file(REMOVE_RECURSE
  "CMakeFiles/bounded_queue_test.dir/bounded_queue_test.cc.o"
  "CMakeFiles/bounded_queue_test.dir/bounded_queue_test.cc.o.d"
  "bounded_queue_test"
  "bounded_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
