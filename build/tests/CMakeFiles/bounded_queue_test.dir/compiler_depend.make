# Empty compiler generated dependencies file for bounded_queue_test.
# This may be replaced when dependencies are built.
