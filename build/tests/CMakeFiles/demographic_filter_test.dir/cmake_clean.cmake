file(REMOVE_RECURSE
  "CMakeFiles/demographic_filter_test.dir/demographic_filter_test.cc.o"
  "CMakeFiles/demographic_filter_test.dir/demographic_filter_test.cc.o.d"
  "demographic_filter_test"
  "demographic_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demographic_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
