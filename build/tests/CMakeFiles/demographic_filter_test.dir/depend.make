# Empty dependencies file for demographic_filter_test.
# This may be replaced when dependencies are built.
