file(REMOVE_RECURSE
  "CMakeFiles/demographic_topology_test.dir/demographic_topology_test.cc.o"
  "CMakeFiles/demographic_topology_test.dir/demographic_topology_test.cc.o.d"
  "demographic_topology_test"
  "demographic_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demographic_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
