# Empty dependencies file for demographic_topology_test.
# This may be replaced when dependencies are built.
