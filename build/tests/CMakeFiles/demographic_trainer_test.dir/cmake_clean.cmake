file(REMOVE_RECURSE
  "CMakeFiles/demographic_trainer_test.dir/demographic_trainer_test.cc.o"
  "CMakeFiles/demographic_trainer_test.dir/demographic_trainer_test.cc.o.d"
  "demographic_trainer_test"
  "demographic_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demographic_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
