# Empty dependencies file for demographic_trainer_test.
# This may be replaced when dependencies are built.
