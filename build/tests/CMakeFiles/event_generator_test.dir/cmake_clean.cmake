file(REMOVE_RECURSE
  "CMakeFiles/event_generator_test.dir/event_generator_test.cc.o"
  "CMakeFiles/event_generator_test.dir/event_generator_test.cc.o.d"
  "event_generator_test"
  "event_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
