# Empty dependencies file for event_generator_test.
# This may be replaced when dependencies are built.
