file(REMOVE_RECURSE
  "CMakeFiles/factor_store_test.dir/factor_store_test.cc.o"
  "CMakeFiles/factor_store_test.dir/factor_store_test.cc.o.d"
  "factor_store_test"
  "factor_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
