# Empty dependencies file for factor_store_test.
# This may be replaced when dependencies are built.
