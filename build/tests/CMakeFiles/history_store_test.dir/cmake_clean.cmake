file(REMOVE_RECURSE
  "CMakeFiles/history_store_test.dir/history_store_test.cc.o"
  "CMakeFiles/history_store_test.dir/history_store_test.cc.o.d"
  "history_store_test"
  "history_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
