file(REMOVE_RECURSE
  "CMakeFiles/hot_item_cf_test.dir/hot_item_cf_test.cc.o"
  "CMakeFiles/hot_item_cf_test.dir/hot_item_cf_test.cc.o.d"
  "hot_item_cf_test"
  "hot_item_cf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_item_cf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
