# Empty compiler generated dependencies file for hot_item_cf_test.
# This may be replaced when dependencies are built.
