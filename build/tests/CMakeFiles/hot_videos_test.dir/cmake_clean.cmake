file(REMOVE_RECURSE
  "CMakeFiles/hot_videos_test.dir/hot_videos_test.cc.o"
  "CMakeFiles/hot_videos_test.dir/hot_videos_test.cc.o.d"
  "hot_videos_test"
  "hot_videos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_videos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
