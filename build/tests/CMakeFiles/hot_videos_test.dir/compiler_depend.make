# Empty compiler generated dependencies file for hot_videos_test.
# This may be replaced when dependencies are built.
