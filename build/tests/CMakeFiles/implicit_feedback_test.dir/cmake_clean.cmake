file(REMOVE_RECURSE
  "CMakeFiles/implicit_feedback_test.dir/implicit_feedback_test.cc.o"
  "CMakeFiles/implicit_feedback_test.dir/implicit_feedback_test.cc.o.d"
  "implicit_feedback_test"
  "implicit_feedback_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implicit_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
