# Empty dependencies file for implicit_feedback_test.
# This may be replaced when dependencies are built.
