file(REMOVE_RECURSE
  "CMakeFiles/online_mf_test.dir/online_mf_test.cc.o"
  "CMakeFiles/online_mf_test.dir/online_mf_test.cc.o.d"
  "online_mf_test"
  "online_mf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_mf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
