# Empty compiler generated dependencies file for online_mf_test.
# This may be replaced when dependencies are built.
