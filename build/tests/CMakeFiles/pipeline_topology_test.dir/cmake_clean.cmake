file(REMOVE_RECURSE
  "CMakeFiles/pipeline_topology_test.dir/pipeline_topology_test.cc.o"
  "CMakeFiles/pipeline_topology_test.dir/pipeline_topology_test.cc.o.d"
  "pipeline_topology_test"
  "pipeline_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
