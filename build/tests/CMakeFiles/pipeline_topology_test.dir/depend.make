# Empty dependencies file for pipeline_topology_test.
# This may be replaced when dependencies are built.
