file(REMOVE_RECURSE
  "CMakeFiles/profile_grouper_test.dir/profile_grouper_test.cc.o"
  "CMakeFiles/profile_grouper_test.dir/profile_grouper_test.cc.o.d"
  "profile_grouper_test"
  "profile_grouper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_grouper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
