file(REMOVE_RECURSE
  "CMakeFiles/reservoir_mf_test.dir/reservoir_mf_test.cc.o"
  "CMakeFiles/reservoir_mf_test.dir/reservoir_mf_test.cc.o.d"
  "reservoir_mf_test"
  "reservoir_mf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservoir_mf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
