# Empty dependencies file for reservoir_mf_test.
# This may be replaced when dependencies are built.
