file(REMOVE_RECURSE
  "CMakeFiles/sim_table_store_test.dir/sim_table_store_test.cc.o"
  "CMakeFiles/sim_table_store_test.dir/sim_table_store_test.cc.o.d"
  "sim_table_store_test"
  "sim_table_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_table_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
