# Empty compiler generated dependencies file for sim_table_store_test.
# This may be replaced when dependencies are built.
