# Empty dependencies file for sim_table_test.
# This may be replaced when dependencies are built.
