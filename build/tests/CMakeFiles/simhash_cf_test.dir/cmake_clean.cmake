file(REMOVE_RECURSE
  "CMakeFiles/simhash_cf_test.dir/simhash_cf_test.cc.o"
  "CMakeFiles/simhash_cf_test.dir/simhash_cf_test.cc.o.d"
  "simhash_cf_test"
  "simhash_cf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simhash_cf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
