# Empty dependencies file for simhash_cf_test.
# This may be replaced when dependencies are built.
