file(REMOVE_RECURSE
  "CMakeFiles/topology_builder_test.dir/topology_builder_test.cc.o"
  "CMakeFiles/topology_builder_test.dir/topology_builder_test.cc.o.d"
  "topology_builder_test"
  "topology_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
