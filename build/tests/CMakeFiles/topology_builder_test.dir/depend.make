# Empty dependencies file for topology_builder_test.
# This may be replaced when dependencies are built.
