file(REMOVE_RECURSE
  "CMakeFiles/topology_fuzz_test.dir/topology_fuzz_test.cc.o"
  "CMakeFiles/topology_fuzz_test.dir/topology_fuzz_test.cc.o.d"
  "topology_fuzz_test"
  "topology_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
