file(REMOVE_RECURSE
  "CMakeFiles/user_population_test.dir/user_population_test.cc.o"
  "CMakeFiles/user_population_test.dir/user_population_test.cc.o.d"
  "user_population_test"
  "user_population_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
