# Empty dependencies file for user_population_test.
# This may be replaced when dependencies are built.
