file(REMOVE_RECURSE
  "CMakeFiles/vec_math_test.dir/vec_math_test.cc.o"
  "CMakeFiles/vec_math_test.dir/vec_math_test.cc.o.d"
  "vec_math_test"
  "vec_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
