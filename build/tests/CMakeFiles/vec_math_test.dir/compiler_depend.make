# Empty compiler generated dependencies file for vec_math_test.
# This may be replaced when dependencies are built.
