// Personalized homepage (Fig. 6a): "Guess you like", with the production
// optimizations of Section 5.2 — demographic training (one engine per
// demographic group) and demographic filtering (group hot videos blended
// in; cold users fall back to popularity).
//
//   $ ./guess_you_like

#include <cstdio>

#include "demographic/demographic_filter.h"
#include "demographic/demographic_trainer.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  const SyntheticWorld world(SmallWorldConfig(123));
  DemographicGrouper grouper;
  world.RegisterProfiles(grouper);

  // Per-group rMF engines + a global fallback engine (Section 5.2.2).
  DemographicTrainer::Options trainer_options;
  trainer_options.engine = DefaultEngineOptions(UpdatePolicy::kCombine);
  DemographicTrainer trainer(&grouper, world.TypeResolver(),
                             trainer_options);

  // Demographic filtering on top (Section 5.2.1): blends each group's
  // hot videos into the MF results and covers cold users.
  HotVideoTracker tracker;
  DemographicFilter::Options filter_options;
  filter_options.blend_ratio = 0.2;
  DemographicFilter service(&trainer, &tracker, &grouper, filter_options);

  std::printf("training per-group models on 4 days of traffic...\n");
  for (const UserAction& action : world.GenerateDays(0, 4)) {
    service.Observe(action);
  }
  const Timestamp now = 4 * kMillisPerDay;
  std::printf("  active demographic groups: %zu\n\n",
              trainer.ActiveGroups().size());

  // Homepage for an active registered user.
  const SimUser* active_user = nullptr;
  for (const SimUser& u : world.population().users()) {
    if (u.profile.registered && u.activity > 3.0) {
      active_user = &u;
      break;
    }
  }
  if (active_user != nullptr) {
    RecRequest request;
    request.user = active_user->id;
    request.top_n = 8;
    request.now = now;
    auto recs = service.Recommend(request);
    std::printf("guess-you-like for user %llu (%s):\n",
                static_cast<unsigned long long>(active_user->id),
                ProfileToString(active_user->profile).c_str());
    if (recs.ok()) {
      for (const ScoredVideo& r : *recs) {
        std::printf("  video %-5llu score %.4f\n",
                    static_cast<unsigned long long>(r.video), r.score);
      }
    }
  }

  // Homepage for a brand-new unregistered visitor: the MF path has
  // nothing, so demographic filtering serves global hot videos.
  RecRequest cold;
  cold.user = 10'000'000;  // Never seen.
  cold.top_n = 8;
  cold.now = now;
  auto cold_recs = service.Recommend(cold);
  std::printf("\nguess-you-like for a brand-new unregistered visitor "
              "(global hot fallback):\n");
  if (cold_recs.ok()) {
    for (const ScoredVideo& r : *cold_recs) {
      std::printf("  video %-5llu score %.4f\n",
                  static_cast<unsigned long long>(r.video), r.score);
    }
  }
  return 0;
}
