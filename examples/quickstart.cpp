// Quickstart: build a real-time recommendation engine, feed it a handful
// of user actions, and ask for recommendations — the smallest possible
// end-to-end use of the library.
//
//   $ ./quickstart
//
// Demonstrates: RecEngine (online MF + similar-video tables + serving
// path), implicit-feedback actions, and the two request scenarios.

#include <cstdio>

#include "core/engine.h"

using rtrec::ActionType;
using rtrec::RecEngine;
using rtrec::RecRequest;
using rtrec::ScoredVideo;
using rtrec::Timestamp;
using rtrec::UserAction;
using rtrec::UserId;
using rtrec::VideoId;

namespace {

UserAction Watch(UserId user, VideoId video, double fraction, Timestamp t) {
  UserAction action;
  action.user = user;
  action.video = video;
  action.type = ActionType::kPlayTime;
  action.view_fraction = fraction;
  action.time = t;
  return action;
}

void PrintRecs(const char* label,
               const rtrec::StatusOr<std::vector<ScoredVideo>>& recs) {
  std::printf("%s\n", label);
  if (!recs.ok()) {
    std::printf("  error: %s\n", recs.status().ToString().c_str());
    return;
  }
  if (recs->empty()) std::printf("  (no recommendations)\n");
  for (const ScoredVideo& r : *recs) {
    std::printf("  video %llu   score %.4f\n",
                static_cast<unsigned long long>(r.video), r.score);
  }
}

}  // namespace

int main() {
  // A toy type system: videos 1-99 are "drama", 100+ are "sports".
  RecEngine engine(
      [](VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; });

  // Simulate a few viewers. Alice (1) and Bob (2) both binge dramas
  // 10/11/12; Carol (3) watches sports.
  Timestamp t = 0;
  for (int day = 0; day < 15; ++day) {
    for (UserId fan : {1, 2}) {
      engine.Observe(Watch(fan, 10, 0.95, t += 60'000));
      engine.Observe(Watch(fan, 11, 0.90, t += 60'000));
      engine.Observe(Watch(fan, 12, 0.85, t += 60'000));
    }
    engine.Observe(Watch(3, 100, 0.9, t += 60'000));
    engine.Observe(Watch(3, 101, 0.8, t += 60'000));
  }

  // Scenario 1 — "related videos": a brand-new viewer is watching video
  // 10; what should play next?
  RecRequest related;
  related.user = 42;           // Unknown user.
  related.seed_videos = {10};  // The video on screen.
  related.top_n = 3;
  related.now = t;
  PrintRecs("Related to video 10:", engine.Recommend(related));

  // Scenario 2 — "guess you like": Alice opens the homepage. Seeds come
  // from her own history; watched videos are excluded.
  RecRequest homepage;
  homepage.user = 1;
  homepage.top_n = 3;
  homepage.now = t;
  PrintRecs("Guess Alice likes:", engine.Recommend(homepage));

  // The model updates in real time: Carol suddenly watches drama 10; the
  // very next request already reflects it.
  engine.Observe(Watch(3, 10, 1.0, t += 60'000));
  RecRequest carol;
  carol.user = 3;
  carol.top_n = 3;
  carol.now = t;
  PrintRecs("Guess Carol likes (after her drama detour):",
            engine.Recommend(carol));

  std::printf("\nmodel state: %zu users, %zu videos, mu=%.3f\n",
              engine.factors().NumUsers(), engine.factors().NumVideos(),
              engine.factors().GlobalMean());
  return 0;
}
