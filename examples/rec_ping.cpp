// rec_ping: bounded-time liveness probe for an rtrec server — the CLI
// face of RecClient::Healthy(). scripts/cluster.sh readiness-gates shard
// bring-up on it instead of sleeping, and operators use it to check a
// shard from the shell.
//
//   $ ./rec_ping PORT            # 127.0.0.1, 250ms deadline
//   $ ./rec_ping HOST PORT [TIMEOUT_MS]
//
// Exit 0 if the server answers a Ping within the deadline (connect and
// round-trip each bounded by it), 1 if not, 2 on usage error. Prints
// nothing on success (it runs in tight readiness loops).

#include <cstdio>
#include <cstdlib>

#include "net/rec_client.h"

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int timeout_ms = 250;
  if (argc == 2) {
    port = std::atoi(argv[1]);
  } else if (argc == 3 || argc == 4) {
    host = argv[1];
    port = std::atoi(argv[2]);
    if (argc == 4) timeout_ms = std::atoi(argv[3]);
  }
  if (port <= 0 || port > 65535 || timeout_ms <= 0) {
    std::fprintf(stderr, "usage: rec_ping PORT | rec_ping HOST PORT "
                         "[TIMEOUT_MS]\n");
    return 2;
  }

  rtrec::RecClient::Options options;
  options.host = host;
  options.port = static_cast<std::uint16_t>(port);
  options.auto_reconnect = false;
  rtrec::RecClient client(options);
  if (client.Healthy(timeout_ms)) return 0;
  std::fprintf(stderr, "rec_ping: %s:%d not healthy within %dms\n",
               host.c_str(), port, timeout_ms);
  return 1;
}
