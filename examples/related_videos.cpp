// Related-videos service (Fig. 6b): "People who watched this film also
// like ...". Trains an engine on a synthetic week of site traffic, then
// serves related-video queries for the most popular titles and shows how
// the time-decay factor (Eq. 11) ages the lists.
//
//   $ ./related_videos

#include <cstdio>

#include "core/engine.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"

using namespace rtrec;

int main() {
  // A small synthetic video site (see data/event_generator.h).
  const SyntheticWorld world(SmallWorldConfig(77));
  RecEngine engine(world.TypeResolver(),
                   DefaultEngineOptions(UpdatePolicy::kCombine));

  std::printf("replaying 4 days of site traffic...\n");
  std::size_t n = 0;
  for (const UserAction& action : world.GenerateDays(0, 4)) {
    engine.Observe(action);
    ++n;
  }
  const Timestamp now = 4 * kMillisPerDay;
  std::printf("  %zu actions -> %zu videos with similar-video lists\n\n", n,
              engine.sim_table().NumVideos());

  // Serve "related videos" for the three hottest titles (ids 1-3 are the
  // popularity head by construction).
  for (VideoId seed = 1; seed <= 3; ++seed) {
    RecRequest request;
    request.user = 0;  // Anonymous visitor: ranking uses the seed only.
    request.seed_videos = {seed};
    request.top_n = 5;
    request.now = now;
    auto recs = engine.Recommend(request);
    std::printf("people who watched video %llu (type %u) also like:\n",
                static_cast<unsigned long long>(seed),
                world.catalog().Get(seed).type);
    if (recs.ok()) {
      for (const ScoredVideo& r : *recs) {
        std::printf("  video %-5llu type %-2u score %.4f\n",
                    static_cast<unsigned long long>(r.video),
                    world.catalog().Get(r.video).type, r.score);
      }
    }
  }

  // Time decay: the same query a week later, with no new traffic, finds
  // the similarity entries faded (Eq. 11 forgets stale co-watches).
  RecRequest stale;
  stale.user = 0;
  stale.seed_videos = {1};
  stale.top_n = 5;
  stale.now = now + 60 * kMillisPerDay;
  auto faded = engine.Recommend(stale);
  std::printf(
      "\nsame query 60 days later (no new traffic): %zu results — stale "
      "similarities decayed away\n",
      faded.ok() ? faded->size() : 0);
  return 0;
}
