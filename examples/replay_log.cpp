// Operational workflow: export an action log to TSV, replay it through a
// fresh engine (cold start), checkpoint the engine state, restore it in
// a "restarted" process, and verify the serving behaviour carried over.
//
//   $ ./replay_log [log.tsv]
//
// Demonstrates: data/log_format.h (the spout's wire format),
// kvstore/checkpoint.h (snapshot/restore), and that the model's state is
// fully externalized in the KV stores — the property that lets the
// production system restart without retraining from scratch.

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "data/event_generator.h"
#include "data/log_format.h"
#include "eval/experiment_runner.h"
#include "kvstore/checkpoint.h"

using namespace rtrec;

int main(int argc, char** argv) {
  const std::string log_path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() /
                  "rtrec_replay_example.tsv")
                     .string();
  const std::string ckpt_path = log_path + ".ckpt";

  // 1. Produce a log (in production this is the raw message stream the
  //    spout parses).
  const SyntheticWorld world(SmallWorldConfig(321));
  const std::vector<UserAction> actions = world.GenerateDays(0, 2);
  if (Status s = WriteActionLog(log_path, actions); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu actions to %s\n", actions.size(), log_path.c_str());

  // 2. Cold start: replay the log through a fresh engine.
  RecEngine engine(world.TypeResolver(),
                   DefaultEngineOptions(UpdatePolicy::kCombine));
  auto loaded = ReadActionLog(log_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  for (const UserAction& action : *loaded) engine.Observe(action);
  std::printf("replayed %zu actions: %zu users, %zu videos, %zu similar "
              "lists\n",
              loaded->size(), engine.factors().NumUsers(),
              engine.factors().NumVideos(), engine.sim_table().NumVideos());

  // 3. Checkpoint the whole serving state.
  if (Status s = SaveCheckpoint(ckpt_path, &engine.factors(),
                                &engine.sim_table(), &engine.history());
      !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint: %s (%ju bytes)\n", ckpt_path.c_str(),
              static_cast<uintmax_t>(std::filesystem::file_size(ckpt_path)));

  // 4. "Restart": a brand-new engine restored from the snapshot.
  RecEngine restarted(world.TypeResolver(),
                      DefaultEngineOptions(UpdatePolicy::kCombine));
  if (Status s = LoadCheckpoint(ckpt_path, &restarted.factors(),
                                &restarted.sim_table(),
                                &restarted.history());
      !s.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 5. Same request against both: results must be identical.
  RecRequest request;
  request.user = 0;
  request.seed_videos = {1};
  request.top_n = 5;
  request.now = 2 * kMillisPerDay;
  auto before = engine.Recommend(request);
  auto after = restarted.Recommend(request);
  if (!before.ok() || !after.ok()) {
    std::fprintf(stderr, "recommend failed\n");
    return 1;
  }
  std::printf("\nrelated videos for video 1 (pre / post restart):\n");
  for (std::size_t i = 0; i < before->size(); ++i) {
    std::printf("  video %-5llu %.4f   |   video %-5llu %.4f\n",
                static_cast<unsigned long long>((*before)[i].video),
                (*before)[i].score,
                static_cast<unsigned long long>((*after)[i].video),
                (*after)[i].score);
  }
  const bool identical = *before == *after;
  std::printf("\nrestart fidelity: %s\n",
              identical ? "IDENTICAL" : "DIVERGED (bug!)");

  std::filesystem::remove(ckpt_path);
  if (argc <= 1) std::filesystem::remove(log_path);
  return identical ? 0 : 1;
}
