// Serve: stand up the full recommendation stack behind a TCP socket —
// the production shape of the paper's system. An epoll RecServer fronts
// a RecommendationService; clients speak the binary wire protocol
// (src/net/wire.h) via RecClient.
//
//   $ ./serve [port] [workers]     # defaults: 7471, 4
//
// The server warms itself with a little synthetic traffic so the first
// client request already gets non-empty pages, then runs until SIGINT /
// SIGTERM, printing the metrics report on shutdown. Try it together
// with bench_net_throughput, or poke it from another terminal:
//
//   $ ./serve 7471 &
//   $ ./bench_net_throughput        # loadgen (spawns its own server) — or
//     use RecClient{{.host="127.0.0.1", .port=7471}} from your own code.

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/rec_server.h"
#include "service/recommendation_service.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

rtrec::UserAction Watch(rtrec::UserId user, rtrec::VideoId video,
                        rtrec::Timestamp t) {
  rtrec::UserAction action;
  action.user = user;
  action.video = video;
  action.type = rtrec::ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 7471;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  // Videos 1-99 are "drama", 100+ are "sports" — same toy type system
  // as the quickstart.
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; });

  // Warm the model: a few users co-watching makes the similar-video
  // tables and hot lists non-empty from the first request.
  rtrec::Timestamp t = 0;
  for (int round = 0; round < 10; ++round) {
    for (rtrec::UserId user = 1; user <= 8; ++user) {
      service.Observe(Watch(user, 10 + user % 3, t += 1000));
      service.Observe(Watch(user, 11 + user % 3, t += 1000));
    }
  }

  rtrec::RecServer::Options options;
  options.port = port;
  options.num_workers = workers;
  options.metrics = &rtrec::MetricsRegistry::Default();
  rtrec::RecServer server(&service, options);
  rtrec::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u with %d workers (Ctrl-C to stop)\n",
              server.port(), workers);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  server.Stop();
  std::printf("\n%s\n", rtrec::MetricsRegistry::Default().Report().c_str());
  return 0;
}
