// Serve: stand up the full recommendation stack behind a TCP socket —
// the production shape of the paper's system. An epoll RecServer fronts
// a RecommendationService; clients speak the binary wire protocol
// (src/net/wire.h) via RecClient.
//
//   $ ./serve [port] [workers] [--checkpoint-dir=DIR]
//             [--checkpoint-interval-ms=N] [--deadline-ms=N]
//             [--stats-port=N] [--trace-sample-every-n=N]
//             [--trace-slow-us=N] [--trace-dump=FILE]
//             [--native-histograms]
//             [--quality-holdout-every-n=N] [--quality-arms=N]
//             [--host=ADDR] [--cluster-manifest=FILE] [--shard-id=I]
//             [--num-shards=N] [--shm=NAME] [--shm-slots=N]
//
// Defaults: port 7471, 4 workers, no checkpointing, no deadline, no
// stats endpoint, trace sampling 1-in-64, quality holdout 1-in-100,
// 2 A/B arms, standalone (unsharded).
//
// Sharded deployment: with --cluster-manifest and --shard-id this
// process is one shard of a multi-process cluster (docs/OPERATIONS.md,
// "Running a cluster"). The manifest supplies this shard's host:port
// (the positional port is ignored) and the shard count; routing clients
// (cluster/ClusterClient) send each user key to its owning shard via
// the shared consistent-hash ring, so this process only ever trains its
// own key slice. --shard-id/--num-shards without a manifest set up the
// same slice-awareness for hand-wired deployments. Sharded processes:
//  - checkpoint into <checkpoint-dir>/shard-<id>, so a restarted shard
//    restores exactly its slice and rejoins (shard handoff);
//  - warm up only the users they own (per-key single-writer holds from
//    the first action);
//  - export cluster.shard_id / cluster.num_shards gauges so scrapes
//    identify the shard.
//
// With --shm=NAME the server additionally serves the same-host
// shared-memory transport (docs/WIRE_PROTOCOL.md §9): clients on this
// machine connect with host "rec://shm/NAME" instead of TCP and skip
// the socket stack entirely. --shm-slots bounds concurrent shm client
// attachments. TCP stays on regardless — shm is an extra front door,
// not a replacement.
//
// With --stats-port the server also exposes its metrics registry over
// plain HTTP in Prometheus text format (curl http://127.0.0.1:N/metrics
// or point a scraper at it; /quality narrows the scrape to the
// model-quality section); the same text is always available in-band
// via the wire protocol's Stats RPC (RecClient::Stats). Request tracing
// is on by default: 1 in --trace-sample-every-n requests records
// per-stage latencies under "trace.*" (0 disables tracing).
// --native-histograms adds cumulative Prometheus histogram families to
// the HTTP scrape.
//
// Distributed tracing (docs/OPERATIONS.md, "Reading a distributed
// trace"): sampled requests — and, when an upstream router propagated a
// sampled context over the wire, adopted ones — record per-stage spans
// into an in-process collector. Finished traces are served as Chrome
// trace-event JSON at /traces on the stats port (load in Perfetto) and
// the slowest requests with per-stage breakdowns at /traces/slow.
// --trace-slow-us=N retroactively keeps any request slower than N µs
// even when it was not sampled (tail capture). --trace-dump=FILE writes
// the trace-event JSON to FILE on shutdown.
//
// Model-quality monitoring is always on (the service has a metrics
// registry): progressive-validation logloss, online recall@N over a
// deterministic 1-in---quality-holdout-every-n held-out slice (0
// disables the holdout), live CTR joined from served impressions
// segmented over --quality-arms A/B arms, and the drift watchdog — all
// under "quality.*". See docs/OPERATIONS.md, "Reading model quality".
//
// With --checkpoint-dir the server restores the model from the last
// snapshot on boot (fresh warm-up if none exists) and a background
// Checkpointer keeps snapshotting on an interval — so a kill -9 loses
// at most one interval of model updates. See examples/README.md for the
// kill-and-restart walkthrough.
//
// The server warms itself with a little synthetic traffic so the first
// client request already gets non-empty pages, then runs until SIGINT /
// SIGTERM, printing the metrics report on shutdown. Try it together
// with bench_net_throughput, or poke it from another terminal:
//
//   $ ./serve 7471 &
//   $ ./bench_net_throughput        # loadgen (spawns its own server) — or
//     use RecClient{{.host="127.0.0.1", .port=7471}} from your own code.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/manifest.h"
#include "common/trace.h"
#include "obs/span_collector.h"
#include "net/rec_server.h"
#include "net/shm_transport.h"
#include "net/stats_server.h"
#include "service/checkpointer.h"
#include "service/recommendation_service.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

rtrec::UserAction Watch(rtrec::UserId user, rtrec::VideoId video,
                        rtrec::Timestamp t) {
  rtrec::UserAction action;
  action.user = user;
  action.video = video;
  action.type = rtrec::ActionType::kPlayTime;
  action.view_fraction = 1.0;
  action.time = t;
  return action;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7471;
  std::string host = "127.0.0.1";
  int workers = 4;
  std::string checkpoint_dir;
  int checkpoint_interval_ms = 30'000;
  int deadline_ms = 0;
  int stats_port = -1;  // -1 = no HTTP stats endpoint.
  int trace_sample_every_n = 64;
  long trace_slow_us = 0;    // 0 = no tail capture.
  std::string trace_dump;    // Empty = no shutdown dump.
  bool native_histograms = false;
  int quality_holdout_every_n = 100;
  int quality_arms = 2;
  std::string manifest_path;
  int shard_id = -1;    // -1 = standalone.
  int num_shards = 0;   // 0 = derive (manifest size, or 1).
  std::string shm_address;  // Empty = TCP only.
  int shm_slots = 8;

  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--checkpoint-dir", &value)) {
      checkpoint_dir = value;
    } else if (ParseFlag(argv[i], "--checkpoint-interval-ms", &value)) {
      checkpoint_interval_ms = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--deadline-ms", &value)) {
      deadline_ms = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--stats-port", &value)) {
      stats_port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-sample-every-n", &value)) {
      trace_sample_every_n = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-slow-us", &value)) {
      trace_slow_us = std::atol(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-dump", &value)) {
      trace_dump = value;
    } else if (std::strcmp(argv[i], "--native-histograms") == 0) {
      native_histograms = true;
    } else if (ParseFlag(argv[i], "--quality-holdout-every-n", &value)) {
      quality_holdout_every_n = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--quality-arms", &value)) {
      quality_arms = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--host", &value)) {
      host = value;
    } else if (ParseFlag(argv[i], "--cluster-manifest", &value)) {
      manifest_path = value;
    } else if (ParseFlag(argv[i], "--shard-id", &value)) {
      shard_id = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--num-shards", &value)) {
      num_shards = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--shm", &value)) {
      shm_address = value;
    } else if (ParseFlag(argv[i], "--shm-slots", &value)) {
      shm_slots = std::atoi(value.c_str());
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) {
    port = static_cast<std::uint16_t>(std::atoi(positional[0]));
  }
  if (positional.size() > 1) workers = std::atoi(positional[1]);

  // Sharded mode: the manifest is authoritative for this shard's
  // address and the cluster size — every process must derive the same
  // ring as the routers.
  if (!manifest_path.empty()) {
    if (shard_id < 0) {
      std::fprintf(stderr, "--cluster-manifest requires --shard-id\n");
      return 1;
    }
    auto manifest = rtrec::ClusterManifest::Load(manifest_path);
    if (!manifest.ok()) {
      std::fprintf(stderr, "cluster manifest: %s\n",
                   manifest.status().ToString().c_str());
      return 1;
    }
    const rtrec::ShardAddress* self =
        manifest->Find(static_cast<rtrec::ShardId>(shard_id));
    if (self == nullptr) {
      std::fprintf(stderr, "shard %d not in manifest %s\n", shard_id,
                   manifest_path.c_str());
      return 1;
    }
    host = self->host;
    port = self->port;
    num_shards = static_cast<int>(manifest->num_shards());
  }
  if (shard_id >= 0 && num_shards <= 0) num_shards = shard_id + 1;
  if (shard_id >= num_shards && shard_id >= 0) {
    std::fprintf(stderr, "--shard-id=%d out of range (num shards %d)\n",
                 shard_id, num_shards);
    return 1;
  }
  const bool sharded = shard_id >= 0;
  rtrec::HashRing ring(sharded ? static_cast<std::size_t>(num_shards) : 1);
  if (sharded && !checkpoint_dir.empty()) {
    // Per-shard snapshot directory: a restarted shard restores exactly
    // its own slice, and shards never clobber each other's manifests.
    checkpoint_dir += "/shard-" + std::to_string(shard_id);
  }

  // Videos 1-99 are "drama", 100+ are "sports" — same toy type system
  // as the quickstart.
  rtrec::RecommendationService::Options service_options;
  service_options.metrics = &rtrec::MetricsRegistry::Default();
  service_options.quality.holdout_every_n =
      quality_holdout_every_n < 0
          ? 0u
          : static_cast<std::size_t>(quality_holdout_every_n);
  service_options.quality.num_arms =
      quality_arms < 1 ? 1u : static_cast<std::size_t>(quality_arms);
  rtrec::RecommendationService service(
      [](rtrec::VideoId v) -> rtrec::VideoType { return v < 100 ? 0 : 1; },
      service_options);

  bool restored = false;
  if (!checkpoint_dir.empty()) {
    rtrec::Status loaded = service.Restore(checkpoint_dir);
    if (loaded.ok()) {
      std::printf("restored model from %s\n", checkpoint_dir.c_str());
      restored = true;
    } else if (loaded.IsNotFound()) {
      std::printf("no checkpoint in %s yet, starting fresh\n",
                  checkpoint_dir.c_str());
    } else {
      std::fprintf(stderr, "checkpoint restore failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
  }

  // Warm the model: a few users co-watching makes the similar-video
  // tables and hot lists non-empty from the first request. A restored
  // model is already warm, but the hot lists are rebuilt from traffic,
  // so replay the warm-up either way — it's idempotent enough. Sharded
  // processes warm only the users they own: every key has exactly one
  // writer from the first action, the same invariant the router keeps
  // for live traffic.
  rtrec::Timestamp t = 0;
  for (int round = 0; round < 10; ++round) {
    for (rtrec::UserId user = 1; user <= 8; ++user) {
      if (sharded) {
        auto owner = ring.OwnerOfUser(user);
        if (!owner.ok() ||
            *owner != static_cast<rtrec::ShardId>(shard_id)) {
          continue;
        }
      }
      service.Observe(Watch(user, 10 + user % 3, t += 1000));
      service.Observe(Watch(user, 11 + user % 3, t += 1000));
    }
  }

  rtrec::Checkpointer::Options checkpointer_options;
  checkpointer_options.directory = checkpoint_dir;
  checkpointer_options.interval_ms = checkpoint_interval_ms;
  checkpointer_options.metrics = &rtrec::MetricsRegistry::Default();
  rtrec::Checkpointer checkpointer(&service, checkpointer_options);
  if (!checkpoint_dir.empty()) {
    rtrec::Status started = checkpointer.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "checkpointer failed to start: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("checkpointing to %s every %dms%s\n", checkpoint_dir.c_str(),
                checkpoint_interval_ms, restored ? " (restored)" : "");
  }

  rtrec::Tracer::Options tracer_options;
  tracer_options.sample_every_n =
      trace_sample_every_n < 0 ? 0u
                               : static_cast<std::uint32_t>(
                                     trace_sample_every_n);
  tracer_options.metrics = &rtrec::MetricsRegistry::Default();
  rtrec::Tracer tracer(tracer_options);

  // Span collector: sampled (and adopted, and tail-captured) requests
  // record per-stage spans here; /traces on the stats port and
  // --trace-dump export them as Chrome trace-event JSON.
  rtrec::obs::SpanCollector::Options span_options;
  span_options.shard_id = shard_id >= 0 ? shard_id : 0;
  span_options.metrics = &rtrec::MetricsRegistry::Default();
  rtrec::obs::SpanCollector spans(span_options);

  rtrec::RecServer::Options options;
  options.host = host;
  options.port = port;
  options.num_workers = workers;
  options.metrics = &rtrec::MetricsRegistry::Default();
  options.recommend_deadline_ms = deadline_ms;
  options.tracer = &tracer;
  options.spans = &spans;
  options.trace_slow_us = trace_slow_us;
  if (!shm_address.empty()) {
    // Accept the client-side spelling ("rec://shm/NAME") or a bare NAME.
    auto parsed = rtrec::ParseShmAddress(shm_address);
    if (!parsed.has_value()) parsed = rtrec::ParseShmAddress("shm:" + shm_address);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "--shm=%s is not a valid shm name\n",
                   shm_address.c_str());
      return 1;
    }
    options.shm_name = *parsed;
    options.shm_slot_count =
        shm_slots < 1 ? 1u : static_cast<std::uint32_t>(shm_slots);
  }
  rtrec::RecServer server(&service, options);
  rtrec::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!options.shm_name.empty()) {
    // "/rtrec.NAME" -> the client-side "rec://shm/NAME" spelling.
    const std::string bare =
        options.shm_name.substr(std::strlen("/rtrec."));
    std::printf("shm transport on %s (connect with rec://shm/%s)\n",
                options.shm_name.c_str(), bare.c_str());
  }
  if (sharded) {
    // Scrapes must identify the shard — the merged cluster scrape and
    // the per-shard dashboards key on these.
    rtrec::MetricsRegistry::Default().GetGauge("cluster.shard_id")
        ->Set(shard_id);
    rtrec::MetricsRegistry::Default().GetGauge("cluster.num_shards")
        ->Set(num_shards);
    std::printf("serving shard %d/%d on %s:%u with %d workers "
                "(Ctrl-C to stop)\n",
                shard_id, num_shards, host.c_str(), server.port(), workers);
  } else {
    std::printf("serving on %s:%u with %d workers (Ctrl-C to stop)\n",
                host.c_str(), server.port(), workers);
  }

  rtrec::StatsServer::Options stats_options;
  stats_options.port = static_cast<std::uint16_t>(stats_port);
  stats_options.shard_id = shard_id >= 0 ? shard_id : 0;
  stats_options.spans = &spans;
  stats_options.native_histograms = native_histograms;
  rtrec::StatsServer stats_server(&rtrec::MetricsRegistry::Default(),
                                  stats_options);
  if (stats_port >= 0) {
    rtrec::Status stats_started = stats_server.Start();
    if (!stats_started.ok()) {
      std::fprintf(stderr, "stats endpoint failed to start: %s\n",
                   stats_started.ToString().c_str());
      return 1;
    }
    std::printf("stats (Prometheus text) on http://127.0.0.1:%u/metrics\n",
                stats_server.port());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  stats_server.Stop();
  server.Stop();
  checkpointer.Stop();  // Takes a final snapshot when checkpointing is on.
  if (!trace_dump.empty()) {
    spans.Flush();
    const std::string json = spans.ExportChromeJson();
    if (FILE* f = std::fopen(trace_dump.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("trace dump (%zu bytes) written to %s\n", json.size(),
                  trace_dump.c_str());
    } else {
      std::fprintf(stderr, "trace dump: cannot open %s\n", trace_dump.c_str());
    }
  }
  std::printf("\n%s\n", rtrec::MetricsRegistry::Default().Report().c_str());
  return 0;
}
