// Full streaming deployment (Fig. 2): runs the paper's Storm topology on
// the bundled stream engine — spout → {ComputeMF → MFStorage},
// {UserHistory}, {GetItemPairs → ItemPairSim → ResultStorage} — while a
// serving thread answers recommendation requests against the same KV
// stores the bolts are writing.
//
//   $ ./streaming_service

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/recommender.h"
#include "core/topology_factory.h"
#include "data/event_generator.h"
#include "eval/experiment_runner.h"
#include "stream/topology.h"

using namespace rtrec;

int main() {
  const SyntheticWorld world(SmallWorldConfig(55));

  // The shared KV stores of Fig. 2.
  FactorStore::Options factor_options;
  MfModelConfig model_config;
  factor_options.num_factors = model_config.num_factors;
  factor_options.init_scale = model_config.init_scale;
  factor_options.seed = model_config.seed;
  FactorStore factors(factor_options);
  HistoryStore history;
  SimTableStore sim_table;

  // Three days of raw site traffic replayed through the topology.
  auto source = std::make_shared<VectorActionSource>(world.GenerateDays(0, 3));
  std::printf("replaying %zu actions through the Fig. 2 topology...\n",
              source->size());

  PipelineDeps deps;
  deps.factors = &factors;
  deps.history = &history;
  deps.sim_table = &sim_table;
  deps.type_resolver = world.TypeResolver();
  deps.model_config = model_config;

  PipelineParallelism parallelism;
  parallelism.spout = 2;
  parallelism.compute_mf = 4;
  parallelism.mf_storage = 4;
  parallelism.user_history = 2;
  parallelism.get_item_pairs = 2;
  parallelism.item_pair_sim = 4;
  parallelism.result_storage = 2;

  auto spec = BuildRecommendationTopology(source, deps, parallelism);
  if (!spec.ok()) {
    std::fprintf(stderr, "topology build failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  auto topology = stream::Topology::Create(std::move(spec).value());
  if (!topology.ok()) {
    std::fprintf(stderr, "topology create failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }

  // Serving path runs concurrently with ingestion — recommendations are
  // generated per request, not precomputed (Section 4.1).
  OnlineMf model(&factors, model_config);
  MfRecommender recommender(&model, &history, &sim_table, nullptr,
                            RecommendConfig{});

  std::atomic<bool> stop_serving{false};
  std::atomic<std::uint64_t> requests{0};
  std::thread server([&] {
    Rng rng(9);
    while (!stop_serving.load(std::memory_order_acquire)) {
      RecRequest request;
      request.user = 1 + rng.NextUint64(world.population().size());
      request.now = 3 * kMillisPerDay;
      request.top_n = 10;
      if (recommender.Recommend(request).ok()) {
        requests.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  (void)(*topology)->Start();
  (void)(*topology)->Join();
  stop_serving.store(true, std::memory_order_release);
  server.join();

  std::printf("\ningestion finished; %llu concurrent requests served\n",
              static_cast<unsigned long long>(requests.load()));
  std::printf("serving latency (us): %s\n",
              recommender.latency().ToString().c_str());
  std::printf("\nper-component metrics:\n%s",
              (*topology)->metrics().Report().c_str());
  std::printf("\nstores: %zu user vectors, %zu video vectors, "
              "%zu histories, %zu similar-video lists\n",
              factors.NumUsers(), factors.NumVideos(), history.NumUsers(),
              sim_table.NumVideos());
  return 0;
}
