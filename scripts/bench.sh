#!/usr/bin/env bash
# Build-and-run wrapper for the unified benchmark runner: runs the
# ingest / serve / tracing / transport / recall / quality phases, the
# multi-process cluster drill (including the stitched multi-shard trace
# assertion), and the million-scale workload leg (quantized factor
# memory + scenario stream + recall guardrail) with fixed seeds and
# writes the machine-readable ledger (BENCH_PR10.json), then validates
# it.
#
#   scripts/bench.sh [--smoke] [--build-dir=DIR] [--out=PATH]
#                    [--trace-dump=PATH] [--queue-capacity=N]
#                    [--drain-batch=N] [--pin-cpus] [--no-cluster]
#
# Defaults: full mode, ./build, BENCH_PR10.json in the repo root. The
# queue flags are forwarded to the runner's ingest phase (0 = engine
# defaults). The cluster phase forks real serve processes from
# examples/serve; --no-cluster skips it (scripts/cluster.sh runs the
# drill standalone).
# --smoke shrinks every phase to a few seconds — what CI runs. Exits
# non-zero if the runner fails or the ledger is missing or malformed.

set -u

smoke=""
build_dir="build"
extra_flags=()
out="BENCH_PR10.json"
cluster="yes"
for arg in "$@"; do
  case "${arg}" in
    --smoke) smoke="--smoke" ;;
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --out=*) out="${arg#--out=}" ;;
    --no-cluster) cluster="" ;;
    --queue-capacity=*|--drain-batch=*|--pin-cpus|--trace-dump=*)
      extra_flags+=("${arg}") ;;
    *)
      echo "usage: scripts/bench.sh [--smoke] [--build-dir=DIR] [--out=PATH]" \
           "[--trace-dump=PATH] [--queue-capacity=N] [--drain-batch=N]" \
           "[--pin-cpus] [--no-cluster]" >&2
      exit 2
      ;;
  esac
done

binary="${build_dir}/bench/bench_runner"
if [[ ! -x "${binary}" ]]; then
  echo "bench.sh: ${binary} not found — building it" >&2
  cmake --build "${build_dir}" --target bench_runner -j "$(nproc)" || exit 2
fi
if [[ -n "${cluster}" ]]; then
  serve_binary="${build_dir}/examples/serve"
  if [[ ! -x "${serve_binary}" ]]; then
    echo "bench.sh: ${serve_binary} not found — building it" >&2
    cmake --build "${build_dir}" --target serve -j "$(nproc)" || exit 2
  fi
  extra_flags+=("--serve-binary=${serve_binary}")
fi

"${binary}" ${smoke} --out="${out}" ${extra_flags[@]+"${extra_flags[@]}"} || exit 1

if [[ ! -s "${out}" ]]; then
  echo "bench.sh: ledger ${out} missing or empty" >&2
  exit 1
fi

# Validate the ledger: well-formed JSON carrying every promised metric.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${out}" <<'EOF' || exit 1
import json, math, sys
with open(sys.argv[1]) as f:
    ledger = json.load(f)
assert ledger["schema"] == "rtrec-bench/1", "unexpected schema tag"
assert ledger["ingest"]["actions_per_sec"] > 0, "no ingest throughput"
assert ledger["ingest"]["e2e_elapsed_s"] > 0, "no e2e ingest window"
queue = ledger["ingest"]["queue"]
assert queue["batch_drains"] > 0, "ring queues recorded no batch drains"
for key in ("push_retries", "parked_wakeups", "pinned_tasks"):
    assert queue[key] >= 0, f"missing queue counter {key}"
assert ledger["ingest"]["stages"]["compute_mf"]["process"]["count"] > 0, \
    "no propagated traces reached compute_mf"
assert ledger["serve"]["qps"] > 0, "no serve throughput"
assert ledger["serve"]["stats_scrape"]["counters_monotone"], \
    "stats counters not monotone across scrapes"
assert 0.0 <= ledger["recall"]["recall_at_10"] <= 1.0, "recall out of range"
for key in ("p50_us", "p95_us", "p99_us"):
    assert key in ledger["serve"]["client_latency"], f"missing {key}"
# Tracing section: propagation must be negotiated and exercised over
# the wire (adopted > 0 means server-side Dapper-style adoption fired),
# span trees must finish, tail capture must keep slow requests, and the
# Chrome trace-event export must be well-formed.
tracing = ledger["tracing"]
assert tracing["propagation_negotiated"], \
    "client did not negotiate trace propagation"
assert tracing["adopted"] > 0, "no trace contexts adopted off the wire"
assert tracing["sampled"] > 0, "head sampler recorded nothing"
assert tracing["traces_finished"] > 0, "no span trees finished"
assert tracing["slow_captured"] > 0, "tail capture kept no requests"
assert tracing["spans_recorded"] > 0, "no spans recorded"
assert tracing["spans_per_trace"] >= 1.0, "span trees are empty"
assert tracing["export"]["valid"], "trace export is not valid trace-event JSON"
assert tracing["export"]["chrome_bytes"] > 0, "trace export is empty"
# Transport section: every leg of the wire-bound drill must have run
# and pipelining must beat the v1 lock-step baseline on the same box.
# The absolute 3x / 500k-QPS targets are NOT asserted here — a 1-CPU CI
# host is scheduler-bound, and the ledger's host_cpus + note fields say
# so — but a per-connection speedup below 1.0 means pipelining is
# broken, whatever the hardware.
transport = ledger["transport"]
for leg in ("tcp_v1", "tcp_v2_pipelined", "tcp_v2_batched",
            "shm_v2_pipelined", "shm_ping"):
    assert transport[leg]["ok"], f"transport leg {leg} failed"
    assert transport[leg]["qps"] > 0, f"transport leg {leg} has no QPS"
    assert transport[leg]["latency"]["p99_us"] > 0, \
        f"transport leg {leg} has no latency data"
assert transport["v2_pipelined_speedup_vs_v1"] > 1.0, \
    "v2 pipelining did not beat the v1 lock-step baseline"
assert transport["shm_speedup_vs_v1"] > 1.0, \
    "shm transport did not beat the v1 TCP baseline"
assert transport["shm_ring"]["polls"] > 0, "shm rings recorded no polls"
assert transport["shm_ring"]["attach_errors"] == 0, \
    "shm attach errors during the drill"
assert transport["host_cpus"] >= 1 and transport["note"], \
    "transport section missing the honesty fields"
# Model-quality section: the live signals must be present and sane. The
# co-watch workload is predictable by construction, so a zero held-out
# recall or a non-finite logloss means the monitor (or its wiring into
# the train/serve paths) is broken.
quality = ledger["quality"]
assert quality["progressive"]["samples"] > 0, "no progressive samples"
logloss = quality["progressive"]["logloss"]
assert isinstance(logloss, (int, float)) and math.isfinite(logloss) \
    and logloss > 0, f"progressive logloss not finite-positive: {logloss}"
assert quality["holdout"]["evaluated"] > 0, "no held-out actions evaluated"
assert quality["holdout"]["hits"] > 0, "held-out recall is zero"
assert 0.0 < quality["holdout"]["online_recall_at_10"] <= 1.0, \
    "online recall out of range"
assert 0.0 <= quality["ctr"]["overall"] <= 1.0, "CTR out of range"
assert quality["ctr"]["impressions"] > 0, "CTR join saw no impressions"
for key in ("logloss", "calibration", "embedding_norm", "bias_drift",
            "label_shift", "staleness", "coverage"):
    assert quality["alerts"][key] >= 0, f"missing alert counter {key}"
# Workload section: quantized factor memory, the million-scale scenario
# stream, and the recall guardrail. The memory reduction and the recall
# delta are the PR's headline claims, so their gates are hard asserts;
# the RSS ceiling catches the memory-accounting regressions this leg
# exists to guard against (smoke streams a toy world, hence the much
# tighter ceiling).
workload = ledger["workload"]
mem = workload["memory"]
assert mem["fp16_reduction_ok"], "fp16 did not shrink entries >= 40%"
assert mem["float16"]["reduction_vs_float32"] >= 0.40, \
    "fp16 bytes-per-entry reduction below the 40% floor"
assert mem["float32"]["bytes_per_entry"] > mem["float16"]["bytes_per_entry"] \
    > mem["int8"]["bytes_per_entry"], "precision ladder out of order"
million = workload["million_scale"]
assert million["actions"] > 0, "workload stream processed no actions"
assert million["actions_per_sec"] > 0, "no workload throughput"
rss_ceiling_mb = 2048 if ledger["smoke"] else 24576
assert 0 < million["rss_peak_mb"] <= rss_ceiling_mb, \
    f"workload RSS {million['rss_peak_mb']} MB breaches the " \
    f"{rss_ceiling_mb} MB ceiling"
assert million["drift"]["tripped"], \
    "planted demographic drift did not trip the quality watchdog"
assert million["drift"]["alerts_after"] > million["drift"]["alerts_before"], \
    "no new quality alerts after the drift day"
assert million["flash_crowd_impression_share"] > 0.1, \
    "flash crowd left no impression-share signature"
guardrail = workload["recall_guardrail"]
assert guardrail["fp16_within_1pct"], \
    "fp16 recall@10 drifted >= 1% from fp32"
assert guardrail["fp16_rel_delta"] < 0.01, \
    f"fp16 recall delta {guardrail['fp16_rel_delta']} over budget"
assert guardrail["recall_at_10_float32"] > 0, "fp32 recall baseline is zero"
# Cluster section (present when the drill ran): the kill -9 must be
# survivable and the restart must heal — the same contract
# scripts/cluster.sh enforces for the standalone drill.
if "cluster" in ledger:
    cluster = ledger["cluster"]
    assert cluster["steady"]["qps"] > 0, "no steady cluster throughput"
    assert cluster["baseline_one_shard"]["qps"] > 0, "no 1-process baseline"
    assert cluster["outage"]["error_fraction"] <= 0.2, \
        "outage error rate not bounded"
    assert cluster["failover_latency_ms"] >= 0, \
        "failover latency not measured"
    assert cluster["failover_reply_degraded"], \
        "failover answer was not flagged DEGRADED"
    assert cluster["recovery_ms"] >= 0, "victim never recovered"
    assert cluster["post_recovery"]["errors"] == 0, "errors after recovery"
    stitched = cluster["stitched_trace"]
    assert stitched["found_on_fallback_shard"], \
        "kill-9 failover produced no stitched multi-shard trace"
    assert stitched["failover_hop_recorded"], \
        "the stitched trace is missing the hop=1 failover marker"
print(f"ledger OK: {sys.argv[1]}")
EOF
else
  # No python3: fall back to a structural grep so the script still
  # catches an empty or truncated ledger.
  for field in '"schema": "rtrec-bench/1"' '"qps"' '"actions_per_sec"' \
               '"recall_at_10"' '"p99_us"' '"quality"' \
               '"online_recall_at_10"' '"logloss"' '"transport"' \
               '"shm_v2_pipelined"' '"v2_pipelined_speedup_vs_v1"' \
               '"workload"' '"million_scale"' '"fp16_reduction_ok"' \
               '"recall_guardrail"' '"tracing"' '"adopted"' \
               '"slow_captured"' '"traces_finished"'; do
    if ! grep -q "${field}" "${out}"; then
      echo "bench.sh: ledger ${out} is missing ${field}" >&2
      exit 1
    fi
  done
  echo "ledger OK (grep-validated): ${out}"
fi
