#!/usr/bin/env python3
"""Warn-only diff between two bench ledgers (rtrec-bench/1 schema).

    scripts/bench_diff.py BASELINE.json FRESH.json [--threshold=0.20]

Compares serve QPS, client p99, ingest actions/sec, and per-stage
queue-wait percentiles of a fresh (usually --smoke) ledger against a
committed baseline. Regressions beyond the threshold print GitHub
`::warning::` annotations; the exit code is always 0 — CI bench
hardware is too noisy for a hard gate, so this is an operator signal,
not a merge blocker. Recall is also checked (it is deterministic, so a
drift there is a real behaviour change, but smoke and full ledgers use
different workload sizes — recall is only compared when both ledgers
ran the same mode, per the ledger's `smoke` flag). Queue-wait diffs
additionally require the regression to clear an absolute floor
(QUEUE_WAIT_FLOOR_US) so sub-50µs scheduler jitter never warns.
Ledgers missing the ingest section (pre-PR6 baselines) skip those rows;
likewise the cluster section (pre-PR7, or runs without the drill) —
when both ledgers carry it, steady cluster QPS, failover latency, and
recovery time are compared (the latencies carry their own absolute
floors, since tens of milliseconds ride on scheduler noise). The
transport section (PR8+) diffs per-leg QPS for every wire-bound drill
leg plus the v2/shm speedup ratios; the ratios are the load-bearing
numbers — absolute leg QPS depends on host CPU count, but a speedup
ratio collapsing toward 1.0 means pipelining or the shm rings
regressed regardless of hardware. The workload section (PR9+) diffs
quantized bytes-per-entry (any change warns — packed layout is a format
fact, not noise), the fp16/int8 recall deltas (same-mode only, like
recall), stream throughput, peak RSS, and whether the planted
demographic drift still trips the quality watchdog. The tracing
section (PR10+) diffs traced QPS and warns if any of the structural
facts collapse — wire adoption, finished span trees, tail captures, or
export validity are booleans/counts that a healthy run never zeroes;
likewise the cluster drill's stitched multi-shard trace.
"""

import json
import sys

# Queue-wait regressions below this absolute delta are scheduler noise,
# not a pipeline change, regardless of the relative threshold.
QUEUE_WAIT_FLOOR_US = 50.0

# The Fig. 2 stages whose queue_wait percentiles the ingest phase
# reports.
STAGES = ("compute_mf", "mf_storage", "user_history", "get_item_pairs",
          "item_pair_sim", "result_storage")


def diff_ingest(baseline, fresh, threshold, paths):
    """Ingest throughput + per-stage queue-wait rows; tolerates ledgers
    that predate the ingest e2e accounting."""
    base_ingest = baseline.get("ingest") or {}
    fresh_ingest = fresh.get("ingest") or {}
    base_aps = base_ingest.get("actions_per_sec")
    fresh_aps = fresh_ingest.get("actions_per_sec")
    if not base_aps or not fresh_aps:
        print("bench_diff: ingest section missing from one ledger; "
              "skipping ingest diff")
        return
    print(f"ingest a/s: {base_aps:12.1f} -> {fresh_aps:12.1f} "
          f"({(fresh_aps / base_aps - 1) * 100:+.1f}%)")
    if fresh_aps < base_aps * (1 - threshold):
        print(f"::warning::ingest actions/sec regressed more than "
              f"{threshold:.0%}: {base_aps:.0f} -> {fresh_aps:.0f} "
              f"({paths[0]} vs {paths[1]})")

    base_stages = base_ingest.get("stages") or {}
    fresh_stages = fresh_ingest.get("stages") or {}
    for stage in STAGES:
        for pct in ("p50_us", "p95_us"):
            b = (base_stages.get(stage) or {}).get("queue_wait", {}).get(pct)
            f = (fresh_stages.get(stage) or {}).get("queue_wait", {}).get(pct)
            if b is None or f is None:
                continue
            print(f"queue_wait {stage:>16} {pct}: {b:10.1f}us -> "
                  f"{f:10.1f}us")
            if f > b * (1 + threshold) and f - b > QUEUE_WAIT_FLOOR_US:
                print(f"::warning::{stage} queue_wait {pct} regressed "
                      f"more than {threshold:.0%}: {b:.0f}us -> {f:.0f}us "
                      f"({paths[0]} vs {paths[1]})")


def diff_cluster(baseline, fresh, threshold, paths):
    """Cluster drill rows: aggregate QPS, failover latency, recovery
    time. Ledgers that never ran the drill (pre-PR7, or --no-cluster)
    skip the section."""
    base_cluster = baseline.get("cluster") or {}
    fresh_cluster = fresh.get("cluster") or {}
    base_qps = (base_cluster.get("steady") or {}).get("qps")
    fresh_qps = (fresh_cluster.get("steady") or {}).get("qps")
    if not base_qps or not fresh_qps:
        print("bench_diff: cluster section missing from one ledger; "
              "skipping cluster diff")
        return
    print(f"cluster qps: {base_qps:11.1f} -> {fresh_qps:11.1f} "
          f"({(fresh_qps / base_qps - 1) * 100:+.1f}%)")
    if fresh_qps < base_qps * (1 - threshold):
        print(f"::warning::cluster steady QPS regressed more than "
              f"{threshold:.0%}: {base_qps:.0f} -> {fresh_qps:.0f} "
              f"({paths[0]} vs {paths[1]})")
    for key, floor_ms in (("failover_latency_ms", 50.0),
                          ("recovery_ms", 250.0)):
        b, f = base_cluster.get(key), fresh_cluster.get(key)
        if b is None or f is None:
            continue
        print(f"cluster {key}: {b:8.1f}ms -> {f:8.1f}ms")
        # Latencies this small ride on scheduler noise; warn only past
        # both the relative threshold and an absolute floor.
        if f > b * (1 + threshold) and f - b > floor_ms:
            print(f"::warning::cluster {key} regressed more than "
                  f"{threshold:.0%}: {b:.0f}ms -> {f:.0f}ms "
                  f"({paths[0]} vs {paths[1]})")
    # The stitched multi-shard trace (PR10+) is a boolean contract, not
    # a timing: the kill-9 failover must surface on the fallback shard's
    # /traces with the hop marker whenever the drill ran.
    stitched = fresh_cluster.get("stitched_trace") or {}
    if stitched:
        found = stitched.get("found_on_fallback_shard")
        hop = stitched.get("failover_hop_recorded")
        print(f"cluster stitched trace: found={found} hop1={hop}")
        if not found or not hop:
            print(f"::warning::the kill-9 drill no longer yields a "
                  f"stitched multi-shard trace with hop=1 ({paths[1]})")


def diff_transport(baseline, fresh, threshold, paths):
    """Wire-bound drill rows: per-leg QPS plus the speedup ratios.
    Ledgers that predate the transport phase (pre-PR8) skip the
    section."""
    base_transport = baseline.get("transport") or {}
    fresh_transport = fresh.get("transport") or {}
    if not base_transport or not fresh_transport:
        print("bench_diff: transport section missing from one ledger; "
              "skipping transport diff")
        return
    for leg in ("tcp_v1", "tcp_v2_pipelined", "tcp_v2_batched",
                "shm_v2_pipelined", "shm_ping"):
        b = (base_transport.get(leg) or {}).get("qps")
        f = (fresh_transport.get(leg) or {}).get("qps")
        if not b or not f:
            continue
        print(f"transport {leg:>17} qps: {b:12.1f} -> {f:12.1f} "
              f"({(f / b - 1) * 100:+.1f}%)")
        if f < b * (1 - threshold):
            print(f"::warning::transport {leg} QPS regressed more than "
                  f"{threshold:.0%}: {b:.0f} -> {f:.0f} "
                  f"({paths[0]} vs {paths[1]})")
    # The ratios are host-independent: pipelining vs lock-step on the
    # SAME box. A collapse here is a transport regression even if
    # absolute QPS moved for hardware reasons.
    for key in ("v2_pipelined_speedup_vs_v1", "v2_batched_speedup_vs_v1",
                "shm_speedup_vs_v1"):
        b, f = base_transport.get(key), fresh_transport.get(key)
        if b is None or f is None:
            continue
        print(f"transport {key}: {b:6.2f}x -> {f:6.2f}x")
        if f < b * (1 - threshold):
            print(f"::warning::transport {key} collapsed more than "
                  f"{threshold:.0%}: {b:.2f}x -> {f:.2f}x "
                  f"({paths[0]} vs {paths[1]})")
        if f is not None and f <= 1.0:
            print(f"::warning::transport {key} is {f:.2f}x — pipelining "
                  f"no longer beats the v1 lock-step baseline "
                  f"({paths[1]})")


def diff_tracing(baseline, fresh, threshold, paths):
    """Tracing rows (PR10+): traced QPS uses the relative threshold;
    the structural facts (adoption, finished traces, tail captures,
    export validity) warn whenever the fresh ledger zeroes one —
    a healthy run always records them, whatever the hardware."""
    base_tracing = baseline.get("tracing") or {}
    fresh_tracing = fresh.get("tracing") or {}
    if not fresh_tracing:
        print("bench_diff: tracing section missing from the fresh ledger; "
              "skipping tracing diff")
        return
    b = base_tracing.get("qps_traced")
    f = fresh_tracing.get("qps_traced")
    if b and f:
        print(f"tracing qps: {b:12.1f} -> {f:12.1f} "
              f"({(f / b - 1) * 100:+.1f}%)")
        if f < b * (1 - threshold):
            print(f"::warning::traced QPS regressed more than "
                  f"{threshold:.0%}: {b:.0f} -> {f:.0f} "
                  f"({paths[0]} vs {paths[1]})")
    for key in ("adopted", "traces_finished", "slow_captured",
                "spans_recorded"):
        value = fresh_tracing.get(key)
        if value is None:
            continue
        print(f"tracing {key}: {value}")
        if value <= 0:
            print(f"::warning::tracing {key} is zero — the tracing "
                  f"subsystem recorded nothing for it ({paths[1]})")
    if not fresh_tracing.get("propagation_negotiated", True):
        print(f"::warning::trace propagation no longer negotiated on "
              f"connect ({paths[1]})")
    export = fresh_tracing.get("export") or {}
    if export and not export.get("valid", True):
        print(f"::warning::trace export is no longer valid Chrome "
              f"trace-event JSON ({paths[1]})")


def diff_workload(baseline, fresh, threshold, paths):
    """Workload rows (PR9+): quantized bytes-per-entry, the fp16/int8
    recall deltas, stream throughput, and RSS. Bytes-per-entry and the
    recall deltas are deterministic layout/algorithm facts, so they get
    drift warnings at tight absolute floors; throughput and RSS are
    hardware-bound and use the relative threshold."""
    base_workload = baseline.get("workload") or {}
    fresh_workload = fresh.get("workload") or {}
    if not base_workload or not fresh_workload:
        print("bench_diff: workload section missing from one ledger; "
              "skipping workload diff")
        return
    base_mem = base_workload.get("memory") or {}
    fresh_mem = fresh_workload.get("memory") or {}
    for precision in ("float32", "float16", "int8"):
        b = (base_mem.get(precision) or {}).get("bytes_per_entry")
        f = (fresh_mem.get(precision) or {}).get("bytes_per_entry")
        if b is None or f is None:
            continue
        print(f"workload {precision:>7} bytes/entry: {b:6.0f} -> {f:6.0f}")
        if f != b:
            print(f"::warning::{precision} bytes_per_entry changed: "
                  f"{b:.0f} -> {f:.0f} — packed layout drift is a "
                  f"deliberate format change or a bug, never noise "
                  f"({paths[0]} vs {paths[1]})")
    b = (base_mem.get("float16") or {}).get("reduction_vs_float32")
    f = (fresh_mem.get("float16") or {}).get("reduction_vs_float32")
    if b is not None and f is not None:
        print(f"workload fp16 reduction: {b:.1%} -> {f:.1%}")
        if f < 0.40:
            print(f"::warning::fp16 reduction fell below the 40% floor: "
                  f"{f:.1%} ({paths[1]})")

    base_million = base_workload.get("million_scale") or {}
    fresh_million = fresh_workload.get("million_scale") or {}
    b = base_million.get("actions_per_sec")
    f = fresh_million.get("actions_per_sec")
    if b and f:
        print(f"workload stream a/s: {b:12.1f} -> {f:12.1f} "
              f"({(f / b - 1) * 100:+.1f}%)")
        if f < b * (1 - threshold):
            print(f"::warning::workload stream throughput regressed more "
                  f"than {threshold:.0%}: {b:.0f} -> {f:.0f} "
                  f"({paths[0]} vs {paths[1]})")
    b = base_million.get("rss_peak_mb")
    f = fresh_million.get("rss_peak_mb")
    if b and f:
        print(f"workload rss peak: {b:8.1f}MB -> {f:8.1f}MB "
              f"({(f / b - 1) * 100:+.1f}%)")
        if f > b * (1 + threshold) and f - b > 64.0:
            print(f"::warning::workload peak RSS regressed more than "
                  f"{threshold:.0%}: {b:.0f}MB -> {f:.0f}MB "
                  f"({paths[0]} vs {paths[1]})")
    for key in ("tripped",):
        b = (base_million.get("drift") or {}).get(key)
        f = (fresh_million.get("drift") or {}).get(key)
        if b is None or f is None:
            continue
        print(f"workload drift tripped: {b} -> {f}")
        if b and not f:
            print(f"::warning::the planted demographic drift no longer "
                  f"trips the quality watchdog ({paths[1]})")

    # Recall deltas are same-seed deterministic within a mode, like the
    # offline recall rows — compare only across same-mode ledgers.
    if baseline.get("smoke") == fresh.get("smoke"):
        base_guard = base_workload.get("recall_guardrail") or {}
        fresh_guard = fresh_workload.get("recall_guardrail") or {}
        for key in ("fp16_rel_delta", "int8_rel_delta"):
            b, f = base_guard.get(key), fresh_guard.get(key)
            if b is None or f is None:
                continue
            print(f"workload {key}: {b:.6f} -> {f:.6f}")
            if abs(b - f) > 0.001:
                print(f"::warning::{key} drifted: {b:.6f} -> {f:.6f} — "
                      f"quantized recall is deterministic, this is a "
                      f"behaviour change, not noise")
        f = fresh_guard.get("fp16_rel_delta")
        if f is not None and f >= 0.01:
            print(f"::warning::fp16 recall@10 delta {f:.4f} breaches the "
                  f"1% guardrail ({paths[1]})")


def load(path):
    try:
        with open(path) as f:
            ledger = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::bench_diff: cannot read {path}: {e}")
        return None
    if ledger.get("schema") != "rtrec-bench/1":
        print(f"::warning::bench_diff: {path} has unexpected schema "
              f"{ledger.get('schema')!r}")
        return None
    return ledger


def main(argv):
    threshold = 0.20
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: bench_diff.py BASELINE.json FRESH.json "
              "[--threshold=0.20]")
        return 0  # Warn-only by contract.
    baseline, fresh = load(paths[0]), load(paths[1])
    if baseline is None or fresh is None:
        return 0

    base_qps = baseline["serve"]["qps"]
    fresh_qps = fresh["serve"]["qps"]
    base_p99 = baseline["serve"]["client_latency"]["p99_us"]
    fresh_p99 = fresh["serve"]["client_latency"]["p99_us"]

    print(f"serve qps : {base_qps:12.1f} -> {fresh_qps:12.1f} "
          f"({(fresh_qps / base_qps - 1) * 100:+.1f}%)")
    print(f"client p99: {base_p99:10.1f}us -> {fresh_p99:10.1f}us "
          f"({(fresh_p99 / base_p99 - 1) * 100:+.1f}%)")

    if fresh_qps < base_qps * (1 - threshold):
        print(f"::warning::serve QPS regressed more than "
              f"{threshold:.0%}: {base_qps:.0f} -> {fresh_qps:.0f} "
              f"({paths[0]} vs {paths[1]})")
    if fresh_p99 > base_p99 * (1 + threshold):
        print(f"::warning::serve p99 regressed more than "
              f"{threshold:.0%}: {base_p99:.0f}us -> {fresh_p99:.0f}us "
              f"({paths[0]} vs {paths[1]})")

    diff_ingest(baseline, fresh, threshold, paths)
    diff_tracing(baseline, fresh, threshold, paths)
    diff_transport(baseline, fresh, threshold, paths)
    diff_cluster(baseline, fresh, threshold, paths)
    diff_workload(baseline, fresh, threshold, paths)

    if baseline.get("smoke") == fresh.get("smoke"):
        for k in ("recall_at_1", "recall_at_5", "recall_at_10"):
            b, f = baseline["recall"][k], fresh["recall"][k]
            if abs(b - f) > 0.001:
                print(f"::warning::{k} drifted: {b:.6f} -> {f:.6f} — "
                      f"recall is deterministic, this is a behaviour "
                      f"change, not noise")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
