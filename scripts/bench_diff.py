#!/usr/bin/env python3
"""Warn-only diff between two bench ledgers (rtrec-bench/1 schema).

    scripts/bench_diff.py BASELINE.json FRESH.json [--threshold=0.20]

Compares serve QPS and client p99 of a fresh (usually --smoke) ledger
against a committed baseline. Regressions beyond the threshold print
GitHub `::warning::` annotations; the exit code is always 0 — CI bench
hardware is too noisy for a hard gate, so this is an operator signal,
not a merge blocker. Recall is also checked (it is deterministic, so a
drift there is a real behaviour change, but smoke and full ledgers use
different workload sizes — recall is only compared when both ledgers
ran the same mode, per the ledger's `smoke` flag).
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            ledger = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::bench_diff: cannot read {path}: {e}")
        return None
    if ledger.get("schema") != "rtrec-bench/1":
        print(f"::warning::bench_diff: {path} has unexpected schema "
              f"{ledger.get('schema')!r}")
        return None
    return ledger


def main(argv):
    threshold = 0.20
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print("usage: bench_diff.py BASELINE.json FRESH.json "
              "[--threshold=0.20]")
        return 0  # Warn-only by contract.
    baseline, fresh = load(paths[0]), load(paths[1])
    if baseline is None or fresh is None:
        return 0

    base_qps = baseline["serve"]["qps"]
    fresh_qps = fresh["serve"]["qps"]
    base_p99 = baseline["serve"]["client_latency"]["p99_us"]
    fresh_p99 = fresh["serve"]["client_latency"]["p99_us"]

    print(f"serve qps : {base_qps:12.1f} -> {fresh_qps:12.1f} "
          f"({(fresh_qps / base_qps - 1) * 100:+.1f}%)")
    print(f"client p99: {base_p99:10.1f}us -> {fresh_p99:10.1f}us "
          f"({(fresh_p99 / base_p99 - 1) * 100:+.1f}%)")

    if fresh_qps < base_qps * (1 - threshold):
        print(f"::warning::serve QPS regressed more than "
              f"{threshold:.0%}: {base_qps:.0f} -> {fresh_qps:.0f} "
              f"({paths[0]} vs {paths[1]})")
    if fresh_p99 > base_p99 * (1 + threshold):
        print(f"::warning::serve p99 regressed more than "
              f"{threshold:.0%}: {base_p99:.0f}us -> {fresh_p99:.0f}us "
              f"({paths[0]} vs {paths[1]})")

    if baseline.get("smoke") == fresh.get("smoke"):
        for k in ("recall_at_1", "recall_at_5", "recall_at_10"):
            b, f = baseline["recall"][k], fresh["recall"][k]
            if abs(b - f) > 0.001:
                print(f"::warning::{k} drifted: {b:.6f} -> {f:.6f} — "
                      f"recall is deterministic, this is a behaviour "
                      f"change, not noise")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
