#!/usr/bin/env bash
# Loop the chaos test to shake out rare interleavings. The chaos test
# arms every fault point at ~1%, so each iteration explores a different
# random failure schedule; a single pass is cheap, so run many.
#
#   scripts/chaos.sh [iterations] [build-dir]
#
# Defaults: 20 iterations against ./build. Exits non-zero on the first
# failing iteration, leaving its log in /tmp for inspection. Pair with a
# sanitizer build (cmake -DRTREC_SANITIZE=address|thread) for the full
# treatment — that is what CI runs.

set -u

iterations="${1:-20}"
build_dir="${2:-build}"
binary="${build_dir}/tests/chaos_test"

if [[ ! -x "${binary}" ]]; then
  echo "chaos.sh: ${binary} not found — build first (cmake --build ${build_dir})" >&2
  exit 2
fi

for ((i = 1; i <= iterations; i++)); do
  log="$(mktemp /tmp/rtrec_chaos_XXXXXX.log)"
  if "${binary}" --gtest_shuffle --gtest_random_seed="${i}" >"${log}" 2>&1; then
    echo "chaos iteration ${i}/${iterations}: OK"
    rm -f "${log}"
  else
    status=$?
    echo "chaos iteration ${i}/${iterations}: FAILED (exit ${status}), log: ${log}" >&2
    tail -n 40 "${log}" >&2
    exit "${status}"
  fi
done
echo "all ${iterations} chaos iterations passed"
