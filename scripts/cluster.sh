#!/usr/bin/env bash
# Sharded-deployment driver: the one-machine cluster drill and a
# long-lived dev cluster. See docs/OPERATIONS.md, "Running a cluster".
#
#   scripts/cluster.sh [--smoke] [--build-dir=DIR] [--out=PATH]
#       Run the chaos drill (default mode, what CI's cluster smoke job
#       calls with --smoke): bench_runner forks a 4-process cluster,
#       drives ClusterClient loadgen, kill -9s a shard mid-traffic, and
#       writes the ledger's `cluster` section, validated here —
#       bounded outage errors, a DEGRADED failover answer, measured
#       failover latency and recovery time, a zero-error post window.
#
#   scripts/cluster.sh --up[=N] [--build-dir=DIR] [--base-port=P]
#       Bring up an N-shard cluster (default 4) in the background on
#       ports P..P+N-1 (default 7471). Readiness is gated on rec_ping —
#       the script returns only when every shard answers Ping, no
#       sleep-and-hope. State (manifest, pids, logs, checkpoints) lives
#       in .cluster/.
#
#   scripts/cluster.sh --down
#       Stop a --up cluster and remove .cluster/.
#
# Exits non-zero if bring-up, the drill, or ledger validation fails.

set -u

mode="drill"
smoke=""
build_dir="build"
out="BENCH_CLUSTER.json"
num_shards=4
base_port=7471
state_dir=".cluster"

for arg in "$@"; do
  case "${arg}" in
    --smoke) smoke="--smoke" ;;
    --up) mode="up" ;;
    --up=*) mode="up"; num_shards="${arg#--up=}" ;;
    --down) mode="down" ;;
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --out=*) out="${arg#--out=}" ;;
    --base-port=*) base_port="${arg#--base-port=}" ;;
    *)
      echo "usage: scripts/cluster.sh [--smoke] [--build-dir=DIR]" \
           "[--out=PATH] | --up[=N] [--base-port=P] | --down" >&2
      exit 2
      ;;
  esac
done

ensure_built() {
  local target
  for target in "$@"; do
    local path
    path="$(find "${build_dir}" -name "${target}" -type f -perm -u+x \
            2>/dev/null | head -1)"
    if [[ -z "${path}" ]]; then
      echo "cluster.sh: building ${target}" >&2
      cmake --build "${build_dir}" --target "${target}" -j "$(nproc)" \
        || exit 2
    fi
  done
}

if [[ "${mode}" == "down" ]]; then
  if [[ -f "${state_dir}/pids" ]]; then
    while read -r pid; do
      kill "${pid}" 2>/dev/null || true
    done < "${state_dir}/pids"
    # Give the shards a moment to take their final checkpoint.
    while read -r pid; do
      for _ in $(seq 1 50); do
        kill -0 "${pid}" 2>/dev/null || break
        sleep 0.1
      done
    done < "${state_dir}/pids"
  fi
  rm -rf "${state_dir}"
  echo "cluster down"
  exit 0
fi

if [[ "${mode}" == "up" ]]; then
  if [[ -f "${state_dir}/pids" ]]; then
    echo "cluster.sh: ${state_dir}/pids exists — already up?" \
         "(scripts/cluster.sh --down first)" >&2
    exit 1
  fi
  ensure_built serve rec_ping
  serve_bin="${build_dir}/examples/serve"
  ping_bin="${build_dir}/examples/rec_ping"
  mkdir -p "${state_dir}"
  manifest="${state_dir}/manifest.txt"
  {
    echo "# rtrec cluster manifest (scripts/cluster.sh --up)"
    for ((i = 0; i < num_shards; ++i)); do
      echo "shard ${i} 127.0.0.1 $((base_port + i))"
    done
  } > "${manifest}"

  for ((i = 0; i < num_shards; ++i)); do
    "${serve_bin}" --cluster-manifest="${manifest}" --shard-id="${i}" \
      --checkpoint-dir="${state_dir}/checkpoints" \
      >> "${state_dir}/shard-${i}.log" 2>&1 &
    echo $! >> "${state_dir}/pids"
  done

  # Readiness: every shard must answer Ping. rec_ping bounds each probe,
  # so a dead shard fails fast instead of hanging the gate.
  for ((i = 0; i < num_shards; ++i)); do
    ready=""
    for _ in $(seq 1 200); do
      if "${ping_bin}" 127.0.0.1 "$((base_port + i))" 250 2>/dev/null; then
        ready="yes"
        break
      fi
      sleep 0.05
    done
    if [[ -z "${ready}" ]]; then
      echo "cluster.sh: shard ${i} (port $((base_port + i))) never became" \
           "healthy; log tail:" >&2
      tail -20 "${state_dir}/shard-${i}.log" >&2 || true
      "$0" --down >/dev/null
      exit 1
    fi
  done
  echo "cluster up: ${num_shards} shards on ports" \
       "${base_port}-$((base_port + num_shards - 1)), manifest ${manifest}"
  exit 0
fi

# Drill mode.
ensure_built bench_runner serve
"${build_dir}/bench/bench_runner" --cluster-only ${smoke} \
  --serve-binary="${build_dir}/examples/serve" --out="${out}" || exit 1

if command -v python3 >/dev/null 2>&1; then
  python3 - "${out}" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    ledger = json.load(f)
cluster = ledger["cluster"]
assert cluster["shards"] >= 2, "drill needs a real cluster"
assert cluster["steady"]["qps"] > 0, "no steady cluster throughput"
assert cluster["baseline_one_shard"]["qps"] > 0, "no 1-process baseline"
assert cluster["outage"]["error_fraction"] <= 0.2, \
    "outage error rate not bounded"
assert cluster["failover_latency_ms"] >= 0, "failover latency not measured"
assert cluster["failover_reply_degraded"], \
    "failover answer was not flagged DEGRADED"
assert cluster["recovery_ms"] >= 0, "victim never recovered"
assert cluster["post_recovery"]["errors"] == 0, "errors after recovery"
assert cluster["shards_healthy_at_end"] == cluster["shards"], \
    "cluster not whole at end of drill"
print(f"cluster drill OK: {sys.argv[1]}")
EOF
else
  for field in '"cluster"' '"failover_latency_ms"' '"recovery_ms"' \
               '"post_recovery"'; do
    if ! grep -q "${field}" "${out}"; then
      echo "cluster.sh: ledger ${out} is missing ${field}" >&2
      exit 1
    fi
  done
  echo "cluster drill OK (grep-validated): ${out}"
fi
