#!/usr/bin/env python3
"""Plain-python tests for scripts/bench_diff.py (no pytest dependency).

Covers the warn-only contract: regressions print ::warning:: annotations
but the exit code is always 0; missing/malformed ledgers degrade to a
warning; recall is only compared when both ledgers ran the same mode.

    python3 scripts/test_bench_diff.py
"""

import contextlib
import io
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def ledger(qps=50000.0, p99=300.0, smoke=True,
           recall=(0.5, 0.8, 0.9), schema="rtrec-bench/1",
           actions_per_sec=40000.0, queue_wait_p50=30.0,
           queue_wait_p95=80.0, with_ingest=True, with_cluster=True,
           cluster_qps=40000.0, failover_ms=10.0, recovery_ms=15.0,
           with_transport=True, v1_qps=60000.0, v2_qps=200000.0,
           shm_qps=400000.0, with_workload=True, fp16_bytes=80.0,
           stream_aps=150000.0, rss_peak_mb=2000.0, drift_tripped=True,
           fp16_delta=0.0, int8_delta=0.02, with_tracing=True,
           traced_qps=45000.0, adopted=500, slow_captured=300,
           propagation=True, export_valid=True, stitched=True):
    doc = {
        "schema": schema,
        "smoke": smoke,
        "serve": {"qps": qps, "client_latency": {"p99_us": p99}},
        "recall": {
            "recall_at_1": recall[0],
            "recall_at_5": recall[1],
            "recall_at_10": recall[2],
        },
    }
    if with_ingest:
        doc["ingest"] = {
            "actions_per_sec": actions_per_sec,
            "stages": {
                stage: {"queue_wait": {"p50_us": queue_wait_p50,
                                       "p95_us": queue_wait_p95}}
                for stage in bench_diff.STAGES
            },
        }
    if with_cluster:
        doc["cluster"] = {
            "steady": {"qps": cluster_qps},
            "failover_latency_ms": failover_ms,
            "recovery_ms": recovery_ms,
            "stitched_trace": {
                "found_on_fallback_shard": stitched,
                "failover_hop_recorded": stitched,
            },
        }
    if with_tracing:
        doc["tracing"] = {
            "propagation_negotiated": propagation,
            "qps_traced": traced_qps,
            "sampled": 1000,
            "adopted": adopted,
            "spans_recorded": 4000,
            "traces_finished": 1200,
            "slow_captured": slow_captured,
            "export": {"chrome_bytes": 65536, "valid": export_valid},
        }
    if with_transport:
        doc["transport"] = {
            "tcp_v1": {"qps": v1_qps},
            "tcp_v2_pipelined": {"qps": v2_qps},
            "tcp_v2_batched": {"qps": v2_qps * 1.5},
            "shm_v2_pipelined": {"qps": shm_qps},
            "shm_ping": {"qps": shm_qps * 3},
            "v2_pipelined_speedup_vs_v1": v2_qps / v1_qps,
            "v2_batched_speedup_vs_v1": v2_qps * 1.5 / v1_qps,
            "shm_speedup_vs_v1": shm_qps / v1_qps,
        }
    if with_workload:
        doc["workload"] = {
            "memory": {
                "float32": {"bytes_per_entry": 144.0},
                "float16": {"bytes_per_entry": fp16_bytes,
                            "reduction_vs_float32": 1 - fp16_bytes / 144.0},
                "int8": {"bytes_per_entry": 48.0},
                "fp16_reduction_ok": fp16_bytes <= 0.6 * 144.0,
            },
            "million_scale": {
                "actions_per_sec": stream_aps,
                "rss_peak_mb": rss_peak_mb,
                "drift": {"tripped": drift_tripped},
            },
            "recall_guardrail": {
                "fp16_rel_delta": fp16_delta,
                "int8_rel_delta": int8_delta,
            },
        }
    return doc


def run(baseline, fresh, extra_args=()):
    """Runs bench_diff.main on two ledger dicts (or raw strings / None
    for a missing file); returns (exit_code, captured_stdout)."""
    paths = []
    with tempfile.TemporaryDirectory() as tmp:
        for i, obj in enumerate((baseline, fresh)):
            path = os.path.join(tmp, f"ledger{i}.json")
            if obj is None:
                pass  # Missing file: never written.
            elif isinstance(obj, str):
                with open(path, "w") as f:
                    f.write(obj)
            else:
                with open(path, "w") as f:
                    json.dump(obj, f)
            paths.append(path)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = bench_diff.main(["bench_diff.py"] + paths +
                                   list(extra_args))
    return code, out.getvalue()


def check(name, condition, output):
    if not condition:
        print(f"FAIL: {name}\n--- captured output ---\n{output}")
        sys.exit(1)
    print(f"ok: {name}")


def main():
    # No regression: no warnings, exit 0.
    code, out = run(ledger(), ledger())
    check("clean diff exits 0", code == 0, out)
    check("clean diff prints no warnings", "::warning::" not in out, out)

    # QPS regression beyond the default 20% threshold is annotated.
    code, out = run(ledger(qps=50000), ledger(qps=30000))
    check("qps regression detected",
          "::warning::serve QPS regressed" in out, out)
    check("qps regression still exits 0 (warn-only)", code == 0, out)

    # p99 regression beyond the threshold is annotated.
    code, out = run(ledger(p99=300), ledger(p99=500))
    check("p99 regression detected",
          "::warning::serve p99 regressed" in out, out)
    check("p99 regression still exits 0", code == 0, out)

    # A custom threshold loosens the gate: 40% drop passes at 50%.
    code, out = run(ledger(qps=50000), ledger(qps=30000),
                    extra_args=["--threshold=0.5"])
    check("custom threshold suppresses the warning",
          "::warning::" not in out, out)
    check("custom threshold exits 0", code == 0, out)

    # Missing fresh ledger: warning, exit 0 (CI must not hard-fail here).
    code, out = run(ledger(), None)
    check("missing ledger warns", "::warning::bench_diff: cannot read"
          in out, out)
    check("missing ledger exits 0", code == 0, out)

    # Malformed JSON and wrong schema both degrade to warnings.
    code, out = run(ledger(), "{not json")
    check("malformed ledger warns", "::warning::" in out, out)
    check("malformed ledger exits 0", code == 0, out)
    code, out = run(ledger(), ledger(schema="rtrec-bench/999"))
    check("schema mismatch warns", "unexpected schema" in out, out)
    check("schema mismatch exits 0", code == 0, out)

    # Mode mismatch (smoke vs full): recall must NOT be compared, since
    # the workloads differ by design.
    code, out = run(ledger(smoke=False, recall=(0.5, 0.8, 0.9)),
                    ledger(smoke=True, recall=(0.1, 0.2, 0.3)))
    check("mode mismatch skips recall comparison",
          "drifted" not in out, out)
    check("mode mismatch exits 0", code == 0, out)

    # Same mode: recall drift is a behaviour change and is annotated.
    code, out = run(ledger(recall=(0.5, 0.8, 0.9)),
                    ledger(recall=(0.5, 0.8, 0.95)))
    check("recall drift detected in same mode",
          "::warning::recall_at_10 drifted" in out, out)
    check("recall drift still exits 0", code == 0, out)

    # Ingest throughput regression beyond the threshold is annotated.
    code, out = run(ledger(actions_per_sec=400000),
                    ledger(actions_per_sec=200000))
    check("ingest throughput regression detected",
          "::warning::ingest actions/sec regressed" in out, out)
    check("ingest regression still exits 0", code == 0, out)

    # Ingest improvement: a row is printed but nothing warns.
    code, out = run(ledger(actions_per_sec=40000),
                    ledger(actions_per_sec=400000))
    check("ingest improvement prints the row", "ingest a/s" in out, out)
    check("ingest improvement does not warn", "::warning::" not in out, out)

    # Queue-wait regression: must clear BOTH the relative threshold and
    # the absolute floor before warning.
    code, out = run(ledger(queue_wait_p50=500.0),
                    ledger(queue_wait_p50=2000.0))
    check("queue_wait regression detected",
          "queue_wait p50_us regressed" in out, out)
    check("queue_wait regression exits 0", code == 0, out)

    # Sub-floor jitter: 3µs -> 30µs is a 10x relative jump but below the
    # 50µs absolute floor — scheduler noise, not a warning.
    code, out = run(ledger(queue_wait_p50=3.0, queue_wait_p95=10.0),
                    ledger(queue_wait_p50=30.0, queue_wait_p95=55.0))
    check("sub-floor queue_wait jitter is silent",
          "::warning::" not in out, out)

    # Baseline that predates the ingest section (pre-PR6 ledger): the
    # ingest rows are skipped, serve rows still compared, no crash.
    code, out = run(ledger(with_ingest=False), ledger())
    check("missing ingest section is tolerated",
          "skipping ingest diff" in out, out)
    check("missing ingest section still diffs serve",
          "serve qps" in out, out)
    check("missing ingest section exits 0", code == 0, out)

    # Cluster steady-QPS regression beyond the threshold is annotated.
    code, out = run(ledger(cluster_qps=40000), ledger(cluster_qps=20000))
    check("cluster qps regression detected",
          "::warning::cluster steady QPS regressed" in out, out)
    check("cluster qps regression still exits 0", code == 0, out)

    # Failover latency: must clear both the relative threshold and the
    # 50ms absolute floor. 10ms -> 30ms is 3x but sub-floor — silent.
    code, out = run(ledger(failover_ms=10.0), ledger(failover_ms=30.0))
    check("sub-floor failover jitter is silent",
          "::warning::" not in out, out)
    code, out = run(ledger(failover_ms=40.0), ledger(failover_ms=200.0))
    check("failover latency regression detected",
          "::warning::cluster failover_latency_ms regressed" in out, out)
    check("failover regression still exits 0", code == 0, out)

    # Baseline that predates the cluster drill (pre-PR7 ledger): cluster
    # rows skipped, everything else still compared, no crash.
    code, out = run(ledger(with_cluster=False), ledger())
    check("missing cluster section is tolerated",
          "skipping cluster diff" in out, out)
    check("missing cluster section still diffs serve",
          "serve qps" in out, out)
    check("missing cluster section exits 0", code == 0, out)

    # Transport leg QPS regression beyond the threshold is annotated.
    code, out = run(ledger(shm_qps=400000), ledger(shm_qps=100000))
    check("transport leg qps regression detected",
          "::warning::transport shm_v2_pipelined QPS regressed" in out, out)
    check("transport leg regression still exits 0", code == 0, out)

    # Speedup-ratio collapse: absolute QPS may shift with hardware, but
    # the pipelined/lock-step ratio collapsing is always annotated.
    code, out = run(ledger(v1_qps=60000, v2_qps=240000),
                    ledger(v1_qps=60000, v2_qps=90000))
    check("speedup ratio collapse detected",
          "::warning::transport v2_pipelined_speedup_vs_v1 collapsed"
          in out, out)
    check("ratio collapse still exits 0", code == 0, out)

    # A ratio at or below 1.0 warns even when it cleared the relative
    # threshold against the baseline: pipelining must beat lock-step.
    code, out = run(ledger(v1_qps=60000, v2_qps=66000),
                    ledger(v1_qps=60000, v2_qps=57000))
    check("sub-1.0 speedup ratio warns",
          "no longer beats the v1 lock-step baseline" in out, out)
    check("sub-1.0 ratio still exits 0", code == 0, out)

    # Transport improvement: rows printed, nothing warns.
    code, out = run(ledger(v2_qps=200000), ledger(v2_qps=400000))
    check("transport improvement prints rows",
          "transport" in out and "tcp_v2_pipelined" in out, out)
    check("transport improvement does not warn",
          "::warning::" not in out, out)

    # Baseline that predates the transport phase (pre-PR8 ledger):
    # transport rows skipped, everything else still compared, no crash.
    code, out = run(ledger(with_transport=False), ledger())
    check("missing transport section is tolerated",
          "skipping transport diff" in out, out)
    check("missing transport section still diffs serve",
          "serve qps" in out, out)
    check("missing transport section exits 0", code == 0, out)

    # Workload: any bytes-per-entry change is annotated — packed layout
    # is deterministic, so a shift is a format change or a bug.
    code, out = run(ledger(fp16_bytes=80.0), ledger(fp16_bytes=96.0))
    check("bytes_per_entry change detected",
          "::warning::float16 bytes_per_entry changed" in out, out)
    check("bytes_per_entry change still exits 0", code == 0, out)

    # fp16 reduction falling below the 40% floor is annotated even when
    # the bytes warning already fired (96/144 = 33% reduction).
    code, out = run(ledger(fp16_bytes=96.0), ledger(fp16_bytes=96.0))
    check("fp16 reduction floor breach detected",
          "fp16 reduction fell below the 40% floor" in out, out)
    check("reduction floor breach still exits 0", code == 0, out)

    # Stream throughput regression beyond the threshold is annotated.
    code, out = run(ledger(stream_aps=200000), ledger(stream_aps=100000))
    check("workload stream regression detected",
          "::warning::workload stream throughput regressed" in out, out)
    check("workload stream regression still exits 0", code == 0, out)

    # RSS: must clear BOTH the relative threshold and the 64MB absolute
    # floor. 30MB -> 50MB is +67% but sub-floor — allocator noise.
    code, out = run(ledger(rss_peak_mb=30.0), ledger(rss_peak_mb=50.0))
    check("sub-floor RSS jitter is silent", "::warning::" not in out, out)
    code, out = run(ledger(rss_peak_mb=2000.0), ledger(rss_peak_mb=3000.0))
    check("RSS regression detected",
          "::warning::workload peak RSS regressed" in out, out)
    check("RSS regression still exits 0", code == 0, out)

    # The planted demographic drift going quiet means the watchdog (or
    # the scenario) broke — always annotated.
    code, out = run(ledger(drift_tripped=True), ledger(drift_tripped=False))
    check("drift no longer tripping detected",
          "no longer trips the quality watchdog" in out, out)
    check("drift regression still exits 0", code == 0, out)

    # Same-mode quantized recall deltas are deterministic: drift warns.
    code, out = run(ledger(int8_delta=0.02), ledger(int8_delta=0.05))
    check("int8 recall delta drift detected",
          "::warning::int8_rel_delta drifted" in out, out)
    check("int8 delta drift still exits 0", code == 0, out)

    # Mode mismatch: the quantized-recall rows are skipped (different
    # worlds), but the memory/layout rows still compare.
    code, out = run(ledger(smoke=False, int8_delta=0.02),
                    ledger(smoke=True, int8_delta=0.05))
    check("mode mismatch skips quantized recall deltas",
          "int8_rel_delta drifted" not in out, out)

    # A fresh fp16 delta at or over 1% breaches the guardrail even when
    # it matched the (also-broken) baseline.
    code, out = run(ledger(fp16_delta=0.02), ledger(fp16_delta=0.02))
    check("fp16 guardrail breach detected",
          "breaches the 1% guardrail" in out, out)
    check("fp16 guardrail breach still exits 0", code == 0, out)

    # Baseline that predates the workload leg (pre-PR9 ledger): workload
    # rows skipped, everything else still compared, no crash.
    code, out = run(ledger(with_workload=False), ledger())
    check("missing workload section is tolerated",
          "skipping workload diff" in out, out)
    check("missing workload section still diffs serve",
          "serve qps" in out, out)
    check("missing workload section exits 0", code == 0, out)

    # Traced QPS regression beyond the threshold is annotated.
    code, out = run(ledger(traced_qps=45000), ledger(traced_qps=20000))
    check("traced qps regression detected",
          "::warning::traced QPS regressed" in out, out)
    check("traced qps regression still exits 0", code == 0, out)

    # Structural tracing facts zeroing out always warns — adoption and
    # tail capture are counts a healthy run never records as zero.
    code, out = run(ledger(), ledger(adopted=0))
    check("zero adoption detected",
          "::warning::tracing adopted is zero" in out, out)
    code, out = run(ledger(), ledger(slow_captured=0))
    check("zero tail capture detected",
          "::warning::tracing slow_captured is zero" in out, out)
    code, out = run(ledger(), ledger(propagation=False))
    check("lost propagation negotiation detected",
          "no longer negotiated" in out, out)
    code, out = run(ledger(), ledger(export_valid=False))
    check("invalid trace export detected",
          "no longer valid Chrome trace-event JSON" in out, out)
    check("invalid export still exits 0", code == 0, out)

    # Baseline that predates the tracing phase (pre-PR10 ledger): the
    # QPS row is skipped but the structural facts still check.
    code, out = run(ledger(with_tracing=False), ledger())
    check("missing tracing baseline still prints facts",
          "tracing adopted" in out, out)
    check("missing tracing baseline does not warn",
          "::warning::" not in out, out)
    code, out = run(ledger(), ledger(with_tracing=False))
    check("missing fresh tracing section is tolerated",
          "skipping tracing diff" in out, out)
    check("missing fresh tracing section exits 0", code == 0, out)

    # The stitched multi-shard trace disappearing from the cluster drill
    # is always annotated.
    code, out = run(ledger(), ledger(stitched=False))
    check("lost stitched trace detected",
          "no longer yields a stitched multi-shard trace" in out, out)
    check("lost stitched trace still exits 0", code == 0, out)

    # Bad usage (wrong arg count) keeps the warn-only contract.
    code_out = io.StringIO()
    with contextlib.redirect_stdout(code_out):
        code = bench_diff.main(["bench_diff.py", "only-one.json"])
    check("bad usage exits 0", code == 0, code_out.getvalue())
    check("bad usage prints usage", "usage:" in code_out.getvalue(),
          code_out.getvalue())

    print("all bench_diff tests passed")


if __name__ == "__main__":
    main()
