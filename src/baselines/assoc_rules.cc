#include "baselines/assoc_rules.h"

#include <algorithm>

namespace rtrec {

namespace {

std::uint64_t BasketKey(UserId user, Timestamp time) {
  const std::uint64_t day =
      static_cast<std::uint64_t>(time / kMillisPerDay);
  return MixHash64(user) ^ day;
}

}  // namespace

AssociationRuleRecommender::AssociationRuleRecommender()
    : AssociationRuleRecommender(Options{}) {}

AssociationRuleRecommender::AssociationRuleRecommender(Options options)
    : options_(options) {}

void AssociationRuleRecommender::Observe(const UserAction& action) {
  const double confidence = ActionConfidence(action, options_.feedback);
  if (confidence < options_.min_action_confidence) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& basket = baskets_[BasketKey(action.user, action.time)];
  if (basket.size() < options_.max_basket) basket.insert(action.video);

  auto& recent = recent_[action.user];
  if (std::find(recent.begin(), recent.end(), action.video) == recent.end()) {
    recent.push_back(action.video);
    if (recent.size() > 16) recent.erase(recent.begin());
  }
}

void AssociationRuleRecommender::RetrainBatch(Timestamp now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);

  std::unordered_map<VideoId, std::size_t> item_count;
  std::unordered_map<VideoPair, std::size_t, VideoPairHash> pair_count;
  std::size_t num_baskets = 0;
  for (const auto& [key, basket] : baskets_) {
    if (basket.empty()) continue;
    ++num_baskets;
    std::vector<VideoId> items(basket.begin(), basket.end());
    // Deterministic pair enumeration regardless of set iteration order.
    std::sort(items.begin(), items.end());
    for (std::size_t i = 0; i < items.size(); ++i) {
      ++item_count[items[i]];
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        ++pair_count[VideoPair(items[i], items[j])];
      }
    }
  }

  rules_.clear();
  if (num_baskets == 0) return;
  for (const auto& [pair, count] : pair_count) {
    if (count < options_.min_support_count) continue;
    const double support =
        static_cast<double>(count) / static_cast<double>(num_baskets);
    // Rules in both directions, each with its own confidence.
    const double conf_ab = static_cast<double>(count) /
                           static_cast<double>(item_count[pair.first]);
    const double conf_ba = static_cast<double>(count) /
                           static_cast<double>(item_count[pair.second]);
    const double p_first = static_cast<double>(item_count[pair.first]) /
                           static_cast<double>(num_baskets);
    const double p_second = static_cast<double>(item_count[pair.second]) /
                            static_cast<double>(num_baskets);
    if (conf_ab >= options_.min_confidence) {
      rules_[pair.first].push_back(
          Rule{pair.second, conf_ab, support, conf_ab / p_second});
    }
    if (conf_ba >= options_.min_confidence) {
      rules_[pair.second].push_back(
          Rule{pair.first, conf_ba, support, conf_ba / p_first});
    }
  }
  const bool use_lift = options_.use_lift;
  for (auto& [antecedent, rule_list] : rules_) {
    std::sort(rule_list.begin(), rule_list.end(),
              [use_lift](const Rule& a, const Rule& b) {
                const double sa = use_lift ? a.lift : a.confidence;
                const double sb = use_lift ? b.lift : b.confidence;
                if (sa != sb) return sa > sb;
                return a.consequent < b.consequent;
              });
    if (rule_list.size() > options_.max_rules_per_video) {
      rule_list.resize(options_.max_rules_per_video);
    }
  }
}

StatusOr<std::vector<ScoredVideo>> AssociationRuleRecommender::Recommend(
    const RecRequest& request) {
  const std::size_t n = request.top_n > 0 ? request.top_n : options_.top_n;

  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VideoId> seeds = request.seed_videos;
  std::unordered_set<VideoId> owned;
  if (auto it = recent_.find(request.user); it != recent_.end()) {
    owned.insert(it->second.begin(), it->second.end());
    if (seeds.empty()) seeds = it->second;
  }
  if (seeds.empty()) return std::vector<ScoredVideo>{};

  std::unordered_map<VideoId, double> scores;
  for (VideoId seed : seeds) {
    auto it = rules_.find(seed);
    if (it == rules_.end()) continue;
    for (const Rule& rule : it->second) {
      if (owned.contains(rule.consequent)) continue;
      scores[rule.consequent] +=
          options_.use_lift ? rule.lift : rule.confidence;
    }
  }

  std::vector<ScoredVideo> out;
  out.reserve(scores.size());
  for (const auto& [video, score] : scores) {
    out.push_back(ScoredVideo{video, score});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredVideo& a, const ScoredVideo& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.video < b.video;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::size_t AssociationRuleRecommender::NumAntecedents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

bool AssociationRuleRecommender::IsConsequent(VideoId video) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [antecedent, rule_list] : rules_) {
    for (const Rule& rule : rule_list) {
      if (rule.consequent == video) return true;
    }
  }
  return false;
}

}  // namespace rtrec
