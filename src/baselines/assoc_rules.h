#ifndef RTREC_BASELINES_ASSOC_RULES_H_
#define RTREC_BASELINES_ASSOC_RULES_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/implicit_feedback.h"
#include "core/recommender.h"

namespace rtrec {

/// The "AR method" of Section 6.2: an association-rule recommender
/// trained in batch mode once per (simulated) day. Sessions are
/// user-day baskets of engaged videos; pairwise rules i → j are scored
/// by confidence = count(i,j) / count(i), thresholded on support.
///
/// Observe() only buffers actions; RetrainBatch() mines the rules —
/// exactly the offline cadence the paper contrasts with rMF's real-time
/// updates. Thread-safe.
class AssociationRuleRecommender : public Recommender {
 public:
  struct Options {
    std::size_t top_n = 10;
    /// Minimum co-occurrence count for a rule to be kept.
    std::size_t min_support_count = 2;
    /// Minimum rule confidence.
    double min_confidence = 0.05;
    /// Per-antecedent retained consequents.
    std::size_t max_rules_per_video = 50;
    /// Score rules by lift = confidence / P(consequent) instead of raw
    /// confidence. Raw confidence is popularity-biased (everything
    /// implies the head videos); lift measures the actual association.
    bool use_lift = true;
    /// Per-session basket size cap (bounds the quadratic pair blowup of
    /// heavy users).
    std::size_t max_basket = 32;
    /// Actions below this confidence weight do not enter baskets.
    double min_action_confidence = 1.0;
    /// Maps actions to confidence weights.
    FeedbackConfig feedback;
  };

  /// Constructs with default options.
  AssociationRuleRecommender();
  explicit AssociationRuleRecommender(Options options);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Buffers the action into the user's current-day basket.
  void Observe(const UserAction& action) override;

  /// Mines rules from all complete baskets observed so far. Typically
  /// called once per day (the paper: "trained in batch mode for every
  /// day").
  void RetrainBatch(Timestamp now) override;

  std::string name() const override { return "AR"; }

  /// Number of antecedents with at least one rule (post-training).
  std::size_t NumAntecedents() const;

  /// True iff `video` can currently be recommended, i.e. appears as the
  /// consequent of at least one mined rule. Used by the freshness
  /// ablation to measure batch propagation delay.
  bool IsConsequent(VideoId video) const;

 private:
  struct Rule {
    VideoId consequent = 0;
    double confidence = 0.0;
    double support = 0.0;
    /// confidence / P(consequent); > 1 means a real association.
    double lift = 0.0;
  };

  Options options_;

  mutable std::mutex mu_;
  // (user, day) -> basket of engaged videos. Day boundaries come from the
  // action timestamps.
  std::unordered_map<std::uint64_t, std::unordered_set<VideoId>> baskets_;
  // Per-user recent engaged videos (serving-side seeds for users with no
  // request seeds).
  std::unordered_map<UserId, std::vector<VideoId>> recent_;
  // Mined model: antecedent -> rules sorted by descending confidence.
  std::unordered_map<VideoId, std::vector<Rule>> rules_;
};

}  // namespace rtrec

#endif  // RTREC_BASELINES_ASSOC_RULES_H_
