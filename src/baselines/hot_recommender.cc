#include "baselines/hot_recommender.h"

namespace rtrec {

namespace {

HotVideoTracker::Options TrackerOptions(const HotRecommender::Options& o) {
  HotVideoTracker::Options out;
  out.top_k = o.top_k;
  out.half_life_millis = o.half_life_millis;
  return out;
}

}  // namespace

HotRecommender::HotRecommender() : HotRecommender(Options{}) {}

HotRecommender::HotRecommender(Options options)
    : options_(options), tracker_(TrackerOptions(options)) {}

StatusOr<std::vector<ScoredVideo>> HotRecommender::Recommend(
    const RecRequest& request) {
  const std::size_t n = request.top_n > 0 ? request.top_n : options_.top_n;
  return tracker_.Hottest(kGlobalGroup, n, request.now);
}

void HotRecommender::Observe(const UserAction& action) {
  if (action.type == ActionType::kImpress) return;
  tracker_.Record(kGlobalGroup, action.video, 1.0, action.time);
}

}  // namespace rtrec
