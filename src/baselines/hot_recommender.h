#ifndef RTREC_BASELINES_HOT_RECOMMENDER_H_
#define RTREC_BASELINES_HOT_RECOMMENDER_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "demographic/hot_videos.h"

namespace rtrec {

/// The "Hot method" of Section 6.2: recommends the currently most popular
/// videos to everyone, computed in real time. A simple but strong
/// baseline — it wins on brand-new users and loses personalization.
class HotRecommender : public Recommender {
 public:
  struct Options {
    std::size_t top_n = 10;
    /// Popularity half-life; short half-lives follow trends faster.
    double half_life_millis = 1.0 * kMillisPerDay;
    /// Tracked list length (>= top_n).
    std::size_t top_k = 200;
  };

  /// Constructs with default options.
  HotRecommender();
  explicit HotRecommender(Options options);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Real-time popularity update; impressions are ignored.
  void Observe(const UserAction& action) override;

  std::string name() const override { return "Hot"; }

 private:
  Options options_;
  HotVideoTracker tracker_;
};

}  // namespace rtrec

#endif  // RTREC_BASELINES_HOT_RECOMMENDER_H_
