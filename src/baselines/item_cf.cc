#include "baselines/item_cf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rtrec {

namespace {

HistoryStore::Options HistoryOptions(const ItemCfRecommender::Options& o) {
  HistoryStore::Options out;
  out.max_entries_per_user = o.history_per_user;
  return out;
}

}  // namespace

ItemCfRecommender::ItemCfRecommender() : ItemCfRecommender(Options{}) {}

ItemCfRecommender::ItemCfRecommender(Options options)
    : options_(options), history_(HistoryOptions(options)) {}

void ItemCfRecommender::BumpPair(VideoId a, VideoId b) {
  const VideoPair pair(a, b);
  const double count = (pair_count_[pair] += 1.0);
  auto neighbor_list_of = [this](VideoId v) -> TopK<VideoId>& {
    auto it = neighbors_.find(v);
    if (it == neighbors_.end()) {
      it = neighbors_.emplace(v, TopK<VideoId>(options_.top_k)).first;
    }
    return it->second;
  };
  neighbor_list_of(a).Upsert(b, count);
  neighbor_list_of(b).Upsert(a, count);
}

void ItemCfRecommender::Observe(const UserAction& action) {
  const double confidence = ActionConfidence(action, options_.feedback);
  if (confidence < options_.min_action_confidence) return;

  const std::vector<HistoryEntry> partners =
      history_.GetRecent(action.user, options_.max_pairs_per_action);
  history_.Append(action.user,
                  HistoryEntry{action.video, confidence, action.time});

  std::lock_guard<std::mutex> lock(mu_);
  item_count_[action.video] += 1.0;
  for (const HistoryEntry& partner : partners) {
    if (partner.video == action.video) continue;
    BumpPair(action.video, partner.video);
  }
}

double ItemCfRecommender::Similarity(VideoId a, VideoId b) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto pair_it = pair_count_.find(VideoPair(a, b));
  if (pair_it == pair_count_.end()) return 0.0;
  auto ca = item_count_.find(a);
  auto cb = item_count_.find(b);
  if (ca == item_count_.end() || cb == item_count_.end()) return 0.0;
  const double denom = std::sqrt(ca->second * cb->second);
  return denom <= 0.0 ? 0.0 : pair_it->second / denom;
}

StatusOr<std::vector<ScoredVideo>> ItemCfRecommender::Recommend(
    const RecRequest& request) {
  const std::size_t n = request.top_n > 0 ? request.top_n : options_.top_n;

  std::vector<VideoId> seeds = request.seed_videos;
  std::unordered_set<VideoId> owned;
  for (const HistoryEntry& e : history_.Get(request.user)) {
    owned.insert(e.video);
  }
  if (seeds.empty()) {
    seeds.assign(owned.begin(), owned.end());
    std::sort(seeds.begin(), seeds.end());  // Deterministic order.
  }
  if (seeds.empty()) return std::vector<ScoredVideo>{};

  std::unordered_map<VideoId, double> scores;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (VideoId seed : seeds) {
      auto it = neighbors_.find(seed);
      if (it == neighbors_.end()) continue;
      auto seed_count = item_count_.find(seed);
      const double c_seed =
          seed_count == item_count_.end() ? 0.0 : seed_count->second;
      if (c_seed <= 0.0) continue;
      for (const auto& entry : it->second.entries()) {
        if (owned.contains(entry.key)) continue;
        auto other_count = item_count_.find(entry.key);
        const double c_other =
            other_count == item_count_.end() ? 0.0 : other_count->second;
        if (c_other <= 0.0) continue;
        scores[entry.key] += entry.score / std::sqrt(c_seed * c_other);
      }
    }
  }

  std::vector<ScoredVideo> out;
  out.reserve(scores.size());
  for (const auto& [video, score] : scores) {
    out.push_back(ScoredVideo{video, score});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredVideo& a, const ScoredVideo& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.video < b.video;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace rtrec
