#ifndef RTREC_BASELINES_ITEM_CF_H_
#define RTREC_BASELINES_ITEM_CF_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/top_k.h"
#include "core/implicit_feedback.h"
#include "core/recommender.h"
#include "kvstore/history_store.h"

namespace rtrec {

/// Incremental item-based collaborative filtering in the style of the
/// practical production CF the paper cites as prior work ([17], TencentRec):
/// co-occurrence counts between a new action's video and the user's recent
/// history are updated online, and item-item similarity is the cosine-
/// normalized co-count  c_ij / sqrt(c_i · c_j).
///
/// Included both as an additional baseline and as the neighbourhood-CF
/// reference the paper argues model-based CF beats.
class ItemCfRecommender : public Recommender {
 public:
  struct Options {
    std::size_t top_n = 10;
    /// Neighbour list length per video.
    std::size_t top_k = 50;
    /// History entries paired with each new action.
    std::size_t max_pairs_per_action = 16;
    /// Actions below this confidence are ignored.
    double min_action_confidence = 1.0;
    /// Per-user history retention.
    std::size_t history_per_user = 64;
    FeedbackConfig feedback;
  };

  /// Constructs with default options.
  ItemCfRecommender();
  explicit ItemCfRecommender(Options options);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Real-time co-occurrence update.
  void Observe(const UserAction& action) override;

  std::string name() const override { return "ItemCF"; }

  /// Cosine-normalized similarity of (a, b) from current counts.
  double Similarity(VideoId a, VideoId b) const;

 private:
  void BumpPair(VideoId a, VideoId b);

  Options options_;
  HistoryStore history_;

  mutable std::mutex mu_;
  std::unordered_map<VideoId, double> item_count_;
  std::unordered_map<VideoPair, double, VideoPairHash> pair_count_;
  // Per-video co-occurrence neighbour lists (by raw co-count; similarity
  // normalization happens at serving time).
  std::unordered_map<VideoId, TopK<VideoId>> neighbors_;
};

}  // namespace rtrec

#endif  // RTREC_BASELINES_ITEM_CF_H_
