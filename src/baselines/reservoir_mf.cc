#include "baselines/reservoir_mf.h"

#include <cassert>

namespace rtrec {

ReservoirMfRecommender::ReservoirMfRecommender(VideoTypeResolver type_resolver,
                                               Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  assert(options_.reservoir_size > 0);
  engine_ = std::make_unique<RecEngine>(std::move(type_resolver),
                                        options_.engine);
  reservoir_.reserve(options_.reservoir_size);
}

void ReservoirMfRecommender::Observe(const UserAction& action) {
  // The current action takes the normal real-time path (model + tables +
  // history), exactly like rMF.
  engine_->Observe(action);

  std::vector<UserAction> replays;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Vitter's algorithm R: element n replaces a uniform slot with
    // probability R/n, yielding a uniform sample of the whole stream.
    ++seen_;
    if (reservoir_.size() < options_.reservoir_size) {
      reservoir_.push_back(action);
    } else {
      const std::uint64_t slot = rng_.NextUint64(seen_);
      if (slot < options_.reservoir_size) {
        reservoir_[static_cast<std::size_t>(slot)] = action;
      }
    }
    // Draw the replay mini-batch (with replacement, as in the cited
    // stream-ranking work).
    replays.reserve(options_.replay_per_action);
    for (std::size_t i = 0;
         i < options_.replay_per_action && !reservoir_.empty(); ++i) {
      replays.push_back(
          reservoir_[static_cast<std::size_t>(rng_.NextUint64(
              reservoir_.size()))]);
    }
  }
  // Replay outside the lock: only the MF model is retrained on replays
  // (histories and similarity tables reflect the true stream order).
  for (const UserAction& replay : replays) {
    engine_->model().Update(replay);
  }
}

StatusOr<std::vector<ScoredVideo>> ReservoirMfRecommender::Recommend(
    const RecRequest& request) {
  return engine_->Recommend(request);
}

std::size_t ReservoirMfRecommender::ReservoirSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reservoir_.size();
}

std::uint64_t ReservoirMfRecommender::ActionsSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

}  // namespace rtrec
