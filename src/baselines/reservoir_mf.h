#ifndef RTREC_BASELINES_RESERVOIR_MF_H_
#define RTREC_BASELINES_RESERVOIR_MF_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"

namespace rtrec {

/// Reservoir-based online matrix factorization — the related-work
/// alternative (Diaz-Aviles et al. [12, 13]) the paper contrasts with
/// its single-pass strategy: a fixed-size uniform sample of the action
/// history is kept in a reservoir, and every incoming action triggers a
/// mini-batch of additional SGD steps replayed from the reservoir, which
/// fights the short-term-memory problem of pure online updates at the
/// cost of extra computation and memory per action ("not appropriate for
/// large streaming data set", Section 1).
///
/// Serving reuses the standard rMF path (histories, similar-video
/// tables, Eq. 2 ranking), so the comparison isolates the training
/// strategy. Thread-safe.
class ReservoirMfRecommender : public Recommender {
 public:
  struct Options {
    /// Reservoir capacity R (uniform sample over the whole stream via
    /// standard reservoir sampling).
    std::size_t reservoir_size = 4096;
    /// Replayed SGD steps per incoming action (0 = degenerates to the
    /// paper's single-pass strategy).
    std::size_t replay_per_action = 4;
    /// The underlying engine configuration (model, similarity, serving).
    RecEngine::Options engine;
    /// Seed of the sampling stream.
    std::uint64_t seed = 31;
  };

  ReservoirMfRecommender(VideoTypeResolver type_resolver, Options options);

  /// Single-pass update plus `replay_per_action` reservoir replays.
  void Observe(const UserAction& action) override;

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  std::string name() const override { return "ReservoirMF"; }

  /// Current reservoir occupancy (min(actions seen, capacity)).
  std::size_t ReservoirSize() const;

  /// Total actions offered to the reservoir.
  std::uint64_t ActionsSeen() const;

  RecEngine& engine() { return *engine_; }

 private:
  Options options_;
  std::unique_ptr<RecEngine> engine_;

  mutable std::mutex mu_;  // Guards the reservoir and rng.
  std::vector<UserAction> reservoir_;
  std::uint64_t seen_ = 0;
  Rng rng_;
};

}  // namespace rtrec

#endif  // RTREC_BASELINES_RESERVOIR_MF_H_
