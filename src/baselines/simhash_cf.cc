#include "baselines/simhash_cf.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace rtrec {

std::uint64_t ComputeSimHash(
    const std::vector<std::pair<VideoId, double>>& weighted_videos) {
  double acc[64] = {0.0};
  for (const auto& [video, weight] : weighted_videos) {
    const std::uint64_t h = MixHash64(video + 0x5153494D48415348ull);
    for (int b = 0; b < 64; ++b) {
      acc[b] += ((h >> b) & 1u) ? weight : -weight;
    }
  }
  std::uint64_t signature = 0;
  for (int b = 0; b < 64; ++b) {
    if (acc[b] > 0) signature |= (1ull << b);
  }
  return signature;
}

double HammingSimilarity(std::uint64_t a, std::uint64_t b) {
  return 1.0 - static_cast<double>(std::popcount(a ^ b)) / 64.0;
}

double CosineFromSimHash(std::uint64_t a, std::uint64_t b) {
  return std::cos(M_PI * (1.0 - HammingSimilarity(a, b)));
}

SimHashCfRecommender::SimHashCfRecommender()
    : SimHashCfRecommender(Options{}) {}

SimHashCfRecommender::SimHashCfRecommender(Options options)
    : options_(options) {
  assert(options_.num_bands > 0 && 64 % options_.num_bands == 0);
  buckets_.resize(options_.num_bands);
}

std::uint64_t SimHashCfRecommender::BandKey(std::uint64_t signature,
                                            std::size_t band) const {
  const std::size_t band_bits = 64 / options_.num_bands;
  const std::uint64_t mask =
      band_bits == 64 ? ~0ull : ((1ull << band_bits) - 1);
  return (signature >> (band * band_bits)) & mask;
}

void SimHashCfRecommender::Observe(const UserAction& action) {
  const double confidence = ActionConfidence(action, options_.feedback);
  if (confidence < options_.min_action_confidence) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& profile = profiles_[action.user];
  auto it = profile.find(action.video);
  if (it != profile.end()) {
    it->second = std::max(it->second, confidence);
  } else if (profile.size() < options_.max_profile) {
    profile.emplace(action.video, confidence);
  }
}

void SimHashCfRecommender::RetrainBatch(Timestamp now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  signatures_.clear();
  idf_.clear();
  for (auto& bucket : buckets_) bucket.clear();

  if (options_.idf_weighting) {
    std::unordered_map<VideoId, std::size_t> watchers;
    for (const auto& [user, profile] : profiles_) {
      for (const auto& [video, weight] : profile) ++watchers[video];
    }
    for (const auto& [video, count] : watchers) {
      idf_[video] = 1.0 / std::log2(2.0 + static_cast<double>(count));
    }
  }

  std::vector<std::pair<VideoId, double>> weighted;
  for (const auto& [user, profile] : profiles_) {
    weighted.assign(profile.begin(), profile.end());
    if (options_.idf_weighting) {
      for (auto& [video, weight] : weighted) weight *= idf_[video];
    }
    const std::uint64_t signature = ComputeSimHash(weighted);
    signatures_[user] = signature;
    for (std::size_t band = 0; band < options_.num_bands; ++band) {
      buckets_[band][BandKey(signature, band)].push_back(user);
    }
  }
}

StatusOr<std::vector<ScoredVideo>> SimHashCfRecommender::Recommend(
    const RecRequest& request) {
  const std::size_t n = request.top_n > 0 ? request.top_n : options_.top_n;

  std::lock_guard<std::mutex> lock(mu_);
  auto sig_it = signatures_.find(request.user);
  if (sig_it == signatures_.end()) {
    return std::vector<ScoredVideo>{};  // Untrained / unseen user.
  }
  const std::uint64_t signature = sig_it->second;

  // LSH candidate lookup: users sharing at least one band value.
  std::unordered_set<UserId> candidates;
  for (std::size_t band = 0; band < options_.num_bands; ++band) {
    auto it = buckets_[band].find(BandKey(signature, band));
    if (it == buckets_[band].end()) continue;
    for (UserId u : it->second) {
      if (u != request.user) candidates.insert(u);
    }
  }
  if (candidates.empty()) return std::vector<ScoredVideo>{};

  // Rank neighbours by exact Hamming similarity, keep the closest.
  std::vector<std::pair<UserId, double>> neighbors;
  neighbors.reserve(candidates.size());
  for (UserId u : candidates) {
    neighbors.emplace_back(u, HammingSimilarity(signature, signatures_[u]));
  }
  std::sort(neighbors.begin(), neighbors.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (neighbors.size() > options_.max_neighbors) {
    neighbors.resize(options_.max_neighbors);
  }

  const auto& own_profile = profiles_[request.user];
  std::unordered_map<VideoId, double> scores;
  for (const auto& [neighbor, sim] : neighbors) {
    // Estimated profile cosine; uncorrelated neighbours contribute ~0.
    const double weight_base =
        std::max(0.0, CosineFromSimHash(signature, signatures_[neighbor]));
    if (weight_base <= 0.0) continue;
    auto profile_it = profiles_.find(neighbor);
    if (profile_it == profiles_.end()) continue;
    for (const auto& [video, weight] : profile_it->second) {
      if (own_profile.contains(video)) continue;
      double idf = 1.0;
      if (options_.idf_weighting) {
        auto idf_it = idf_.find(video);
        if (idf_it != idf_.end()) idf = idf_it->second;
      }
      (void)sim;
      scores[video] += weight_base * weight * idf;
    }
  }

  std::vector<ScoredVideo> out;
  out.reserve(scores.size());
  for (const auto& [video, score] : scores) {
    out.push_back(ScoredVideo{video, score});
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredVideo& a, const ScoredVideo& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.video < b.video;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

std::uint64_t SimHashCfRecommender::GetSignature(UserId user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = signatures_.find(user);
  return it == signatures_.end() ? 0 : it->second;
}

}  // namespace rtrec
