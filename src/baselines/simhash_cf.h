#ifndef RTREC_BASELINES_SIMHASH_CF_H_
#define RTREC_BASELINES_SIMHASH_CF_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/implicit_feedback.h"
#include "core/recommender.h"

namespace rtrec {

/// 64-bit SimHash of a weighted video set: each video hashes to 64 random
/// bits; its weight is added to (bit set) or subtracted from (bit clear)
/// a per-bit accumulator; the sign of each accumulator yields the
/// signature bit. Users with similar watch profiles get signatures at a
/// small Hamming distance.
std::uint64_t ComputeSimHash(
    const std::vector<std::pair<VideoId, double>>& weighted_videos);

/// Hamming similarity in [0, 1]: 1 − popcount(a ⊕ b)/64.
double HammingSimilarity(std::uint64_t a, std::uint64_t b);

/// SimHash cosine estimate: each agreeing bit is evidence the profile
/// angle θ is small, P(bit equal) = 1 − θ/π, so cos θ ≈ cos(π(1 − sim)).
/// Uncorrelated profiles (sim ≈ 0.5) estimate ≈ 0, which is what makes
/// this the right neighbour weight (raw Hamming similarity of random
/// pairs is 0.5, not 0).
double CosineFromSimHash(std::uint64_t a, std::uint64_t b);

/// The "SimHash method" of Section 6.2: user-based collaborative
/// filtering accelerated by SimHash signatures [Charikar'02] with banded
/// LSH lookup, retrained at regular intervals (offline baseline).
///
/// Serving: candidate neighbours are users sharing at least one signature
/// band; the request user's score for video v is the sum over neighbours
/// who engaged v of HammingSimilarity(user, neighbour) · weight.
class SimHashCfRecommender : public Recommender {
 public:
  struct Options {
    std::size_t top_n = 10;
    /// LSH bands (bands × band_bits must equal 64).
    std::size_t num_bands = 8;
    /// Neighbours actually scored per request.
    std::size_t max_neighbors = 32;
    /// Per-user profile size cap.
    std::size_t max_profile = 64;
    /// Actions below this confidence do not enter profiles.
    double min_action_confidence = 1.0;
    /// Down-weight head videos in signatures and scores by inverse
    /// document frequency (1/log2(2 + watchers)). Useful when neighbour
    /// scores use raw Hamming similarity; with the default cosine
    /// weighting it double-penalizes the overlap that makes neighbours
    /// findable, so it is off by default.
    bool idf_weighting = false;
    FeedbackConfig feedback;
  };

  /// Constructs with default options.
  SimHashCfRecommender();
  explicit SimHashCfRecommender(Options options);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Buffers the action into the user's profile (no signature rebuild).
  void Observe(const UserAction& action) override;

  /// Rebuilds all signatures and LSH buckets (the periodic offline
  /// training the paper contrasts with rMF).
  void RetrainBatch(Timestamp now) override;

  std::string name() const override { return "SimHash"; }

  /// Signature of `user` from the last retrain, or 0.
  std::uint64_t GetSignature(UserId user) const;

 private:
  std::uint64_t BandKey(std::uint64_t signature, std::size_t band) const;

  Options options_;

  mutable std::mutex mu_;
  // Accumulated profiles: user -> (video -> max confidence).
  std::unordered_map<UserId, std::unordered_map<VideoId, double>> profiles_;
  // Built at retrain:
  std::unordered_map<UserId, std::uint64_t> signatures_;
  std::unordered_map<VideoId, double> idf_;
  // band index -> band value -> users.
  std::vector<std::unordered_map<std::uint64_t, std::vector<UserId>>>
      buckets_;
};

}  // namespace rtrec

#endif  // RTREC_BASELINES_SIMHASH_CF_H_
