#include "cluster/cluster_client.h"

#include <chrono>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "common/trace.h"

namespace rtrec {
namespace {

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// First sample of `name` in Prometheus text ("name value"); -1 if absent.
double ScrapeValue(const std::string& text, const std::string& name) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, name.size(), name) == 0 &&
        line.size() > name.size() && line[name.size()] == ' ') {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  return -1.0;
}

}  // namespace

RecClient::Options ClusterClient::FastFailoverClientOptions() {
  RecClient::Options options;
  options.connect_timeout_ms = 250;
  options.request_timeout_ms = 1'000;
  options.max_retries = 1;
  options.retry_backoff_initial_ms = 5;
  options.retry_backoff_max_ms = 50;
  options.total_deadline_ms = 1'500;
  return options;
}

ClusterClient::ClusterClient(Options options)
    : options_(std::move(options)), ring_(options_.manifest.Ring(options_.ring)) {
  if (options_.metrics != nullptr) {
    router_requests_ = options_.metrics->GetCounter("cluster.router.requests");
    router_failovers_ =
        options_.metrics->GetCounter("cluster.router.failovers");
    router_degraded_ =
        options_.metrics->GetCounter("cluster.router.degraded_responses");
    router_errors_ = options_.metrics->GetCounter("cluster.router.errors");
    breaker_trips_ =
        options_.metrics->GetCounter("cluster.router.breaker_trips");
    probe_success_ =
        options_.metrics->GetCounter("cluster.router.probe_success");
    probe_failure_ =
        options_.metrics->GetCounter("cluster.router.probe_failure");
  }
  shards_.reserve(options_.manifest.shards.size());
  for (const ShardAddress& address : options_.manifest.shards) {
    auto shard = std::make_unique<Shard>();
    shard->address = address;
    RecClient::Options client_options = options_.client;
    client_options.host = address.host;
    client_options.port = address.port;
    client_options.metrics = options_.metrics;
    shard->client = std::make_unique<RecClient>(std::move(client_options));
    if (options_.metrics != nullptr) {
      const std::string prefix =
          StringPrintf("cluster.shard.%u.", static_cast<unsigned>(address.shard));
      shard->requests = options_.metrics->GetCounter(prefix + "requests");
      shard->failures = options_.metrics->GetCounter(prefix + "failures");
    }
    shards_.push_back(std::move(shard));
  }
}

ClusterClient::~ClusterClient() = default;

ShardId ClusterClient::OwnerOf(UserId user) const {
  StatusOr<ShardId> owner = ring_.OwnerOfUser(user);
  return owner.ok() ? *owner : 0;
}

bool ClusterClient::ProbeAndSettle(Shard& shard) {
  const bool healthy = shard.client->Healthy(options_.probe_timeout_ms);
  if (healthy) {
    shard.consecutive_failures.store(0, std::memory_order_relaxed);
    shard.open_until_ms.store(0, std::memory_order_release);
    if (probe_success_ != nullptr) probe_success_->Increment();
  } else {
    shard.open_until_ms.store(SteadyMillis() + options_.breaker_cooldown_ms,
                              std::memory_order_release);
    if (probe_failure_ != nullptr) probe_failure_->Increment();
  }
  return healthy;
}

bool ClusterClient::Admitted(Shard& shard) {
  const std::int64_t open_until =
      shard.open_until_ms.load(std::memory_order_acquire);
  if (open_until == 0) return true;  // Breaker closed.
  if (SteadyMillis() < open_until) return false;  // Open, still cooling.
  // Half-open: elect one caller to probe; everyone else keeps skipping
  // until the probe settles the breaker one way or the other.
  if (shard.probe_in_flight.exchange(true, std::memory_order_acq_rel)) {
    return false;
  }
  const bool healthy = ProbeAndSettle(shard);
  shard.probe_in_flight.store(false, std::memory_order_release);
  return healthy;
}

void ClusterClient::RecordFailure(Shard& shard) {
  if (shard.failures != nullptr) shard.failures->Increment();
  if (options_.breaker_failure_threshold <= 0) return;
  const int failures =
      shard.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.breaker_failure_threshold) {
    std::int64_t expected = 0;
    if (shard.open_until_ms.compare_exchange_strong(
            expected, SteadyMillis() + options_.breaker_cooldown_ms,
            std::memory_order_acq_rel)) {
      if (breaker_trips_ != nullptr) breaker_trips_->Increment();
    }
  }
}

void ClusterClient::RecordSuccess(Shard& shard) {
  shard.consecutive_failures.store(0, std::memory_order_relaxed);
  shard.open_until_ms.store(0, std::memory_order_release);
}

Status ClusterClient::RouteCall(
    UserId user, bool allow_failover,
    const std::function<Status(RecClient&)>& call, ShardId* served_by) {
  if (router_requests_ != nullptr) router_requests_->Increment();
  const std::vector<ShardId> order =
      ring_.PreferenceOrder(HashRing::KeyForUser(user),
                            allow_failover ? 0 : 1);
  Status last = Status::Unavailable("cluster has no shards");
  std::uint8_t attempt = 0;
  for (const ShardId shard_id : order) {
    Shard& shard = *shards_[shard_id];
    if (!Admitted(shard)) {
      last = Status::Unavailable(StringPrintf(
          "shard %u breaker open", static_cast<unsigned>(shard_id)));
      continue;
    }
    if (shard.requests != nullptr) shard.requests->Increment();
    // Tag the propagated trace context with the attempt index, so a
    // stitched cross-shard trace shows which hop was the failover
    // (hop 0 = owner shard, hop 1 = first fallback, ...). The tagged
    // context only lives for this attempt; RecClient stamps it onto
    // the wire when the connection negotiated trace propagation.
    Status status;
    {
      TraceContext hop_trace = CurrentTrace();
      hop_trace.hop = attempt;
      std::optional<ScopedTraceContext> hop_scope;
      if (hop_trace.sampled()) hop_scope.emplace(hop_trace);
      status = call(*shard.client);
    }
    if (attempt < 255) ++attempt;
    if (status.ok()) {
      RecordSuccess(shard);
      if (served_by != nullptr) *served_by = shard_id;
      return status;
    }
    if (!status.IsUnavailable()) return status;  // Typed server error.
    RecordFailure(shard);
    last = std::move(status);
  }
  if (router_errors_ != nullptr) router_errors_->Increment();
  return last;
}

Status ClusterClient::Ping() {
  for (const auto& shard : shards_) {
    Status status = shard->client->Ping();
    if (!status.ok()) {
      return Status::Unavailable(StringPrintf(
          "shard %u: %s", static_cast<unsigned>(shard->address.shard),
          status.ToString().c_str()));
    }
  }
  return Status::OK();
}

bool ClusterClient::Healthy() {
  for (const auto& shard : shards_) {
    if (!shard->client->Healthy(options_.probe_timeout_ms)) return false;
  }
  return true;
}

bool ClusterClient::ShardHealthy(ShardId shard_id) {
  if (shard_id >= shards_.size()) return false;
  return ProbeAndSettle(*shards_[shard_id]);
}

StatusOr<std::string> ClusterClient::Stats() {
  struct Section {
    ShardId shard;
    std::string text;
    bool up;
  };
  std::vector<Section> sections;
  sections.reserve(shards_.size());
  std::size_t healthy = 0;
  for (const auto& shard : shards_) {
    Section section{shard->address.shard, {}, false};
    // Skip shards in cooldown — a merged scrape must not stall on a dead
    // shard's connect timeout every time.
    const std::int64_t open_until =
        shard->open_until_ms.load(std::memory_order_acquire);
    if (open_until == 0 || SteadyMillis() >= open_until) {
      StatusOr<std::string> text = shard->client->Stats();
      if (text.ok()) {
        section.text = *std::move(text);
        section.up = true;
        ++healthy;
      } else {
        RecordFailure(*shard);
      }
    }
    sections.push_back(std::move(section));
  }
  if (healthy == 0) {
    return Status::Unavailable("no shard answered the merged scrape");
  }

  // Cluster-level aggregation: summed serving/ingest counters and the
  // CTR join re-derived from the summed impressions/clicks, so PR 5's
  // quality signals stay readable as one number across the fleet.
  const char* summed[] = {
      "net_server_requests_total",    "service_requests_total",
      "service_actions_total",        "server_degraded_responses_total",
      "quality_ctr_impressions_total", "quality_ctr_clicks_total",
  };
  std::ostringstream out;
  out << "# rtrec cluster merged scrape\n";
  out << "cluster_shards " << shards_.size() << '\n';
  out << "cluster_shards_healthy " << healthy << '\n';
  for (const Section& section : sections) {
    out << "cluster_shard_up{shard=\"" << section.shard << "\"} "
        << (section.up ? 1 : 0) << '\n';
  }
  double impressions = 0, clicks = 0;
  for (const char* name : summed) {
    double sum = 0;
    for (const Section& section : sections) {
      if (!section.up) continue;
      const double value = ScrapeValue(section.text, name);
      if (value > 0) sum += value;
    }
    out << "cluster_" << name << ' ' << sum << '\n';
    if (std::string_view(name) == "quality_ctr_impressions_total") {
      impressions = sum;
    } else if (std::string_view(name) == "quality_ctr_clicks_total") {
      clicks = sum;
    }
  }
  out << "cluster_quality_ctr_overall "
      << (impressions > 0 ? clicks / impressions : 0.0) << '\n';
  for (const Section& section : sections) {
    const ShardAddress* address = options_.manifest.Find(section.shard);
    out << "# ---- shard " << section.shard << " @ "
        << (address != nullptr ? address->host : "?") << ':'
        << (address != nullptr ? address->port : 0)
        << (section.up ? "" : " (down)") << " ----\n";
    if (section.up) out << section.text;
  }
  return out.str();
}

StatusOr<std::vector<ScoredVideo>> ClusterClient::Recommend(
    const RecRequest& request) {
  StatusOr<RecommendReply> reply = RecommendDetailed(request);
  RTREC_RETURN_IF_ERROR(reply.status());
  return std::move(reply->videos);
}

StatusOr<RecommendReply> ClusterClient::RecommendDetailed(
    const RecRequest& request) {
  const ShardId owner = OwnerOf(request.user);
  RecommendReply reply;
  ShardId served_by = owner;
  Status status = RouteCall(
      request.user, /*allow_failover=*/true,
      [&](RecClient& client) -> Status {
        StatusOr<RecommendReply> result = client.RecommendDetailed(request);
        RTREC_RETURN_IF_ERROR(result.status());
        reply = *std::move(result);
        return Status::OK();
      },
      &served_by);
  RTREC_RETURN_IF_ERROR(status);
  if (served_by != owner) {
    // A failover shard does not hold this user's model slice: whatever it
    // answered (typically its cold-user hot-video fallback) is a degraded
    // answer by construction, so the router says so on the reply.
    reply.flags |= kRecommendFlagDegraded;
    if (router_failovers_ != nullptr) router_failovers_->Increment();
  }
  if (reply.degraded() && router_degraded_ != nullptr) {
    router_degraded_->Increment();
  }
  return reply;
}

Status ClusterClient::Observe(const UserAction& action) {
  const ShardId owner = OwnerOf(action.user);
  ShardId served_by = owner;
  Status status = RouteCall(
      action.user, options_.observe_failover,
      [&](RecClient& client) { return client.Observe(action); }, &served_by);
  if (status.ok() && served_by != owner && router_failovers_ != nullptr) {
    router_failovers_->Increment();
  }
  return status;
}

Status ClusterClient::RegisterProfile(UserId user,
                                      const UserProfile& profile) {
  const ShardId owner = OwnerOf(user);
  ShardId served_by = owner;
  Status status = RouteCall(
      user, options_.observe_failover,
      [&](RecClient& client) { return client.RegisterProfile(user, profile); },
      &served_by);
  if (status.ok() && served_by != owner && router_failovers_ != nullptr) {
    router_failovers_->Increment();
  }
  return status;
}

}  // namespace rtrec
