#ifndef RTREC_CLUSTER_CLUSTER_CLIENT_H_
#define RTREC_CLUSTER_CLUSTER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/manifest.h"
#include "common/metrics.h"
#include "common/status.h"
#include "net/rec_client.h"

namespace rtrec {

/// Routing client for a sharded rtrec cluster — the same RecClient-shaped
/// API (Recommend/RecommendDetailed/Observe/RegisterProfile/Ping/Stats),
/// but each user-keyed request is routed to the shard process owning that
/// user's key slice via the consistent-hash ring over the manifest.
///
/// Failure is a first-class input:
///
///  - every shard has a circuit breaker: `breaker_failure_threshold`
///    consecutive transport failures open it for `breaker_cooldown_ms`,
///    during which the shard is skipped without paying its connect
///    timeout. After the cooldown, a Ping-based health probe
///    (RecClient::Healthy with `probe_timeout_ms`) decides half-open →
///    closed or another cooldown;
///  - a request whose owner shard is dead (breaker open or the call
///    fails with a transport error) fails over along the ring's
///    preference order to the next live shard. A failover Recommend is
///    answered by a process that does not hold the user's model slice —
///    its cold-user hot-video fallback — so the router marks the reply
///    DEGRADED (kRecommendFlagDegraded) whether or not the serving shard
///    did. Observe/RegisterProfile fail over too (`observe_failover`),
///    trading a transiently split model slice for an ingest stream that
///    keeps flowing; the owner rejoins from its checkpoint and misses
///    only the outage window;
///  - only when every shard in the preference order is down does a call
///    surface Unavailable.
///
/// The underlying RecClients retry transport errors with backoff
/// themselves (Options::client); keep their retry budget short so
/// failover is fast — the cluster-level answer to a dead shard is the
/// next shard, not a long per-shard retry loop.
///
/// Thread-safe: breaker state is atomic and per-shard RecClients
/// serialize internally. Loadgen wanting parallelism should hold one
/// ClusterClient per thread, mirroring the RecClient guidance.
class ClusterClient {
 public:
  struct Options {
    /// The cluster membership. Required (must list >= 1 shard).
    ClusterManifest manifest;
    HashRing::Options ring;
    /// Template for the per-shard clients; host/port are overridden from
    /// the manifest. Defaults here favour fast failover over long
    /// per-shard persistence.
    RecClient::Options client = FastFailoverClientOptions();
    /// Consecutive transport failures that open a shard's breaker.
    /// <= 0 disables the breakers (every request probes the shard).
    int breaker_failure_threshold = 3;
    /// How long an open breaker skips the shard before a health probe
    /// may close it again.
    int breaker_cooldown_ms = 1'000;
    /// Deadline for the half-open Ping probe.
    int probe_timeout_ms = 250;
    /// Route Observe/RegisterProfile to the failover shard when the
    /// owner is down (at-least-once, transiently split slice). When
    /// false, writes to a dead shard surface Unavailable instead.
    bool observe_failover = true;
    /// Counter sink for "cluster.router.*" / "cluster.shard.*"; null
    /// disables.
    MetricsRegistry* metrics = nullptr;
  };

  /// RecClient options tuned for routing: one quick retry, sub-second
  /// budget, so a dead shard costs milliseconds before failover.
  static RecClient::Options FastFailoverClientOptions();

  explicit ClusterClient(Options options);
  ~ClusterClient();

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  std::size_t num_shards() const { return shards_.size(); }

  /// The shard owning `user`'s key slice (ignores liveness).
  ShardId OwnerOf(UserId user) const;

  /// OK iff every shard in the manifest answers a ping — the cluster is
  /// fully up. Use ShardHealthy for a single shard.
  Status Ping();

  /// True iff every shard is healthy (readiness gating).
  bool Healthy();

  /// Direct Ping-based liveness probe of one shard (with
  /// Options::probe_timeout_ms); closes its breaker on success.
  bool ShardHealthy(ShardId shard);

  /// Merged scrape: a synthesized cluster header (shard count, per-shard
  /// up flags, summed request / CTR-join counters and the cluster-wide
  /// CTR they imply) followed by each live shard's Prometheus text in a
  /// comment-delimited section. Per-shard sections repeat metric names;
  /// scrape the shards' own stats ports for strict Prometheus ingestion.
  /// OK as long as at least one shard answered.
  StatusOr<std::string> Stats();

  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest& request);

  /// Like Recommend but surfaces the DEGRADED flag: set by the serving
  /// shard (its engine failed) or by this router (the answer came from a
  /// failover shard that does not own the user's slice).
  StatusOr<RecommendReply> RecommendDetailed(const RecRequest& request);

  Status Observe(const UserAction& action);

  Status RegisterProfile(UserId user, const UserProfile& profile);

 private:
  struct Shard {
    ShardAddress address;
    std::unique_ptr<RecClient> client;
    std::atomic<int> consecutive_failures{0};
    /// 0 = breaker closed; otherwise the steady-clock ms until which the
    /// shard is skipped.
    std::atomic<std::int64_t> open_until_ms{0};
    /// Elects a single half-open prober among concurrent callers.
    std::atomic<bool> probe_in_flight{false};
    Counter* requests = nullptr;
    Counter* failures = nullptr;
  };

  /// True if the shard may be tried now: breaker closed, or half-open
  /// and the health probe just succeeded.
  bool Admitted(Shard& shard);
  void RecordFailure(Shard& shard);
  void RecordSuccess(Shard& shard);
  /// Runs the probe and settles the breaker; returns probe outcome.
  bool ProbeAndSettle(Shard& shard);

  /// Routes `call` along the preference order for `user`. On success
  /// sets *served_by to the shard index used. `allow_failover` false
  /// restricts to the owner. Transport failures (IsUnavailable) advance
  /// to the next shard; other errors surface immediately.
  Status RouteCall(UserId user, bool allow_failover,
                   const std::function<Status(RecClient&)>& call,
                   ShardId* served_by);

  Options options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Counter* router_requests_ = nullptr;
  Counter* router_failovers_ = nullptr;
  Counter* router_degraded_ = nullptr;
  Counter* router_errors_ = nullptr;
  Counter* breaker_trips_ = nullptr;
  Counter* probe_success_ = nullptr;
  Counter* probe_failure_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_CLUSTER_CLUSTER_CLIENT_H_
