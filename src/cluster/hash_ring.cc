#include "cluster/hash_ring.h"

#include <algorithm>

namespace rtrec {

HashRing::HashRing() : HashRing(Options{}) {}

HashRing::HashRing(Options options) : options_(options) {
  if (options_.vnodes_per_shard == 0) options_.vnodes_per_shard = 1;
}

HashRing::HashRing(std::size_t num_shards) : HashRing(num_shards, Options{}) {}

HashRing::HashRing(std::size_t num_shards, Options options)
    : HashRing(options) {
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    AddShard(static_cast<ShardId>(shard));
  }
}

std::uint64_t HashRing::Mix(std::uint64_t x) {
  // splitmix64 finalizer (Steele et al.): cheap, well-distributed, and
  // stable across platforms — the mapping must agree between processes.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void HashRing::AddShard(ShardId shard) {
  if (HasShard(shard)) return;
  shards_.insert(std::upper_bound(shards_.begin(), shards_.end(), shard),
                 shard);
  points_.reserve(points_.size() + options_.vnodes_per_shard);
  for (std::size_t replica = 0; replica < options_.vnodes_per_shard;
       ++replica) {
    // Vnode point = hash of (shard, replica). The two-step mix keeps
    // shard i / replica j distinct from shard j / replica i.
    const std::uint64_t hash =
        Mix(Mix(static_cast<std::uint64_t>(shard) + 1) ^
            (static_cast<std::uint64_t>(replica) * 0xA24BAED4963EE407ull +
             0x9FB21C651E98DF25ull));
    points_.push_back(Point{hash, shard});
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::RemoveShard(ShardId shard) {
  auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end() || *it != shard) return;
  shards_.erase(it);
  std::erase_if(points_, [shard](const Point& p) { return p.shard == shard; });
}

bool HashRing::HasShard(ShardId shard) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard);
}

std::size_t HashRing::Successor(std::uint64_t key) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  if (it == points_.end()) it = points_.begin();  // Wrap.
  return static_cast<std::size_t>(it - points_.begin());
}

StatusOr<ShardId> HashRing::Owner(std::uint64_t key) const {
  if (points_.empty()) {
    return Status::InvalidArgument("hash ring has no shards");
  }
  return points_[Successor(key)].shard;
}

std::vector<ShardId> HashRing::PreferenceOrder(std::uint64_t key,
                                               std::size_t count) const {
  std::vector<ShardId> order;
  if (points_.empty()) return order;
  if (count == 0 || count > shards_.size()) count = shards_.size();
  order.reserve(count);
  const std::size_t start = Successor(key);
  for (std::size_t i = 0; i < points_.size() && order.size() < count; ++i) {
    const ShardId shard = points_[(start + i) % points_.size()].shard;
    if (std::find(order.begin(), order.end(), shard) == order.end()) {
      order.push_back(shard);
    }
  }
  return order;
}

}  // namespace rtrec
