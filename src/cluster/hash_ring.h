#ifndef RTREC_CLUSTER_HASH_RING_H_
#define RTREC_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace rtrec {

/// Shard identifier inside a cluster manifest: dense, 0-based.
using ShardId = std::uint32_t;

/// Consistent-hash ring mapping request keys (user ids) to shard
/// processes — the routing layer of the multi-process deployment.
///
/// Each shard contributes `vnodes_per_shard` virtual points to the ring;
/// a key is owned by the first point at or clockwise after its hash. The
/// usual consistent-hashing properties follow:
///
///  - deterministic: the mapping depends only on the member shard ids
///    and the vnode count, never on insertion order or process identity,
///    so every router and every server derives the same ownership;
///  - balanced: with enough vnodes, each of N shards owns ~1/N of the
///    key space (hash_ring_test pins the spread);
///  - minimal movement: removing a shard reassigns only the keys it
///    owned (to the next points clockwise) and re-adding it restores the
///    exact prior mapping — which is what makes shard restarts and
///    rebalances cheap.
///
/// PreferenceOrder() is the failover policy: the distinct shards met
/// walking clockwise from the key's point. The first entry is the owner;
/// a router that finds it dead tries the subsequent entries, so every
/// router agrees on which replica takes over a dead shard's slice.
///
/// Not thread-safe for concurrent mutation; membership is fixed at
/// construction in the router (liveness is the circuit breakers' job,
/// not the ring's), so shared read-only use is fine.
class HashRing {
 public:
  struct Options {
    /// Virtual points per shard. More points = smoother balance at the
    /// cost of a larger (still tiny) sorted array.
    std::size_t vnodes_per_shard = 64;
  };

  HashRing();
  explicit HashRing(Options options);

  /// Convenience: a ring over shards 0..num_shards-1.
  explicit HashRing(std::size_t num_shards);
  HashRing(std::size_t num_shards, Options options);

  /// Adds `shard`'s vnodes. Idempotent.
  void AddShard(ShardId shard);

  /// Removes `shard`'s vnodes. Idempotent. Keys it owned move to the
  /// next shards clockwise; everything else stays put.
  void RemoveShard(ShardId shard);

  bool HasShard(ShardId shard) const;
  std::size_t num_shards() const { return shards_.size(); }
  /// Member shard ids, ascending.
  const std::vector<ShardId>& shards() const { return shards_; }

  /// The shard owning `key`. InvalidArgument on an empty ring.
  StatusOr<ShardId> Owner(std::uint64_t key) const;

  /// Owner of a user-keyed request (Recommend/Observe/RegisterProfile
  /// all route by user, which is what keeps per-key single-writer true
  /// across processes).
  StatusOr<ShardId> OwnerOfUser(UserId user) const {
    return Owner(KeyForUser(user));
  }

  /// Up to `count` distinct shards in failover order: the owner first,
  /// then the shards met walking clockwise. count == 0 means all.
  std::vector<ShardId> PreferenceOrder(std::uint64_t key,
                                       std::size_t count = 0) const;

  /// The ring key for a user id (a mixed hash, so adjacent user ids
  /// spread across shards instead of clustering).
  static std::uint64_t KeyForUser(UserId user) { return Mix(user); }

  /// splitmix64 finalizer: the point hash for both keys and vnodes.
  static std::uint64_t Mix(std::uint64_t x);

 private:
  struct Point {
    std::uint64_t hash;
    ShardId shard;
    bool operator<(const Point& other) const {
      // Tie-break on shard id so the ring order is a total order even in
      // the (astronomically unlikely) event of a hash collision.
      return hash != other.hash ? hash < other.hash : shard < other.shard;
    }
  };

  /// Index into points_ of the first point at or after `key` (wrapping).
  std::size_t Successor(std::uint64_t key) const;

  Options options_;
  std::vector<ShardId> shards_;  // Ascending.
  std::vector<Point> points_;    // Sorted.
};

}  // namespace rtrec

#endif  // RTREC_CLUSTER_HASH_RING_H_
