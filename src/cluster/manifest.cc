#include "cluster/manifest.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace rtrec {

const ShardAddress* ClusterManifest::Find(ShardId shard) const {
  for (const ShardAddress& address : shards) {
    if (address.shard == shard) return &address;
  }
  return nullptr;
}

HashRing ClusterManifest::Ring(HashRing::Options options) const {
  HashRing ring(options);
  for (const ShardAddress& address : shards) ring.AddShard(address.shard);
  return ring;
}

std::string ClusterManifest::ToText() const {
  std::ostringstream out;
  out << "# rtrec cluster manifest\n";
  for (const ShardAddress& address : shards) {
    out << "shard " << address.shard << ' ' << address.host << ' '
        << address.port << '\n';
  }
  return out.str();
}

StatusOr<ClusterManifest> ClusterManifest::Parse(std::string_view text) {
  ClusterManifest manifest;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // Blank.
    if (tag != "shard") {
      return Status::InvalidArgument(StringPrintf(
          "manifest line %d: expected 'shard', got '%s'", line_no,
          tag.c_str()));
    }
    ShardAddress address;
    long shard = -1;
    long port = -1;
    if (!(fields >> shard >> address.host >> port) || shard < 0 || port <= 0 ||
        port > 65535 || address.host.empty()) {
      return Status::InvalidArgument(StringPrintf(
          "manifest line %d: want 'shard <id> <host> <port>'", line_no));
    }
    address.shard = static_cast<ShardId>(shard);
    address.port = static_cast<std::uint16_t>(port);
    std::string rest;
    if (fields >> rest) {
      return Status::InvalidArgument(StringPrintf(
          "manifest line %d: trailing field '%s'", line_no, rest.c_str()));
    }
    manifest.shards.push_back(std::move(address));
  }
  if (manifest.shards.empty()) {
    return Status::InvalidArgument("manifest lists no shards");
  }
  std::sort(manifest.shards.begin(), manifest.shards.end(),
            [](const ShardAddress& a, const ShardAddress& b) {
              return a.shard < b.shard;
            });
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    if (manifest.shards[i].shard != i) {
      return Status::InvalidArgument(StringPrintf(
          "manifest shard ids must be dense 0..N-1: missing or duplicate "
          "id near %u",
          static_cast<unsigned>(manifest.shards[i].shard)));
    }
  }
  return manifest;
}

StatusOr<ClusterManifest> ClusterManifest::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open cluster manifest '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

}  // namespace rtrec
