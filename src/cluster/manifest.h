#ifndef RTREC_CLUSTER_MANIFEST_H_
#define RTREC_CLUSTER_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "cluster/hash_ring.h"

namespace rtrec {

/// One shard process's address inside the cluster.
struct ShardAddress {
  ShardId shard = 0;
  std::string host;
  std::uint16_t port = 0;
};

/// The cluster manifest: the authoritative list of shard processes, one
/// per key slice. Every router (ClusterClient) and every server (`serve
/// --cluster-manifest`) reads the same file, so all of them derive the
/// same consistent-hash ring and the same ownership.
///
/// Text format, one entry per line, '#' comments and blank lines
/// ignored:
///
///   # rtrec cluster manifest
///   shard 0 127.0.0.1 7471
///   shard 1 127.0.0.1 7472
///
/// Shard ids must be dense 0..N-1 (any line order); each id appears
/// exactly once. Host:port pairs need not be distinct hosts — a
/// one-machine cluster is the normal dev/bench shape.
struct ClusterManifest {
  std::vector<ShardAddress> shards;  // Sorted by shard id after Parse.

  std::size_t num_shards() const { return shards.size(); }

  /// The address of `shard`; nullptr if out of range.
  const ShardAddress* Find(ShardId shard) const;

  /// A ring over this manifest's shard ids.
  HashRing Ring(HashRing::Options options = {}) const;

  /// Renders the manifest in the file format (stable ordering).
  std::string ToText() const;

  /// Parses manifest text. InvalidArgument on malformed lines, duplicate
  /// or non-dense shard ids, bad ports, or an empty shard list.
  static StatusOr<ClusterManifest> Parse(std::string_view text);

  /// Loads and parses a manifest file. NotFound if unreadable.
  static StatusOr<ClusterManifest> Load(const std::string& path);
};

}  // namespace rtrec

#endif  // RTREC_CLUSTER_MANIFEST_H_
