#ifndef RTREC_CLUSTER_SHARD_ACTION_SOURCE_H_
#define RTREC_CLUSTER_SHARD_ACTION_SOURCE_H_

#include <atomic>
#include <memory>

#include "cluster/hash_ring.h"
#include "core/topology_factory.h"

namespace rtrec {

/// Partitioned ingest: the cross-process extension of the topology's
/// fields grouping. Each shard process wraps its raw action feed in a
/// ShardActionSource over the shared ring, so it emits only the actions
/// whose user key it owns — across the cluster every action is consumed
/// by exactly one process, which is what keeps per-key single-writer
/// true once the Fig. 2 topology spans processes (cluster_test pins the
/// exactly-once union property).
class ShardActionSource : public ActionSource {
 public:
  /// `inner` must be this shard's own replay of the feed (each process
  /// replays the full log and keeps its slice) — wrapping one shared
  /// cursor would make shards consume-and-drop each other's actions.
  /// The ring is copied: membership is fixed for the source's lifetime.
  ShardActionSource(std::shared_ptr<ActionSource> inner, HashRing ring,
                    ShardId shard)
      : inner_(std::move(inner)), ring_(std::move(ring)), shard_(shard) {}

  std::optional<UserAction> Next() override {
    while (true) {
      std::optional<UserAction> action = inner_->Next();
      if (!action.has_value()) return std::nullopt;
      StatusOr<ShardId> owner = ring_.OwnerOfUser(action->user);
      if (owner.ok() && *owner == shard_) return action;
      skipped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Actions passed over because another shard owns them.
  std::size_t skipped() const {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<ActionSource> inner_;
  const HashRing ring_;
  const ShardId shard_;
  std::atomic<std::size_t> skipped_{0};
};

}  // namespace rtrec

#endif  // RTREC_CLUSTER_SHARD_ACTION_SOURCE_H_
