#ifndef RTREC_COMMON_BOUNDED_QUEUE_H_
#define RTREC_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace rtrec {

/// A multi-producer multi-consumer blocking FIFO with a capacity bound.
/// Producers block when full (backpressure, as Storm's max.spout.pending
/// provides); consumers block when empty. `Close()` wakes everyone:
/// subsequent pushes fail and pops drain the remaining items then return
/// nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns false iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending and future Push calls return false, Pop
  /// drains then returns nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_BOUNDED_QUEUE_H_
