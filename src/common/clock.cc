#include "common/clock.h"

#include <chrono>

namespace rtrec {

Timestamp SystemClock::NowMillis() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

const std::shared_ptr<SystemClock>& SystemClock::Instance() {
  static const std::shared_ptr<SystemClock>& instance =
      *new std::shared_ptr<SystemClock>(std::make_shared<SystemClock>());
  return instance;
}

}  // namespace rtrec
