#ifndef RTREC_COMMON_CLOCK_H_
#define RTREC_COMMON_CLOCK_H_

#include <atomic>
#include <memory>

#include "common/types.h"

namespace rtrec {

/// Time source abstraction. Production code uses `SystemClock`; experiments
/// and tests drive a `ManualClock` so the time-decay factor (Eq. 11) and the
/// day-by-day A/B simulation are deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in milliseconds since the epoch.
  virtual Timestamp NowMillis() const = 0;
};

/// Wall-clock time.
class SystemClock : public Clock {
 public:
  Timestamp NowMillis() const override;

  /// Process-wide shared instance.
  static const std::shared_ptr<SystemClock>& Instance();
};

/// A clock that only moves when told to. Thread-safe.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Timestamp start_millis = 0) : now_(start_millis) {}

  Timestamp NowMillis() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Jumps to an absolute time.
  void SetMillis(Timestamp t) { now_.store(t, std::memory_order_relaxed); }

  /// Moves forward by `delta_millis` (may be negative in tests).
  void AdvanceMillis(Timestamp delta_millis) {
    now_.fetch_add(delta_millis, std::memory_order_relaxed);
  }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_CLOCK_H_
