#include "common/crc32.h"

#include <array>

namespace rtrec {
namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, built at static
// initialization so the header stays free of large constants.
constexpr std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = BuildTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t state, const void* data,
                          std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace rtrec
