#ifndef RTREC_COMMON_CRC32_H_
#define RTREC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rtrec {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), computed with a
/// software lookup table. Used to guard checkpoint sections against silent
/// corruption; not cryptographic.
///
/// `Crc32(data, len)` is the one-shot form. `Crc32Update` lets callers feed
/// data incrementally: start from `kCrc32Init`, feed chunks, then finalize
/// with `Crc32Finalize`.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Feeds `len` bytes into a running CRC state (already-inverted form).
std::uint32_t Crc32Update(std::uint32_t state, const void* data,
                          std::size_t len);

inline std::uint32_t Crc32Finalize(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
inline std::uint32_t Crc32(const void* data, std::size_t len) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data, len));
}

inline std::uint32_t Crc32(std::string_view s) {
  return Crc32(s.data(), s.size());
}

}  // namespace rtrec

#endif  // RTREC_COMMON_CRC32_H_
