#include "common/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"

namespace rtrec {
namespace {

// Status(code, msg) is private; route through the per-code factories.
Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kAborted:
      return Status::Aborted(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

}  // namespace

std::atomic<int> FaultInjector::armed_points_{0};

FaultSpec FaultSpec::Error(StatusCode code) {
  FaultSpec spec;
  spec.action = Action::kError;
  spec.error_code = code;
  return spec;
}

FaultSpec FaultSpec::Latency(int ms) {
  FaultSpec spec;
  spec.action = Action::kLatency;
  spec.latency_ms = ms;
  return spec;
}

FaultSpec FaultSpec::Abort() {
  FaultSpec spec;
  spec.action = Action::kAbort;
  return spec;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::unique_lock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) {
    auto state = std::make_unique<PointState>();
    state->spec = std::move(spec);
    points_.emplace(point, std::move(state));
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second->spec = std::move(spec);
    it->second->hits.store(0, std::memory_order_relaxed);
    it->second->injected.store(0, std::memory_order_relaxed);
    it->second->spent.store(false, std::memory_order_relaxed);
  }
}

void FaultInjector::Disarm(const std::string& point) {
  std::unique_lock lock(mu_);
  if (points_.erase(point) > 0) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::unique_lock lock(mu_);
  armed_points_.fetch_sub(static_cast<int>(points_.size()),
                          std::memory_order_relaxed);
  points_.clear();
}

void FaultInjector::SetMetrics(MetricsRegistry* metrics) {
  metrics_.store(metrics, std::memory_order_release);
}

Status FaultInjector::Hit(std::string_view point) {
  PointState* state = nullptr;
  {
    std::shared_lock lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    state = it->second.get();
  }
  // The state pointer stays valid only while the point is armed; tests
  // must not Disarm concurrently with in-flight Hits on the same point
  // and expect the spec change to be atomic — see the header contract.
  std::uint64_t hit =
      state->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const FaultSpec& spec = state->spec;
  bool eligible = true;
  if (spec.every_nth > 0) {
    eligible = (hit % spec.every_nth) == 0;
  } else if (spec.probability < 1.0) {
    static std::atomic<std::uint64_t> seed_counter{0};
    thread_local Rng rng(0x9E3779B97F4A7C15ull *
                         (seed_counter.fetch_add(1) + 1));
    eligible = rng.NextBool(spec.probability);
  }
  if (!eligible) return Status::OK();
  if (spec.one_shot && state->spent.exchange(true)) return Status::OK();
  return Fire(point, *state);
}

Status FaultInjector::Fire(std::string_view point, PointState& state) {
  state.injected.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry* metrics = metrics_.load(std::memory_order_acquire);
  if (metrics == nullptr) metrics = &MetricsRegistry::Default();
  metrics->GetCounter("fault.injected")->Increment();
  metrics->GetCounter("fault.injected." + std::string(point))->Increment();
  const FaultSpec& spec = state.spec;
  switch (spec.action) {
    case FaultSpec::Action::kError:
      return MakeStatus(spec.error_code,
                        spec.error_message + " at " + std::string(point));
    case FaultSpec::Action::kLatency:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.latency_ms));
      return Status::OK();
    case FaultSpec::Action::kAbort:
      RTREC_LOG(kError) << "fault point " << point << " aborting process";
      std::abort();
  }
  return Status::OK();  // Unreachable; silences -Wreturn-type.
}

std::uint64_t FaultInjector::InjectedCount(const std::string& point) const {
  std::shared_lock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return 0;
  return it->second->injected.load(std::memory_order_relaxed);
}

}  // namespace rtrec
