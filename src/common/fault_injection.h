#ifndef RTREC_COMMON_FAULT_INJECTION_H_
#define RTREC_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rtrec {

class MetricsRegistry;

/// What an armed fault point does when its trigger fires.
///
/// Trigger selection: if `every_nth > 0` the fault fires on every Nth hit
/// of the point (1 = every hit); otherwise it fires with `probability` on
/// each hit. `one_shot` additionally restricts the fault to firing exactly
/// once, after which the point behaves as disarmed until re-armed.
struct FaultSpec {
  enum class Action {
    kError,    ///< Hit() returns `Status(error_code, error_message)`.
    kLatency,  ///< Hit() sleeps `latency_ms` then returns OK.
    kAbort,    ///< Hit() calls std::abort() — simulates a hard crash.
  };

  Action action = Action::kError;
  StatusCode error_code = StatusCode::kUnavailable;
  std::string error_message = "injected fault";
  int latency_ms = 0;
  double probability = 1.0;
  std::uint64_t every_nth = 0;
  bool one_shot = false;

  /// Convenience factories, chainable with the fluent setters below:
  ///   FaultInjector::Instance().Arm("kvstore.put",
  ///       FaultSpec::Error(StatusCode::kUnavailable).WithProbability(0.01));
  static FaultSpec Error(StatusCode code = StatusCode::kUnavailable);
  static FaultSpec Latency(int ms);
  static FaultSpec Abort();

  FaultSpec& WithProbability(double p) {
    probability = p;
    return *this;
  }
  FaultSpec& WithEveryNth(std::uint64_t n) {
    every_nth = n;
    return *this;
  }
  FaultSpec& WithOneShot() {
    one_shot = true;
    return *this;
  }
  FaultSpec& WithMessage(std::string msg) {
    error_message = std::move(msg);
    return *this;
  }
};

/// Process-wide registry of named fault points for robustness testing.
///
/// Production code declares points with RTREC_FAULT_POINT("name"); tests
/// arm them with a FaultSpec to make the surrounding code fail on demand.
/// The disarmed fast path is a single relaxed atomic load — no lock, no
/// map lookup, no branch on the point name — so fault points are safe to
/// leave in hot paths permanently.
///
/// Every injected fault increments `fault.injected.<point>` (and the
/// rollup `fault.injected`) in the configured MetricsRegistry.
///
/// Thread-safe. Arm/Disarm may race with Hit; a Hit concurrent with a
/// Disarm may observe either state.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms (or re-arms, replacing the spec and resetting trigger state)
  /// the named point.
  void Arm(const std::string& point, FaultSpec spec);

  /// Disarms one point. No-op if not armed.
  void Disarm(const std::string& point);

  /// Disarms every point. Tests should call this in TearDown.
  void DisarmAll();

  /// Registry receiving fault.injected.* counters. Defaults to
  /// MetricsRegistry::Default(). Pass nullptr to restore the default.
  void SetMetrics(MetricsRegistry* metrics);

  /// True iff any point is armed process-wide. The zero-cost fast path.
  static bool AnyArmed() {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Evaluates the named point: returns a non-OK Status iff an armed
  /// kError fault fired. kLatency sleeps; kAbort never returns. Callers
  /// should go through RTREC_FAULT_POINT, which short-circuits via
  /// AnyArmed().
  Status Hit(std::string_view point);

  /// Times the named point's fault has fired since it was last armed.
  std::uint64_t InjectedCount(const std::string& point) const;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultSpec spec;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> injected{0};
    std::atomic<bool> spent{false};  // One-shot already fired.
  };

  Status Fire(std::string_view point, PointState& state);

  static std::atomic<int> armed_points_;

  mutable std::shared_mutex mu_;
  // Heap-allocated states so Hit can hold them across the shared lock.
  std::map<std::string, std::unique_ptr<PointState>, std::less<>> points_;
  std::atomic<MetricsRegistry*> metrics_{nullptr};
};

/// Fast-path helper behind RTREC_FAULT_POINT.
inline Status MaybeInjectFault(std::string_view point) {
  if (!FaultInjector::AnyArmed()) return Status::OK();
  return FaultInjector::Instance().Hit(point);
}

/// Declares a fault point. Expands to a Status: OK unless a test armed
/// the point and its trigger fired. Typical use:
///
///   RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.checkpoint.write"));
///
/// or, in void/bool contexts:
///
///   if (!RTREC_FAULT_POINT("net.socket.read").ok()) return false;
#define RTREC_FAULT_POINT(name) ::rtrec::MaybeInjectFault(name)

}  // namespace rtrec

#endif  // RTREC_COMMON_FAULT_INJECTION_H_
