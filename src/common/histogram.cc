#include "common/histogram.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

namespace rtrec {

namespace {

std::int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = 0;
}

std::int64_t Histogram::BucketLimit(int i) {
  // Buckets grow roughly ~1.6x: limits 1, 2, 3, 5, 8, 13, ... capped at
  // int64 max for the last bucket.
  if (i >= kNumBuckets - 1) return std::numeric_limits<std::int64_t>::max();
  std::int64_t limit = 1;
  std::int64_t prev = 0;
  for (int b = 0; b < i; ++b) {
    std::int64_t next = limit + std::max<std::int64_t>(prev, 1);
    prev = limit;
    limit = next;
  }
  return limit;
}

int Histogram::BucketFor(std::int64_t value) {
  // Fibonacci-style growth matches BucketLimit; linear scan over 64 small
  // comparisons is cache-friendly and branch-predictable.
  std::int64_t limit = 1;
  std::int64_t prev = 0;
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (value <= limit) return i;
    std::int64_t next = limit + std::max<std::int64_t>(prev, 1);
    prev = limit;
    limit = next;
  }
  return kNumBuckets - 1;
}

void Histogram::Add(std::int64_t value) {
  if (value < 0) value = 0;
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++buckets_[BucketFor(value)];
}

void Histogram::AddWithExemplar(std::int64_t value, std::uint64_t trace_id) {
  if (value < 0) value = 0;
  std::lock_guard<std::mutex> lock(mu_);
  ++count_;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++buckets_[BucketFor(value)];
  if (trace_id == 0) return;
  if (exemplars_.size() < static_cast<std::size_t>(kMaxExemplars)) {
    exemplars_.push_back(Exemplar{value, trace_id});
    return;
  }
  // Replace the smallest remembered value if this one beats it (ties
  // replace too, so the slots track *recent* high observations).
  std::size_t smallest = 0;
  for (std::size_t i = 1; i < exemplars_.size(); ++i) {
    if (exemplars_[i].value < exemplars_[smallest].value) smallest = i;
  }
  if (value >= exemplars_[smallest].value) {
    exemplars_[smallest] = Exemplar{value, trace_id};
  }
}

std::vector<Histogram::Exemplar> Histogram::Exemplars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Exemplar> out = exemplars_;
  std::sort(out.begin(), out.end(),
            [](const Exemplar& a, const Exemplar& b) {
              return a.value > b.value;
            });
  return out;
}

Histogram::CumulativeCut Histogram::CumulativeBuckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  CumulativeCut cut;
  cut.count = count_;
  cut.sum = sum_;
  int last_nonzero = -1;
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (buckets_[i] != 0) last_nonzero = i;
  }
  cut.buckets.reserve(static_cast<std::size_t>(last_nonzero + 1));
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= last_nonzero; ++i) {
    cumulative += buckets_[i];
    cut.buckets.emplace_back(BucketLimit(i), cumulative);
  }
  return cut;
}

void Histogram::Merge(const Histogram& other) {
  // Lock ordering by address avoids deadlock on cross-merges.
  if (this == &other) return;
  const Histogram* first = this < &other ? this : &other;
  const Histogram* second = this < &other ? &other : this;
  std::lock_guard<std::mutex> l1(first->mu_);
  std::lock_guard<std::mutex> l2(second->mu_);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
  exemplars_.clear();
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::int64_t Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0 : min_;
}

std::int64_t Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= threshold) {
      // Interpolate within the bucket.
      const double left = cumulative - static_cast<double>(buckets_[i]);
      const double lo =
          i == 0 ? 0.0 : static_cast<double>(BucketLimit(i - 1));
      double hi = static_cast<double>(BucketLimit(i));
      hi = std::min(hi, static_cast<double>(max_));
      const double within =
          buckets_[i] == 0
              ? 0.0
              : (threshold - left) / static_cast<double>(buckets_[i]);
      double value = lo + (hi - lo) * within;
      value = std::max(value, static_cast<double>(min_));
      return std::min(value, static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%lld",
                static_cast<unsigned long long>(count()), Mean(),
                Percentile(50), Percentile(95), Percentile(99),
                static_cast<long long>(max()));
  return buf;
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* hist)
    : hist_(hist), start_micros_(NowMicros()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (hist_ != nullptr) hist_->Add(NowMicros() - start_micros_);
}

}  // namespace rtrec
