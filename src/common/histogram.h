#ifndef RTREC_COMMON_HISTOGRAM_H_
#define RTREC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rtrec {

/// A fixed-layout exponential-bucket histogram for latency/size samples,
/// in the spirit of RocksDB's HistogramImpl. Thread-safe. Values are
/// unit-less; callers conventionally record microseconds.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative values clamp to zero.
  void Add(std::int64_t value);

  /// Records one sample and, when the value lands among the highest
  /// observations seen so far, remembers `trace_id` as an exemplar — a
  /// link from this histogram's tail to a capturable trace. A zero
  /// trace id records the sample without touching the exemplar slots.
  void AddWithExemplar(std::int64_t value, std::uint64_t trace_id);

  /// One remembered high observation and the trace that produced it.
  struct Exemplar {
    std::int64_t value = 0;
    std::uint64_t trace_id = 0;
  };

  /// The current exemplar slots, highest value first. At most
  /// kMaxExemplars entries; empty when no exemplar-carrying sample has
  /// been recorded.
  std::vector<Exemplar> Exemplars() const;

  /// A consistent cut of the bucket array for native Prometheus
  /// histogram export: (inclusive upper bound, cumulative count) per
  /// non-empty-prefix bucket, plus total count and sum taken under the
  /// same lock. Buckets past the last non-zero one are omitted (the
  /// +Inf line renders from `count`).
  struct CumulativeCut {
    std::vector<std::pair<std::int64_t, std::uint64_t>> buckets;
    std::uint64_t count = 0;
    double sum = 0;
  };
  CumulativeCut CumulativeBuckets() const;

  /// Merges the samples of `other` into this histogram.
  void Merge(const Histogram& other);

  /// Drops all recorded samples.
  void Reset();

  std::uint64_t count() const;
  std::int64_t min() const;
  std::int64_t max() const;
  double Mean() const;

  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

  static constexpr int kMaxExemplars = 4;

 private:
  static constexpr int kNumBuckets = 64;

  // Upper bound (inclusive) of bucket i; bucket 0 holds [0, 1].
  static std::int64_t BucketLimit(int i);
  static int BucketFor(std::int64_t value);

  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0;
  std::vector<std::uint64_t> buckets_;
  /// Top-valued recent exemplars, unordered; empty until an
  /// AddWithExemplar lands in the tail.
  std::vector<Exemplar> exemplars_;
};

/// RAII latency probe: records elapsed microseconds into a histogram when
/// destroyed.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist);
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  std::int64_t start_micros_;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_HISTOGRAM_H_
