#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace rtrec {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes emission so concurrent log lines do not interleave.
std::mutex& EmitMutex() {
  static std::mutex& m = *new std::mutex;
  return m;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  char when[32];
  std::strftime(when, sizeof(when), "%H:%M:%S", &tm_buf);

  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "[%s %s %s:%d] %s\n", when, LevelTag(level_),
               Basename(file_), line_, stream_.str().c_str());
}

}  // namespace internal

}  // namespace rtrec
