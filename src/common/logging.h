#ifndef RTREC_COMMON_LOGGING_H_
#define RTREC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rtrec {

/// Log severity, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum severity that will be emitted.
/// Defaults to kInfo. Thread-safe.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and emits it (with timestamp, level, and source
/// location) to stderr on destruction. Not for direct use; see RTREC_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Streams a log line at the given level:
///   RTREC_LOG(kInfo) << "processed " << n << " tuples";
/// Lines below the configured level are skipped without evaluating the
/// streamed expressions.
#define RTREC_LOG(level)                                               \
  if (::rtrec::LogLevel::level < ::rtrec::GetLogLevel()) {             \
  } else                                                               \
    ::rtrec::internal::LogMessage(::rtrec::LogLevel::level, __FILE__,  \
                                  __LINE__)                            \
        .stream()

}  // namespace rtrec

#endif  // RTREC_COMMON_LOGGING_H_
