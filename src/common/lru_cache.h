#ifndef RTREC_COMMON_LRU_CACHE_H_
#define RTREC_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>

namespace rtrec {

/// A fixed-capacity least-recently-used cache. NOT thread-safe: intended
/// for per-task state (each stream-engine task runs on one thread), the
/// "cache technique" of the paper's Section 5.1 — fields grouping sends
/// all occurrences of a key to one task, so a task-local cache sees every
/// hit for its keys without any cross-task coordination.
template <typename Key, typename Value, typename KeyHash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Returns the cached value and refreshes its recency, or nullptr.
  Value* Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when
  /// full.
  void Put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
    }
    entries_.push_front(Entry{key, std::move(value)});
    index_[key] = entries_.begin();
  }

  /// Removes `key` if present; returns true if removed.
  bool Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    entries_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    entries_.clear();
    index_.clear();
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  struct Entry {
    Key key;
    Value value;
  };

  std::size_t capacity_;
  std::list<Entry> entries_;  // Front = most recent.
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash>
      index_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_LRU_CACHE_H_
