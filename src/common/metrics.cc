#include "common/metrics.h"

#include <sstream>

namespace rtrec {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " = " << gauge->value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << name << " : " << hist->ToString() << "\n";
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

}  // namespace rtrec
