#include "common/metrics.h"

#include <sstream>

namespace rtrec {

void MetricsRegistry::SetHelpLocked(const std::string& name,
                                    const std::string& help) {
  if (help.empty()) return;
  auto& slot = help_[name];
  if (slot.empty()) slot = help;  // First non-empty registration wins.
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

DoubleGauge* MetricsRegistry::GetDoubleGauge(const std::string& name,
                                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = double_gauges_[name];
  if (!slot) slot = std::make_unique<DoubleGauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  SetHelpLocked(name, help);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter.get());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge.get());
  }
  snap.double_gauges.reserve(double_gauges_.size());
  for (const auto& [name, gauge] : double_gauges_) {
    snap.double_gauges.emplace_back(name, gauge.get());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist.get());
  }
  snap.help = help_;
  return snap;
}

std::string MetricsRegistry::Report() const {
  // Snapshot names/pointers under the lock, format outside it: histogram
  // rendering is slow enough that holding mu_ through it would stall
  // every hot-path GetCounter lookup for the duration of a scrape.
  const Snapshot snap = Snap();
  std::ostringstream out;
  for (const auto& [name, counter] : snap.counters) {
    out << name << " = " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : snap.gauges) {
    out << name << " = " << gauge->value() << "\n";
  }
  for (const auto& [name, gauge] : snap.double_gauges) {
    out << name << " = " << gauge->value() << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    out << name << " : " << hist->ToString() << "\n";
  }
  return out.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; everything
/// else (the registry's '.' separators, any stray '-') becomes '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) out[i] = '_';
  }
  return out;
}

/// HELP text is a single exposition line: escape backslashes and fold
/// any newline a caller snuck in (the format forbids raw '\n').
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendHelp(const std::map<std::string, std::string>& help,
                const std::string& registry_name, const std::string& prom_name,
                const char* kind, std::ostringstream& out) {
  const auto it = help.find(registry_name);
  if (it != help.end()) {
    out << "# HELP " << prom_name << " " << EscapeHelp(it->second) << "\n";
  } else {
    // Generated default. Uses the sanitized name: the raw registry name
    // may contain characters the exposition format reserves.
    out << "# HELP " << prom_name << " rtrec " << kind << " "
        << PrometheusName(registry_name) << "\n";
  }
}

void AppendSummary(const std::string& name, const Histogram& hist,
                   std::ostringstream& out) {
  // Each accessor takes the histogram's own lock; a scrape racing a
  // writer may see count advance between lines, which Prometheus
  // tolerates (summaries are not atomic cuts).
  out << "# TYPE " << name << " summary\n";
  out << name << "{quantile=\"0.5\"} " << hist.Percentile(50) << "\n";
  out << name << "{quantile=\"0.95\"} " << hist.Percentile(95) << "\n";
  out << name << "{quantile=\"0.99\"} " << hist.Percentile(99) << "\n";
  out << name << "_sum " << hist.Mean() * static_cast<double>(hist.count())
      << "\n";
  out << name << "_count " << hist.count() << "\n";
}

void AppendNativeHistogram(const std::string& name, const Histogram& hist,
                           std::ostringstream& out) {
  // CumulativeBuckets() is one consistent cut under the histogram's
  // lock, so the le="+Inf" line always equals _count within the family.
  const auto cut = hist.CumulativeBuckets();
  out << "# TYPE " << name << " histogram\n";
  for (const auto& [upper, cumulative] : cut.buckets) {
    out << name << "_bucket{le=\"" << upper << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << cut.count << "\n";
  out << name << "_sum " << cut.sum << "\n";
  out << name << "_count " << cut.count << "\n";
}

}  // namespace

std::string MetricsRegistry::PrometheusText(
    const ExportOptions& options) const {
  const Snapshot snap = Snap();
  std::ostringstream out;
  for (const auto& [name, counter] : snap.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    AppendHelp(snap.help, name, prom, "counter", out);
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    AppendHelp(snap.help, name, prom, "gauge", out);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << gauge->value() << "\n";
  }
  for (const auto& [name, gauge] : snap.double_gauges) {
    const std::string prom = PrometheusName(name);
    AppendHelp(snap.help, name, prom, "gauge", out);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << gauge->value() << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string prom = PrometheusName(name);
    AppendHelp(snap.help, name, prom, "summary", out);
    AppendSummary(prom, *hist, out);
    if (options.native_histograms) {
      const std::string prom_hist = prom + "_hist";
      AppendHelp(snap.help, name, prom_hist, "histogram", out);
      AppendNativeHistogram(prom_hist, *hist, out);
    }
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

}  // namespace rtrec
