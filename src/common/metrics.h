#ifndef RTREC_COMMON_METRICS_H_
#define RTREC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace rtrec {

/// A monotonically increasing thread-safe counter.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A settable thread-safe gauge.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A settable thread-safe gauge holding a double — for ratios, losses,
/// and other values an integer gauge cannot represent.
class DoubleGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A named registry of counters, gauges, and histograms, shared by the
/// stream engine, KV store, and model components. Lookup creates on first
/// use. Returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Lookup-or-create. The optional `help` is a one-line description
  /// emitted as the Prometheus "# HELP" line; the first non-empty help
  /// registered for a name wins, and a metric registered without one
  /// falls back to a generic default at export time.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  DoubleGauge* GetDoubleGauge(const std::string& name,
                              const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Snapshot of all metric names and scalar values (histograms render via
  /// Histogram::ToString). Sorted by name. Formatting happens outside the
  /// registry lock (a scrape must never stall hot-path GetCounter calls),
  /// so values across metrics are each read atomically but not as one
  /// consistent cut — fine for monitoring output.
  std::string Report() const;

  /// Options for PrometheusText.
  struct ExportOptions {
    /// Additionally export every histogram as a native Prometheus
    /// `histogram` family named "<name>_hist" (cumulative
    /// _bucket{le="..."} lines from the exponential buckets, plus _sum
    /// and _count). The summary family keeps its unsuffixed name for
    /// ledger compatibility — one name cannot carry both types.
    bool native_histograms = false;
  };

  /// The registry in Prometheus text exposition format (version 0.0.4):
  /// counters as "<name>_total" counters, gauges as gauges, histograms as
  /// summaries with p50/p95/p99 quantiles plus _sum and _count (and
  /// optionally as native histogram families; see ExportOptions). Every
  /// family is preceded by "# HELP" and "# TYPE" lines. Metric names are
  /// sanitized ('.' and every other character outside [a-zA-Z0-9_:]
  /// become '_'). Same locking discipline as Report().
  std::string PrometheusText(const ExportOptions& options) const;
  std::string PrometheusText() const { return PrometheusText(ExportOptions{}); }

  /// Process-wide default registry.
  static MetricsRegistry& Default();

 private:
  /// Name/pointer view of every registered metric, taken under the lock;
  /// pointers stay valid for the registry's lifetime.
  struct Snapshot {
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const DoubleGauge*>> double_gauges;
    std::vector<std::pair<std::string, const Histogram*>> histograms;
    std::map<std::string, std::string> help;
  };
  Snapshot Snap() const;

  void SetHelpLocked(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<DoubleGauge>> double_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_METRICS_H_
