#ifndef RTREC_COMMON_METRICS_H_
#define RTREC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace rtrec {

/// A monotonically increasing thread-safe counter.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A settable thread-safe gauge.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A named registry of counters, gauges, and histograms, shared by the
/// stream engine, KV store, and model components. Lookup creates on first
/// use. Returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all metric names and scalar values (histograms render via
  /// Histogram::ToString). Sorted by name.
  std::string Report() const;

  /// Process-wide default registry.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_METRICS_H_
