#include "common/random.h"

#include <cmath>

#include "common/types.h"

namespace rtrec {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through SplitMix64 so near-equal seeds diverge.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9E3779B97F4A7C15ull;
    word = MixHash64(s);
  }
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256** by Blackman & Vigna.
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::NextInt64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextUint64());
  }
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; cache the second deviate.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding drift.
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First index with cdf >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(std::size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace rtrec
