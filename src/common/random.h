#ifndef RTREC_COMMON_RANDOM_H_
#define RTREC_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace rtrec {

/// A small, fast, deterministic PRNG (xoshiro256**). Not cryptographic.
/// Every stochastic component in the library takes an explicit seed so
/// experiments are exactly reproducible.
class Rng {
 public:
  /// Seeds the generator; two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9Bull);

  /// Next raw 64 random bits.
  std::uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t NextUint64(std::uint64_t n);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  std::int64_t NextInt64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw.
  bool NextBool(double p_true);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextUint64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks one element uniformly. Requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[static_cast<std::size_t>(NextUint64(v.size()))];
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
/// Used to model video popularity skew: a few head videos absorb most
/// plays, exactly the regime the paper's candidate-selection design
/// assumes. Sampling is O(log n) via binary search over the cumulative
/// distribution (built once, O(n)).
class ZipfDistribution {
 public:
  /// Requires n >= 1 and exponent s >= 0 (s == 0 degenerates to uniform).
  ZipfDistribution(std::size_t n, double s);

  /// Draws a rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of `rank`.
  double Pmf(std::size_t rank) const;

  std::size_t n() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_.back() == 1.
};

}  // namespace rtrec

#endif  // RTREC_COMMON_RANDOM_H_
