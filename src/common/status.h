#ifndef RTREC_COMMON_STATUS_H_
#define RTREC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rtrec {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil convention: fallible APIs return `Status` (or
/// `StatusOr<T>`) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kAborted,
  kInternal,
  kUnavailable,
  kCorruption,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. An OK status carries no message
/// and no allocation; error statuses carry a code and a message.
///
/// Usage:
///   Status s = store.Put(key, value);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory functions, one per error category.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Holds either a `T` or a non-OK `Status`.
///
/// Usage:
///   StatusOr<FactorVector> v = store.GetUserVector(u);
///   if (!v.ok()) return v.status();
///   Use(v.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Constructs from a value; the result is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define RTREC_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::rtrec::Status _rtrec_status = (expr);     \
    if (!_rtrec_status.ok()) return _rtrec_status; \
  } while (false)

}  // namespace rtrec

#endif  // RTREC_COMMON_STATUS_H_
