#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rtrec {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

StatusOr<std::uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size() || buf[0] == '-') {
    return Status::InvalidArgument("bad uint64: '" + buf + "'");
  }
  return static_cast<std::uint64_t>(v);
}

StatusOr<std::int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad int64: '" + buf + "'");
  }
  return static_cast<std::int64_t>(v);
}

StatusOr<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad double: '" + buf + "'");
  }
  return v;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatCount(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace rtrec
