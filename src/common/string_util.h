#ifndef RTREC_COMMON_STRING_UTIL_H_
#define RTREC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rtrec {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view input, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a base-10 unsigned 64-bit integer; the whole input must parse.
StatusOr<std::uint64_t> ParseUint64(std::string_view s);

/// Parses a base-10 signed 64-bit integer; the whole input must parse.
StatusOr<std::int64_t> ParseInt64(std::string_view s);

/// Parses a floating point value; the whole input must parse.
StatusOr<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatCount(std::uint64_t n);

}  // namespace rtrec

#endif  // RTREC_COMMON_STRING_UTIL_H_
