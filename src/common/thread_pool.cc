#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace rtrec {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!shutdown_ && "Submit after Shutdown");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_chunks =
      std::min(n, std::max<std::size_t>(1, pool.num_threads() * 4));
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    pool.Submit([start, end, &fn] {
      for (std::size_t i = start; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace rtrec
