#ifndef RTREC_COMMON_THREAD_POOL_H_
#define RTREC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtrec {

/// A fixed-size pool of worker threads draining a FIFO task queue. Used by
/// batch baselines (AR mining, SimHash signature builds) and by the
/// evaluation harness to parallelize per-user scoring.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Never blocks. Must not be called after
  /// Shutdown().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
/// Work is chunked to limit task overhead.
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace rtrec

#endif  // RTREC_COMMON_THREAD_POOL_H_
