#ifndef RTREC_COMMON_TOP_K_H_
#define RTREC_COMMON_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace rtrec {

/// Maintains the K largest-scoring items by key, with upsert semantics:
/// inserting an existing key replaces its score. Backing storage is a small
/// sorted vector (descending score) plus an index map — similar-video lists
/// and hot-video lists are short (K <= a few hundred), where linear shifts
/// beat heap bookkeeping.
template <typename Key, typename KeyHash = std::hash<Key>>
class TopK {
 public:
  struct Entry {
    Key key;
    double score;
  };

  explicit TopK(std::size_t k) : k_(k == 0 ? 1 : k) {}

  /// Inserts or updates `key` with `score`. Returns true if the key is in
  /// the top-K after the call.
  bool Upsert(const Key& key, double score) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      entries_[it->second].score = score;
      Reposition(it->second);
      return true;
    }
    if (entries_.size() < k_) {
      entries_.push_back(Entry{key, score});
      index_[key] = entries_.size() - 1;
      Reposition(entries_.size() - 1);
      return true;
    }
    if (score <= entries_.back().score) return false;
    index_.erase(entries_.back().key);
    entries_.back() = Entry{key, score};
    index_[key] = entries_.size() - 1;
    Reposition(entries_.size() - 1);
    return true;
  }

  /// Returns the score of `key` if present.
  const double* Find(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &entries_[it->second].score;
  }

  /// Removes `key` if present. Returns true if removed.
  bool Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    const std::size_t pos = it->second;
    index_.erase(it);
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(pos));
    for (std::size_t i = pos; i < entries_.size(); ++i) {
      index_[entries_[i].key] = i;
    }
    return true;
  }

  /// Applies `fn(score)->score` to every entry (e.g. time decay), then
  /// restores ordering.
  template <typename Fn>
  void TransformScores(Fn fn) {
    for (auto& e : entries_) e.score = fn(e.score);
    std::stable_sort(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.score > b.score; });
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      index_[entries_[i].key] = i;
    }
  }

  /// Entries in descending score order.
  const std::vector<Entry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t k() const { return k_; }

 private:
  // Bubbles the entry at `pos` into sorted (descending) position.
  void Reposition(std::size_t pos) {
    while (pos > 0 && entries_[pos - 1].score < entries_[pos].score) {
      std::swap(entries_[pos - 1], entries_[pos]);
      index_[entries_[pos].key] = pos;
      --pos;
    }
    while (pos + 1 < entries_.size() &&
           entries_[pos].score < entries_[pos + 1].score) {
      std::swap(entries_[pos], entries_[pos + 1]);
      index_[entries_[pos].key] = pos;
      ++pos;
    }
    index_[entries_[pos].key] = pos;
  }

  std::size_t k_;
  std::vector<Entry> entries_;
  std::unordered_map<Key, std::size_t, KeyHash> index_;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_TOP_K_H_
