#include "common/trace.h"

#include <chrono>

namespace rtrec {
namespace {

thread_local TraceContext t_current_trace;

std::string StageMetricName(const char* prefix, std::string_view stage,
                            const char* suffix) {
  std::string name;
  name.reserve(std::char_traits<char>::length(prefix) + stage.size() +
               std::char_traits<char>::length(suffix));
  name += prefix;
  name += stage;
  name += suffix;
  return name;
}

}  // namespace

Tracer::Tracer(Options options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Default()),
      roots_counter_(metrics_->GetCounter("trace.roots")),
      sampled_counter_(metrics_->GetCounter("trace.sampled")) {}

TraceContext Tracer::StartTrace() {
  roots_counter_->Increment();
  if (options_.sample_every_n == 0) return {};
  const std::uint64_t n = roots_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.sample_every_n != 0) return {};
  TraceContext context;
  context.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  context.start_us = NowMicros();
  sampled_counter_->Increment();
  return context;
}

Histogram* Tracer::StageHistogram(std::string_view stage) {
  return metrics_->GetHistogram(StageMetricName("trace.stage.", stage, ".us"));
}

Histogram* Tracer::QueueHistogram(std::string_view stage) {
  return metrics_->GetHistogram(
      StageMetricName("trace.stage.", stage, ".queue_us"));
}

Histogram* Tracer::SinceRootHistogram(std::string_view stage) {
  return metrics_->GetHistogram(StageMetricName("trace.e2e.", stage, ".us"));
}

void Tracer::RecordSinceRoot(const TraceContext& context,
                             std::string_view stage) {
  if (!context.sampled()) return;
  SinceRootHistogram(stage)->Add(NowMicros() - context.start_us);
}

std::int64_t Tracer::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer& Tracer::Default() {
  static Tracer& tracer = *new Tracer();
  return tracer;
}

const TraceContext& CurrentTrace() { return t_current_trace; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : previous_(t_current_trace) {
  t_current_trace = context;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_trace = previous_; }

}  // namespace rtrec
