#include "common/trace.h"

#include <unistd.h>

#include <chrono>

namespace rtrec {
namespace {

thread_local TraceContext t_current_trace;

/// splitmix64 finalizer: a cheap bijective mixer. Used to spread the
/// (seed ^ counter) sequence over the full u64 space so trace ids minted
/// by different processes are distinct with overwhelming probability.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::string StageMetricName(const char* prefix, std::string_view stage,
                            const char* suffix) {
  std::string name;
  name.reserve(std::char_traits<char>::length(prefix) + stage.size() +
               std::char_traits<char>::length(suffix));
  name += prefix;
  name += stage;
  name += suffix;
  return name;
}

}  // namespace

Tracer::Tracer(Options options)
    : options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &MetricsRegistry::Default()),
      id_seed_(SplitMix64(static_cast<std::uint64_t>(NowMicros()) ^
                          (static_cast<std::uint64_t>(::getpid()) << 32) ^
                          reinterpret_cast<std::uintptr_t>(this))),
      roots_counter_(metrics_->GetCounter(
          "trace.roots", "trace roots seen at this process's boundaries")),
      sampled_counter_(metrics_->GetCounter(
          "trace.sampled", "trace roots that drew a sampled context")),
      adopted_counter_(metrics_->GetCounter(
          "trace.adopted",
          "sampled contexts adopted from the wire instead of minted")) {}

TraceContext Tracer::StartTrace() {
  roots_counter_->Increment();
  if (options_.sample_every_n == 0) return {};
  const std::uint64_t n = roots_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.sample_every_n != 0) return {};
  TraceContext context;
  const std::uint64_t seq = next_id_.fetch_add(1, std::memory_order_relaxed);
  context.id = SplitMix64(id_seed_ ^ seq);
  if (context.id == 0) context.id = 1;  // 0 means "not sampled".
  context.start_us = NowMicros();
  sampled_counter_->Increment();
  return context;
}

TraceContext Tracer::AdoptTrace(std::uint64_t trace_id, std::uint8_t hop) {
  if (trace_id == 0) return {};
  TraceContext context;
  context.id = trace_id;
  context.start_us = NowMicros();
  context.hop = hop;
  adopted_counter_->Increment();
  return context;
}

Histogram* Tracer::StageHistogram(std::string_view stage) {
  return metrics_->GetHistogram(StageMetricName("trace.stage.", stage, ".us"));
}

Histogram* Tracer::QueueHistogram(std::string_view stage) {
  return metrics_->GetHistogram(
      StageMetricName("trace.stage.", stage, ".queue_us"));
}

Histogram* Tracer::SinceRootHistogram(std::string_view stage) {
  return metrics_->GetHistogram(StageMetricName("trace.e2e.", stage, ".us"));
}

void Tracer::RecordSinceRoot(const TraceContext& context,
                             std::string_view stage) {
  if (!context.sampled()) return;
  SinceRootHistogram(stage)->Add(NowMicros() - context.start_us);
}

std::int64_t Tracer::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer& Tracer::Default() {
  static Tracer& tracer = *new Tracer();
  return tracer;
}

const TraceContext& CurrentTrace() { return t_current_trace; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : previous_(t_current_trace) {
  t_current_trace = context;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_trace = previous_; }

}  // namespace rtrec
