#ifndef RTREC_COMMON_TRACE_H_
#define RTREC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/metrics.h"

namespace rtrec {

/// Lightweight request/tuple tracing with bounded-overhead sampling.
///
/// A *trace* follows one unit of work — a user action entering the Fig. 2
/// topology at the spout, or an RPC entering RecServer — across every
/// stage it touches: bolts, the KV stores behind them, the service, the
/// wire. A Tracer mints a TraceContext at the boundary; the context rides
/// along (tuple envelopes in the stream engine, a thread-local in
/// call-stack-shaped layers) and each stage records its elapsed time into
/// per-stage latency histograms in a MetricsRegistry:
///
///   trace.stage.<stage>.us        in-stage processing time
///   trace.stage.<stage>.queue_us  queue wait before the stage (stream only)
///   trace.e2e.<stage>.us          time since the trace root when the
///                                 stage finished (at the terminal stage
///                                 this is the pipeline's end-to-end
///                                 latency)
///
/// Sampling is deterministic 1-in-N (an atomic round-robin counter, not a
/// coin flip), so tests and benches get exact expected counts and the
/// overhead bound is a hard guarantee: N-1 of every N roots carry a null
/// context and pay one branch per stage, no clock reads, no histogram
/// work.
///
/// The histograms land in the registry passed at construction (the
/// process Default() registry for Tracer::Default()), so they are
/// scraped by the same Stats RPC / Prometheus endpoint as every other
/// metric and feed the per-stage percentiles in the bench ledger.

/// The sampling decision plus the trace identity, carried with the work.
/// A default-constructed (id == 0) context means "not sampled": every
/// recording operation on it is a no-op.
struct TraceContext {
  /// Unique per sampled trace; 0 = not sampled. Ids are mixed with a
  /// per-process seed (splitmix64) so traces minted on different shards
  /// of a cluster never collide and cross-process spans stitch by id.
  std::uint64_t id = 0;
  /// Steady-clock microseconds when the trace was minted at its root.
  std::int64_t start_us = 0;
  /// Failover hop depth: 0 for the shard that owns the key, +1 per
  /// ClusterClient failover attempt. Carried on the wire so a shard
  /// serving out of preference order shows up in the stitched trace.
  std::uint8_t hop = 0;

  bool sampled() const { return id != 0; }
};

class Tracer {
 public:
  struct Options {
    /// Sample one trace root in every `sample_every_n`. 1 traces
    /// everything, 0 disables tracing entirely (StartTrace always
    /// returns a null context).
    std::uint32_t sample_every_n = 64;
    /// Histogram/counter sink; null falls back to
    /// MetricsRegistry::Default().
    MetricsRegistry* metrics = nullptr;
  };

  Tracer() : Tracer(Options{}) {}
  explicit Tracer(Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Mints a context at a trace boundary. Thread-safe. Exactly one call
  /// in every `sample_every_n` returns a sampled context (deterministic
  /// round-robin); the rest return a null context at the cost of one
  /// atomic increment. Counts "trace.roots" and "trace.sampled".
  TraceContext StartTrace();

  /// Adopts a sampled context that arrived over the wire instead of
  /// minting a new root (Dapper semantics: the sampling decision is made
  /// once, at the root; downstream processes honor it regardless of
  /// their local sample rate). `start_us` is this process's local clock
  /// — since-root spans stay per-process; cross-process stitching is by
  /// trace id. Counts "trace.adopted".
  TraceContext AdoptTrace(std::uint64_t trace_id, std::uint8_t hop);

  /// Named histograms a stage records into. Callers on hot paths should
  /// resolve these once (at task/handler setup) and reuse the pointer —
  /// lookup takes the registry lock.
  Histogram* StageHistogram(std::string_view stage);      // trace.stage.<s>.us
  Histogram* QueueHistogram(std::string_view stage);      // trace.stage.<s>.queue_us
  Histogram* SinceRootHistogram(std::string_view stage);  // trace.e2e.<s>.us

  /// Records `now - context.start_us` into SinceRootHistogram(stage).
  /// No-op for unsampled contexts.
  void RecordSinceRoot(const TraceContext& context, std::string_view stage);

  /// Steady-clock microseconds (the clock trace timestamps use).
  static std::int64_t NowMicros();

  MetricsRegistry& metrics() { return *metrics_; }
  std::uint32_t sample_every_n() const { return options_.sample_every_n; }

  /// Process-wide tracer over MetricsRegistry::Default() (sample rate
  /// from Options defaults).
  static Tracer& Default();

 private:
  Options options_;
  MetricsRegistry* metrics_;
  std::atomic<std::uint64_t> roots_{0};
  std::atomic<std::uint64_t> next_id_{0};
  std::uint64_t id_seed_;
  Counter* roots_counter_;
  Counter* sampled_counter_;
  Counter* adopted_counter_;
};

/// The trace context attached to the calling thread (null context when
/// none is installed). Lets layers shaped like a call stack — the
/// service, engines, KV stores — attach spans to the enclosing request's
/// trace without plumbing a context parameter through every signature.
const TraceContext& CurrentTrace();

/// RAII install of `context` as the thread's current trace; restores the
/// previous context on destruction (nesting-safe).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

/// RAII span tied to the thread's current trace: records elapsed
/// microseconds into `hist` on destruction iff the thread carried a
/// sampled trace at construction. When it did not, the whole span costs
/// one thread-local read and a branch — no clock reads. A null `hist`
/// also disables the span.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* hist)
      : hist_(hist != nullptr && CurrentTrace().sampled() ? hist : nullptr),
        trace_id_(hist_ != nullptr ? CurrentTrace().id : 0),
        start_us_(hist_ != nullptr ? Tracer::NowMicros() : 0) {}

  ~TraceSpan() {
    if (hist_ != nullptr) {
      hist_->AddWithExemplar(Tracer::NowMicros() - start_us_, trace_id_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t trace_id_;
  std::int64_t start_us_;
};

}  // namespace rtrec

#endif  // RTREC_COMMON_TRACE_H_
