#ifndef RTREC_COMMON_TYPES_H_
#define RTREC_COMMON_TYPES_H_

#include <cstdint>
#include <functional>

namespace rtrec {

/// Identifier of a (possibly unregistered) user. Unregistered users get
/// transient ids derived from device/session cookies, exactly like the
/// production system the paper describes; the model does not distinguish.
using UserId = std::uint64_t;

/// Identifier of a video in the catalog.
using VideoId = std::uint64_t;

/// Identifier of a demographic user group (see demographic/grouper.h).
/// `kGlobalGroup` denotes the whole population.
using GroupId = std::uint32_t;
inline constexpr GroupId kGlobalGroup = 0xFFFFFFFFu;

/// Identifier of a fine-grained video type/category (Eq. 10 of the paper).
using VideoType = std::uint32_t;

/// Milliseconds since the Unix epoch. All stream elements are stamped.
using Timestamp = std::int64_t;

inline constexpr Timestamp kMillisPerSecond = 1000;
inline constexpr Timestamp kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr Timestamp kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr Timestamp kMillisPerDay = 24 * kMillisPerHour;

/// An unordered pair of videos, normalized so `first <= second`. Keys the
/// similar-video pair state (Eq. 11-12 update-time bookkeeping).
struct VideoPair {
  VideoId first = 0;
  VideoId second = 0;

  VideoPair() = default;
  VideoPair(VideoId a, VideoId b) : first(a < b ? a : b),
                                    second(a < b ? b : a) {}

  friend bool operator==(const VideoPair&, const VideoPair&) = default;
};

/// 64-bit mix used for hashing ids and pairs (SplitMix64 finalizer).
inline std::uint64_t MixHash64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct VideoPairHash {
  std::size_t operator()(const VideoPair& p) const {
    return static_cast<std::size_t>(
        MixHash64(MixHash64(p.first) ^ (p.second + 0x9E3779B97F4A7C15ull)));
  }
};

}  // namespace rtrec

#endif  // RTREC_COMMON_TYPES_H_
