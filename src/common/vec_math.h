#ifndef RTREC_COMMON_VEC_MATH_H_
#define RTREC_COMMON_VEC_MATH_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace rtrec {

/// Inner product of two equal-length float arrays, accumulated in double.
/// Four independent accumulators break the loop-carried dependency so the
/// compiler can keep multiple FMAs in flight (and vectorize the
/// float→double widening); summation order therefore differs from the
/// naive loop by O(ε) — callers must not rely on bit-exact totals.
inline double Dot(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    s1 += static_cast<double>(a[i + 1]) * static_cast<double>(b[i + 1]);
    s2 += static_cast<double>(a[i + 2]) * static_cast<double>(b[i + 2]);
    s3 += static_cast<double>(a[i + 3]) * static_cast<double>(b[i + 3]);
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

/// Inner product of two equal-length float vectors, accumulated in double.
inline double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  assert(a.size() == b.size());
  return Dot(a.data(), b.data(), a.size());
}

/// Squared Euclidean norm.
inline double NormSquared(const std::vector<float>& a) {
  double sum = 0.0;
  for (float v : a) sum += static_cast<double>(v) * static_cast<double>(v);
  return sum;
}

/// Euclidean norm.
inline double Norm(const std::vector<float>& a) {
  return std::sqrt(NormSquared(a));
}

/// Cosine similarity; 0 when either vector is (numerically) zero.
inline double CosineSimilarity(const std::vector<float>& a,
                               const std::vector<float>& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace rtrec

#endif  // RTREC_COMMON_VEC_MATH_H_
