#ifndef RTREC_COMMON_VEC_MATH_H_
#define RTREC_COMMON_VEC_MATH_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace rtrec {

/// Inner product of two equal-length float vectors, accumulated in double.
inline double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

/// Squared Euclidean norm.
inline double NormSquared(const std::vector<float>& a) {
  double sum = 0.0;
  for (float v : a) sum += static_cast<double>(v) * static_cast<double>(v);
  return sum;
}

/// Euclidean norm.
inline double Norm(const std::vector<float>& a) {
  return std::sqrt(NormSquared(a));
}

/// Cosine similarity; 0 when either vector is (numerically) zero.
inline double CosineSimilarity(const std::vector<float>& a,
                               const std::vector<float>& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace rtrec

#endif  // RTREC_COMMON_VEC_MATH_H_
