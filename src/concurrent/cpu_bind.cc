#include "concurrent/cpu_bind.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace rtrec::concurrent {

#if defined(__linux__)

std::vector<int> CpuBind::AllowedCpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  std::vector<int> cpus;
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
  }
  return cpus;
}

int CpuBind::NumCpus() {
  const std::vector<int> cpus = AllowedCpus();
  if (!cpus.empty()) return static_cast<int>(cpus.size());
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Status CpuBind::PinCurrentThread(int cpu) {
  if (cpu < 0 || cpu >= CPU_SETSIZE) {
    return Status::InvalidArgument("cpu id out of range");
  }
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0 &&
      !CPU_ISSET(cpu, &allowed)) {
    return Status::InvalidArgument("cpu not in this process's affinity mask");
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return Status::Internal("pthread_setaffinity_np failed");
  }
  return Status::OK();
}

int CpuBind::CurrentCpu() {
  const int cpu = sched_getcpu();
  return cpu < 0 ? -1 : cpu;
}

#else  // !__linux__

std::vector<int> CpuBind::AllowedCpus() {
  std::vector<int> cpus;
  const int n = NumCpus();
  for (int cpu = 0; cpu < n; ++cpu) cpus.push_back(cpu);
  return cpus;
}

int CpuBind::NumCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Status CpuBind::PinCurrentThread(int cpu) {
  (void)cpu;
  return Status::Unavailable("CPU pinning is Linux-only");
}

int CpuBind::CurrentCpu() { return -1; }

#endif  // __linux__

CpuBindPlan::CpuBindPlan(bool enabled) {
  if (enabled) cpus_ = CpuBind::AllowedCpus();
}

int CpuBindPlan::NextCpu() {
  if (cpus_.empty()) return -1;
  const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
  return cpus_[i % cpus_.size()];
}

}  // namespace rtrec::concurrent
