#ifndef RTREC_CONCURRENT_CPU_BIND_H_
#define RTREC_CONCURRENT_CPU_BIND_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace rtrec::concurrent {

/// Per-thread CPU affinity control. On Linux this wraps
/// sched_getaffinity / pthread_setaffinity_np; elsewhere every setter
/// returns Unavailable and queries fall back to
/// std::thread::hardware_concurrency, so callers can treat pinning as
/// best-effort everywhere.
class CpuBind {
 public:
  /// Number of CPUs this process may run on (the affinity mask's
  /// population count, not the machine's core count).
  static int NumCpus();

  /// The CPU ids in this process's affinity mask, ascending. May be
  /// empty only if the platform query fails entirely.
  static std::vector<int> AllowedCpus();

  /// Pins the calling thread to `cpu`. InvalidArgument if `cpu` is not
  /// in the allowed set, Unavailable off Linux, Internal on a syscall
  /// failure.
  static Status PinCurrentThread(int cpu);

  /// The CPU the calling thread is currently running on, or -1 if
  /// unknown.
  static int CurrentCpu();
};

/// Round-robin assignment of task threads to allowed CPUs — the
/// topology's pinning policy. Thread-safe: tasks call NextCpu as they
/// start. With fewer CPUs than tasks the assignment wraps, which keeps
/// each queue's producer/consumer pair on a stable CPU pair; on a
/// single-CPU host every task maps to that CPU and pinning is a no-op.
class CpuBindPlan {
 public:
  /// A disabled plan (enabled=false) hands out -1 forever.
  explicit CpuBindPlan(bool enabled = true);

  /// Next CPU id in round-robin order, or -1 when disabled or no
  /// affinity information is available.
  int NextCpu();

  std::size_t num_cpus() const { return cpus_.size(); }

 private:
  std::vector<int> cpus_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace rtrec::concurrent

#endif  // RTREC_CONCURRENT_CPU_BIND_H_
