#ifndef RTREC_CONCURRENT_LATENCY_STATS_H_
#define RTREC_CONCURRENT_LATENCY_STATS_H_

#include <cstdint>

#include "common/histogram.h"

namespace rtrec {
namespace concurrent {

/// Deterministic 1-in-N latency sampler for hot paths that cannot
/// afford a clock read per event. The owner calls Tick() per event; a
/// true return means "stamp this one", and the measured duration is
/// later fed back through Record(). Tick is branch-plus-increment, so
/// the unsampled cost is a couple of cycles.
///
/// Single-threaded by design: one instance lives inside one task (the
/// stream engine keeps one per producer task for queue-wait stamping).
/// The histogram itself is thread-safe, so many samplers may share one.
class LatencyStats {
 public:
  LatencyStats() = default;
  LatencyStats(Histogram* histogram, std::uint32_t sample_every_n)
      : histogram_(histogram),
        every_n_(sample_every_n == 0 ? 1 : sample_every_n) {}

  /// True for exactly one call in every `sample_every_n`.
  bool Tick() {
    if (++tick_ < every_n_) return false;
    tick_ = 0;
    return true;
  }

  /// Feeds one sampled measurement (microseconds) into the histogram;
  /// no-op when no histogram is attached.
  void Record(std::int64_t value_us) {
    if (histogram_ != nullptr) histogram_->Add(value_us);
  }

  Histogram* histogram() const { return histogram_; }
  std::uint32_t sample_every_n() const { return every_n_; }

 private:
  Histogram* histogram_ = nullptr;
  std::uint32_t every_n_ = 64;
  std::uint32_t tick_ = 0;
};

}  // namespace concurrent
}  // namespace rtrec

#endif  // RTREC_CONCURRENT_LATENCY_STATS_H_
