#ifndef RTREC_CONCURRENT_MPSC_RING_H_
#define RTREC_CONCURRENT_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "concurrent/spsc_ring.h"  // kCacheLineSize, CeilPow2

namespace rtrec::concurrent {

/// Bounded multi-producer single-consumer ring: the fan-in queue a
/// fields-grouped bolt needs when several upstream tasks feed one task.
///
/// Design is the classic sequence-stamped bounded queue (Vyukov): every
/// slot carries a sequence number producers claim with one CAS on the
/// shared tail; the slot's own sequence then hands the finished write to
/// the consumer, so a producer that stalls mid-write blocks only the
/// slot it claimed, never the whole ring. Producers are lock-free
/// (obstruction between producers is one CAS retry), the single consumer
/// is wait-free per slot.
///
/// Per-producer FIFO holds: one producer's pushes claim increasing slots
/// and the consumer releases slots in order.
///
/// Thread contract: any number of threads may call TryPush; exactly one
/// thread calls TryPop / TryPopBatch.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t min_capacity)
      : capacity_(CeilPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Moves `item` into the ring. Returns false (item untouched) when
  /// full.
  bool TryPush(T& item) {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[tail & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(tail);
      if (diff == 0) {
        // Slot is free at our ticket; claim it.
        if (tail_.compare_exchange_weak(tail, tail + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(item);
          slot.seq.store(tail + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `tail` was reloaded, retry with the new ticket.
      } else if (diff < 0) {
        return false;  // Ring full: consumer has not recycled this slot.
      } else {
        tail = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Moves the oldest item into `out`. Returns false when empty (or the
  /// next slot's producer has claimed but not yet published).
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[head & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(head + 1) <
        0) {
      return false;
    }
    out = std::move(slot.value);
    slot.value = T();  // Release payload resources eagerly.
    slot.seq.store(head + capacity_, std::memory_order_release);
    head_.store(head + 1, std::memory_order_relaxed);
    return true;
  }

  /// Appends up to `max_items` published items to `out` in slot order.
  /// Stops early at the first unpublished slot. Returns the number
  /// taken.
  std::size_t TryPopBatch(std::vector<T>& out, std::size_t max_items) {
    std::size_t n = 0;
    std::size_t head = head_.load(std::memory_order_relaxed);
    while (n < max_items) {
      Slot& slot = slots_[head & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<std::intptr_t>(seq) -
              static_cast<std::intptr_t>(head + 1) <
          0) {
        break;
      }
      out.push_back(std::move(slot.value));
      slot.value = T();
      slot.seq.store(head + capacity_, std::memory_order_release);
      ++head;
      ++n;
    }
    if (n > 0) head_.store(head, std::memory_order_relaxed);
    return n;
  }

  std::size_t capacity() const { return capacity_; }

  /// Racy size estimate; counts slots claimed by producers even before
  /// their writes are published (a parking consumer must treat an
  /// in-flight claim as pending work).
  std::size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value;
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  // Consumer index and producer ticket on separate cache lines.
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLineSize) char pad_end_[kCacheLineSize] = {};
};

}  // namespace rtrec::concurrent

#endif  // RTREC_CONCURRENT_MPSC_RING_H_
