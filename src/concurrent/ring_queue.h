#ifndef RTREC_CONCURRENT_RING_QUEUE_H_
#define RTREC_CONCURRENT_RING_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "concurrent/cpu_bind.h"
#include "concurrent/mpsc_ring.h"
#include "concurrent/spsc_ring.h"
#include "concurrent/wait_strategy.h"

namespace rtrec::concurrent {

/// Blocking bounded queue over a lock-free ring — the stream engine's
/// task queue. The data path (push, pop, batch drain) is the underlying
/// SPSC or MPSC ring and never takes a lock; the mutex/condvar pair is
/// only the *parking lot* for a side that found the ring full (producer
/// backpressure) or empty (idle consumer) after an adaptive
/// spin-then-yield phase. A push into an empty ring therefore costs a
/// ring write plus one relaxed flag load; the wake syscall fires only
/// when the counterpart actually parked.
///
/// Semantics mirror the mutex BoundedQueue it replaces:
///   - Push blocks when full (end-to-end backpressure) and returns
///     false only once the queue is closed;
///   - Pop/PopBatch block when empty, drain remaining items after
///     Close, then return nullopt / 0;
///   - Close is idempotent and wakes every parked thread.
///
/// Thread contract: single consumer always; single producer only when
/// Options::single_producer promised it (the ring is chosen
/// accordingly).
///
/// Lost-wakeup note: parking uses the Dekker pattern (park flag store →
/// seq_cst fence → ring recheck on one side; ring write → seq_cst fence
/// → park flag load on the other). The parked waits are additionally
/// time-bounded (kParkWait) so even a platform where the fence
/// reasoning failed would degrade to a bounded stall, never a hang.
template <typename T>
class RingQueue {
 public:
  /// Shared counters surfaced in the metrics registry; any pointer may
  /// be null. Several queues typically share one set (topology-wide
  /// "stream.queue.*" totals).
  struct Stats {
    Counter* push_retries = nullptr;    // Pushes that found the ring full.
    Counter* batch_drains = nullptr;    // PopBatch calls returning >= 1.
    Counter* parked_wakeups = nullptr;  // Consumer wakeups after a park.
  };

  struct Options {
    /// Minimum capacity; rounded up to a power of two.
    std::size_t capacity = 1024;
    /// Promise that exactly one thread pushes — selects the cheaper
    /// wait-free SPSC ring instead of the CAS-based MPSC ring.
    bool single_producer = false;
    /// Busy-wait budget before parking; defaults adapt to the host CPU
    /// count (no spinning on a single-CPU host).
    SpinPolicy spin = SpinPolicy::ForHost(CpuBind::NumCpus());
    Stats stats;
  };

  explicit RingQueue(Options options)
      : options_(options), spin_(options.spin) {
    if (options_.single_producer) {
      spsc_ = std::make_unique<SpscRing<T>>(options_.capacity);
    } else {
      mpsc_ = std::make_unique<MpscRing<T>>(options_.capacity);
    }
  }

  explicit RingQueue(std::size_t capacity)
      : RingQueue(MakeOptions(capacity)) {}

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  /// Blocks until the item is in the ring or the queue is closed.
  /// Returns false iff closed (item dropped).
  bool Push(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (RingPush(item)) {
      WakeConsumerIfParked();
      return true;
    }
    Bump(options_.stats.push_retries);
    while (!closed_.load(std::memory_order_acquire)) {
      for (int i = 0; i < spin_.spins; ++i) {
        CpuPause();
        if (RingPush(item)) {
          WakeConsumerIfParked();
          return true;
        }
      }
      for (int i = 0; i < spin_.yields; ++i) {
        std::this_thread::yield();
        if (RingPush(item)) {
          WakeConsumerIfParked();
          return true;
        }
      }
      // Park. The retry after raising producers_parked_ (inside the
      // lock) closes the race against a consumer that drained the ring
      // and checked the flag before we raised it.
      std::unique_lock<std::mutex> lock(park_mu_);
      producers_parked_.fetch_add(1, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (RingPush(item)) {
        producers_parked_.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
        WakeConsumerIfParked();
        return true;
      }
      if (!closed_.load(std::memory_order_acquire)) {
        producer_cv_.wait_for(lock, kParkWait);
      }
      producers_parked_.fetch_sub(1, std::memory_order_relaxed);
    }
    return false;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (!RingPush(item)) return false;
    WakeConsumerIfParked();
    return true;
  }

  /// Blocks until at least one item is available, appends up to
  /// `max_items` of them to `out` in FIFO order, and returns the count.
  /// Returns 0 only when the queue is closed and fully drained.
  std::size_t PopBatch(std::vector<T>& out, std::size_t max_items) {
    if (max_items == 0) max_items = 1;
    for (;;) {
      std::size_t n = RingPopBatch(out, max_items);
      if (n > 0) {
        Bump(options_.stats.batch_drains);
        WakeProducersIfParked();
        return n;
      }
      if (closed_.load(std::memory_order_acquire)) {
        // Final drain: items pushed before Close must still come out.
        n = RingPopBatch(out, max_items);
        if (n > 0) {
          Bump(options_.stats.batch_drains);
          WakeProducersIfParked();
        }
        return n;
      }
      for (int i = 0; i < spin_.spins && SizeApprox() == 0; ++i) CpuPause();
      for (int i = 0; i < spin_.yields && SizeApprox() == 0; ++i) {
        std::this_thread::yield();
      }
      if (SizeApprox() != 0) {
        // Items exist but are not poppable yet (an MPSC producer
        // claimed a slot mid-write). Yield so it can publish; never
        // tight-spin here — on a single CPU that would stall the very
        // thread we are waiting for.
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lock(park_mu_);
      consumer_parked_.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (SizeApprox() != 0 || closed_.load(std::memory_order_acquire)) {
        consumer_parked_.store(false, std::memory_order_relaxed);
        continue;
      }
      consumer_cv_.wait_for(lock, kParkWait);
      consumer_parked_.store(false, std::memory_order_relaxed);
      Bump(options_.stats.parked_wakeups);
    }
  }

  /// Blocking single pop; nullopt only when closed and drained.
  std::optional<T> Pop() {
    std::vector<T> one;
    one.reserve(1);
    if (PopBatch(one, 1) == 0) return std::nullopt;
    return std::move(one.front());
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    T out;
    if (!RingTryPop(out)) return std::nullopt;
    WakeProducersIfParked();
    return out;
  }

  /// Closes the queue: pending and future pushes return false, pops
  /// drain then report exhaustion. Idempotent.
  void Close() {
    closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(park_mu_);
    consumer_cv_.notify_all();
    producer_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t capacity() const {
    return spsc_ != nullptr ? spsc_->capacity() : mpsc_->capacity();
  }

  std::size_t SizeApprox() const {
    return spsc_ != nullptr ? spsc_->SizeApprox() : mpsc_->SizeApprox();
  }

  bool single_producer() const { return options_.single_producer; }

 private:
  static constexpr std::chrono::milliseconds kParkWait{1};

  static Options MakeOptions(std::size_t capacity) {
    Options options;
    options.capacity = capacity;
    return options;
  }

  static void Bump(Counter* counter) {
    if (counter != nullptr) counter->Increment();
  }

  bool RingPush(T& item) {
    return spsc_ != nullptr ? spsc_->TryPush(item) : mpsc_->TryPush(item);
  }
  bool RingTryPop(T& out) {
    return spsc_ != nullptr ? spsc_->TryPop(out) : mpsc_->TryPop(out);
  }
  std::size_t RingPopBatch(std::vector<T>& out, std::size_t max_items) {
    return spsc_ != nullptr ? spsc_->TryPopBatch(out, max_items)
                            : mpsc_->TryPopBatch(out, max_items);
  }

  void WakeConsumerIfParked() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (consumer_parked_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(park_mu_);
      consumer_cv_.notify_one();
    }
  }

  void WakeProducersIfParked() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (producers_parked_.load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> lock(park_mu_);
      producer_cv_.notify_all();
    }
  }

  const Options options_;
  const SpinPolicy spin_;
  std::unique_ptr<SpscRing<T>> spsc_;
  std::unique_ptr<MpscRing<T>> mpsc_;

  std::atomic<bool> closed_{false};
  std::atomic<bool> consumer_parked_{false};
  std::atomic<int> producers_parked_{0};
  std::mutex park_mu_;
  std::condition_variable consumer_cv_;
  std::condition_variable producer_cv_;
};

}  // namespace rtrec::concurrent

#endif  // RTREC_CONCURRENT_RING_QUEUE_H_
