#ifndef RTREC_CONCURRENT_SPSC_RING_H_
#define RTREC_CONCURRENT_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace rtrec::concurrent {

/// Cache-line size assumed for padding. 64 bytes covers x86-64 and most
/// aarch64 parts; over-padding on exotic hosts only wastes a few bytes.
inline constexpr std::size_t kCacheLineSize = 64;

/// Smallest power of two >= v (and >= 2).
inline std::size_t CeilPow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

/// Bounded single-producer single-consumer ring (Lamport queue with
/// cached counterparts). Wait-free on both sides: TryPush/TryPop never
/// loop or CAS. The head and tail indices live on separate cache lines,
/// each co-located with that side's *cached* copy of the opposite index,
/// so the fast path touches one line and only a full/empty boundary
/// forces a cross-core load.
///
/// Capacity rounds up to a power of two so wrap-around is a mask, not a
/// modulo. Indices increase monotonically and are compared by
/// difference, so unsigned wrap of the counters themselves is harmless.
///
/// Thread contract: exactly one thread calls TryPush, exactly one
/// (possibly different) thread calls TryPop / TryPopBatch. SizeApprox
/// may be called from anywhere.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : capacity_(CeilPow2(min_capacity < 2 ? 2 : min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Moves `item` into the ring. Returns false (item untouched) when
  /// full.
  bool TryPush(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Moves the oldest item into `out`. Returns false when empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Appends up to `max_items` oldest items to `out` in FIFO order with
  /// a single index update — the batched hand-off that lets a consumer
  /// amortize one wakeup over many tuples. Returns the number taken.
  std::size_t TryPopBatch(std::vector<T>& out, std::size_t max_items) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    cached_tail_ = tail_.load(std::memory_order_acquire);
    std::size_t n = cached_tail_ - head;
    if (n > max_items) n = max_items;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(slots_[(head + i) & mask_]));
    }
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  std::size_t capacity() const { return capacity_; }

  /// Racy size estimate (exact when both sides are quiescent).
  std::size_t SizeApprox() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;

  // Consumer cache line: the consumer index plus its stale view of tail.
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
  // Producer cache line: the producer index plus its stale view of head.
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  // Trailing pad so an adjacent allocation cannot false-share tail_.
  alignas(kCacheLineSize) char pad_end_[kCacheLineSize] = {};
};

}  // namespace rtrec::concurrent

#endif  // RTREC_CONCURRENT_SPSC_RING_H_
