#ifndef RTREC_CONCURRENT_WAIT_STRATEGY_H_
#define RTREC_CONCURRENT_WAIT_STRATEGY_H_

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rtrec::concurrent {

/// One CPU-relax iteration for busy-wait loops: keeps the core from
/// speculating past the loop and (on SMT) yields pipeline slots to the
/// sibling thread without a syscall.
inline void CpuPause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// How long a ring-queue side busy-waits before parking on a
/// condition variable. Spins are CpuPause iterations (no syscall),
/// yields are sched_yield rounds (cheap syscall, lets the counterpart
/// run on an oversubscribed host); after both are exhausted the caller
/// parks. The zero-spin configuration is what a single-CPU host wants:
/// spinning there burns the exact timeslice the counterpart needs.
struct SpinPolicy {
  int spins = 128;
  int yields = 4;

  /// Policy adapted to the host: no spinning when only one CPU is
  /// available (the counterpart cannot be running concurrently).
  static SpinPolicy ForHost(int num_cpus) {
    SpinPolicy policy;
    if (num_cpus <= 1) policy.spins = 0;
    return policy;
  }
};

}  // namespace rtrec::concurrent

#endif  // RTREC_CONCURRENT_WAIT_STRATEGY_H_
