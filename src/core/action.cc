#include "core/action.h"

#include "common/string_util.h"

namespace rtrec {

const char* ActionTypeToString(ActionType type) {
  switch (type) {
    case ActionType::kImpress:
      return "impress";
    case ActionType::kClick:
      return "click";
    case ActionType::kPlay:
      return "play";
    case ActionType::kPlayTime:
      return "play_time";
    case ActionType::kComment:
      return "comment";
    case ActionType::kLike:
      return "like";
    case ActionType::kShare:
      return "share";
  }
  return "unknown";
}

StatusOr<ActionType> ActionTypeFromString(const std::string& name) {
  for (int i = 0; i < kNumActionTypes; ++i) {
    const ActionType type = static_cast<ActionType>(i);
    if (name == ActionTypeToString(type)) return type;
  }
  return Status::InvalidArgument("unknown action type '" + name + "'");
}

std::string ActionToString(const UserAction& action) {
  return StringPrintf("u=%llu v=%llu %s f=%.3f t=%lld",
                      static_cast<unsigned long long>(action.user),
                      static_cast<unsigned long long>(action.video),
                      ActionTypeToString(action.type), action.view_fraction,
                      static_cast<long long>(action.time));
}

}  // namespace rtrec
