#ifndef RTREC_CORE_ACTION_H_
#define RTREC_CORE_ACTION_H_

#include <string>

#include "common/status.h"
#include "common/types.h"

namespace rtrec {

/// The implicit-feedback user behaviours of Section 3.2 / Table 1.
enum class ActionType {
  /// Video i was displayed to user u (no engagement signal).
  kImpress = 0,
  /// User clicked through to the video page.
  kClick,
  /// Playback started.
  kPlay,
  /// A play finished (or was sampled); carries the viewed fraction.
  kPlayTime,
  /// User commented on the video.
  kComment,
  /// User liked / thumbed-up the video.
  kLike,
  /// User shared the video.
  kShare,
};

/// Number of distinct ActionType values.
inline constexpr int kNumActionTypes = 7;

/// Stable lowercase name ("impress", "click", ...).
const char* ActionTypeToString(ActionType type);

/// Parses the name produced by ActionTypeToString.
StatusOr<ActionType> ActionTypeFromString(const std::string& name);

/// One element of the user-action stream: the tuple
/// <user, video, action, value, time> the spout emits (Fig. 2).
struct UserAction {
  UserId user = 0;
  VideoId video = 0;
  ActionType type = ActionType::kImpress;
  /// For kPlayTime: the viewed fraction vrate = t_ui / t_i in [0, 1].
  /// Ignored for other types.
  double view_fraction = 0.0;
  Timestamp time = 0;

  friend bool operator==(const UserAction&, const UserAction&) = default;
};

/// Renders an action for logs: "u=12 v=34 play_time f=0.82 t=1000".
std::string ActionToString(const UserAction& action);

}  // namespace rtrec

#endif  // RTREC_CORE_ACTION_H_
