#include "core/engine.h"

#include <cassert>
#include <utility>

namespace rtrec {

Status RecEngine::Options::Validate() const {
  RTREC_RETURN_IF_ERROR(model.Validate());
  RTREC_RETURN_IF_ERROR(similarity.Validate());
  RTREC_RETURN_IF_ERROR(recommend.Validate());
  if (history_per_user == 0) {
    return Status::InvalidArgument("history_per_user must be positive");
  }
  return Status::OK();
}

RecEngine::RecEngine(VideoTypeResolver type_resolver)
    : RecEngine(std::move(type_resolver), Options{}) {}

RecEngine::RecEngine(VideoTypeResolver type_resolver, Options options)
    : options_(std::move(options)) {
  assert(options_.Validate().ok());

  FactorStore::Options factor_options;
  factor_options.num_factors = options_.model.num_factors;
  factor_options.init_scale = options_.model.init_scale;
  factor_options.seed = options_.model.seed;
  factor_options.precision = options_.model.precision;
  factor_options.metrics = options_.metrics;
  factors_ = std::make_unique<FactorStore>(factor_options);

  HistoryStore::Options history_options;
  history_options.max_entries_per_user = options_.history_per_user;
  history_ = std::make_unique<HistoryStore>(history_options);

  SimTableStore::Options table_options;
  table_options.top_k = options_.similarity.top_k;
  table_options.xi_millis = options_.similarity.xi_millis;
  sim_table_ = std::make_unique<SimTableStore>(table_options);

  model_ = std::make_unique<OnlineMf>(factors_.get(), options_.model);
  model_->set_validation_hook(options_.validation_hook);
  updater_ = std::make_unique<SimTableUpdater>(
      factors_.get(), history_.get(), sim_table_.get(),
      std::move(type_resolver), options_.similarity,
      options_.model.feedback);
  recommender_ = std::make_unique<MfRecommender>(
      model_.get(), history_.get(), sim_table_.get(), updater_.get(),
      options_.recommend, options_.metrics);
}

void RecEngine::Observe(const UserAction& action) {
  recommender_->Observe(action);
}

StatusOr<std::vector<ScoredVideo>> RecEngine::Recommend(
    const RecRequest& request) {
  return recommender_->Recommend(request);
}

}  // namespace rtrec
