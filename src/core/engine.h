#ifndef RTREC_CORE_ENGINE_H_
#define RTREC_CORE_ENGINE_H_

#include <memory>

#include "common/metrics.h"
#include "core/model_config.h"
#include "core/online_mf.h"
#include "core/recommender.h"
#include "core/sim_table.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {

/// A complete single-process rMF engine: the factor store, user
/// histories, similar-video tables, the online MF model, the incremental
/// similarity updater, and the serving-path recommender — everything the
/// topology of Fig. 2 maintains, bundled behind one object for library
/// users, offline experiments, and per-demographic-group training.
///
/// Observe() is the real-time update path (model + tables + history);
/// Recommend() is the serving path of Fig. 1. Thread-safe: all state
/// lives in the sharded stores.
class RecEngine : public Recommender {
 public:
  struct Options {
    MfModelConfig model;
    SimilarityConfig similarity;
    RecommendConfig recommend;
    /// Per-user history retention.
    std::size_t history_per_user = 64;
    /// When set, the factor store registers `kvstore.multiget.*` and the
    /// recommender's factor cache registers `service.factor_cache.*`.
    /// Not owned; must outlive the engine.
    MetricsRegistry* metrics = nullptr;
    /// When set, installed on the MF model: every training action is
    /// scored before its SGD step (progressive validation). Not owned;
    /// must outlive the engine.
    MfValidationHook* validation_hook = nullptr;

    Status Validate() const;
  };

  /// `type_resolver` maps videos to their fine-grained category; required
  /// by the type-similarity factor (Eq. 10).
  RecEngine(VideoTypeResolver type_resolver, Options options);

  /// Constructs with default options.
  explicit RecEngine(VideoTypeResolver type_resolver);

  /// Real-time update: Algorithm 1 on the MF model plus incremental
  /// similar-video table maintenance.
  void Observe(const UserAction& action) override;

  /// Fig. 1 request path.
  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  std::string name() const override { return "rMF"; }

  OnlineMf& model() { return *model_; }
  FactorStore& factors() { return *factors_; }
  HistoryStore& history() { return *history_; }
  const HistoryStore& history() const { return *history_; }
  SimTableStore& sim_table() { return *sim_table_; }
  SimTableUpdater& updater() { return *updater_; }
  MfRecommender& recommender() { return *recommender_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::unique_ptr<FactorStore> factors_;
  std::unique_ptr<HistoryStore> history_;
  std::unique_ptr<SimTableStore> sim_table_;
  std::unique_ptr<OnlineMf> model_;
  std::unique_ptr<SimTableUpdater> updater_;
  std::unique_ptr<MfRecommender> recommender_;
};

}  // namespace rtrec

#endif  // RTREC_CORE_ENGINE_H_
