#include "core/implicit_feedback.h"

#include <algorithm>
#include <cmath>

namespace rtrec {

Status FeedbackConfig::Validate() const {
  if (playtime_a < playtime_b) {
    return Status::InvalidArgument("Eq. 6 requires a >= b");
  }
  if (min_view_rate <= 0.0 || min_view_rate >= 1.0) {
    return Status::InvalidArgument("min_view_rate must lie in (0, 1)");
  }
  for (double w : {impress_weight, click_weight, play_weight, comment_weight,
                   like_weight, share_weight}) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
  }
  return Status::OK();
}

double ActionConfidence(const UserAction& action,
                        const FeedbackConfig& config) {
  switch (action.type) {
    case ActionType::kImpress:
      return config.impress_weight;
    case ActionType::kClick:
      return config.click_weight;
    case ActionType::kPlay:
      return config.play_weight;
    case ActionType::kPlayTime: {
      if (!std::isfinite(action.view_fraction)) {
        // Malformed tuples (NaN/Inf view rates from corrupt logs) are
        // treated as inefficient plays rather than poisoning the model.
        return config.play_weight;
      }
      const double vrate = std::clamp(action.view_fraction, 0.0, 1.0);
      if (vrate < config.min_view_rate) {
        // Inefficient play: too little watched to read a preference; fall
        // back to the Play weight rather than emit a negative signal
        // (Section 3.2 keeps recommendation diversity by never inferring
        // negatives from stop-watching).
        return config.play_weight;
      }
      switch (config.playtime_law) {
        case PlayTimeLaw::kLog10:
          return config.playtime_a + config.playtime_b * std::log10(vrate);
        case PlayTimeLaw::kLinear:
          return (config.playtime_a - config.playtime_b) +
                 config.playtime_b * vrate;
      }
      return config.play_weight;
    }
    case ActionType::kComment:
      return config.comment_weight;
    case ActionType::kLike:
      return config.like_weight;
    case ActionType::kShare:
      return config.share_weight;
  }
  return 0.0;
}

int BinaryRating(double confidence) { return confidence > 0.0 ? 1 : 0; }

}  // namespace rtrec
