#ifndef RTREC_CORE_IMPLICIT_FEEDBACK_H_
#define RTREC_CORE_IMPLICIT_FEEDBACK_H_

#include "common/status.h"
#include "core/action.h"

namespace rtrec {

/// The implicit-feedback solution of Section 3.2.
///
/// Each user action is mapped to a *confidence weight* w_ui (Table 1):
/// weights grow with engagement level. PlayTime actions use the
/// logarithmic view-rate law of Eq. 6,
///
///     w_ui = a + b * log10(vrate_ui),   vrate_ui in [0.1, 1],
///
/// with vrate below 0.1 treated as an inefficient play (weight = the Play
/// weight). Ratings are binarized (Eq. 7): r_ui = 1 iff w_ui > 0. The
/// confidence then drives the adjustable learning rate (Eq. 8).
///
/// Table 1's exact weights are proprietary-truncated in the paper; the
/// defaults below follow its prose ("a click behaviour may correspond to a
/// one star rating while a comment behaviour equals a three star rating";
/// PlayTime weights span [1.5, 2.5]).
/// Functional form of the PlayTime weight (Eq. 6 and the alternative the
/// paper reports testing: "we have tested some alternatives such as
/// w_ui = a + b · vrate_ui, and Equation 6 gave the best performance").
enum class PlayTimeLaw {
  /// Eq. 6: w = a + b · log10(vrate) — concave; early watching earns
  /// weight quickly, completion adds little.
  kLog10,
  /// Linear alternative: w = (a − b) + b · vrate, sharing the endpoints
  /// w(≈0) = a − b and w(1) = a with the log law.
  kLinear,
};

struct FeedbackConfig {
  /// Impress carries no preference: weight 0, never trains the model.
  double impress_weight = 0.0;
  /// Click ~ one star.
  double click_weight = 1.0;
  /// Play start; also the floor for inefficient plays (vrate < 0.1).
  double play_weight = 1.5;
  /// Eq. 6 intercept a (weight at vrate = 1).
  double playtime_a = 2.5;
  /// Eq. 6 slope b on log10(vrate); requires a >= b so weights stay >= 0.
  double playtime_b = 1.0;
  /// Which PlayTime weight law to apply (kLog10 = Eq. 6, the default and
  /// the paper's best performer).
  PlayTimeLaw playtime_law = PlayTimeLaw::kLog10;
  /// Minimum view rate considered an efficient PlayTime signal.
  double min_view_rate = 0.1;
  /// Comment ~ three stars.
  double comment_weight = 3.0;
  /// Like ~ strong positive.
  double like_weight = 2.5;
  /// Share ~ strongest endorsement.
  double share_weight = 3.0;

  /// Validates ranges (a >= b, weights >= 0, 0 < min_view_rate < 1).
  Status Validate() const;
};

/// Confidence weight w_ui of `action` under `config` (Table 1 + Eq. 6).
double ActionConfidence(const UserAction& action, const FeedbackConfig& config);

/// Binary rating r_ui of Eq. 7: 1 iff the confidence is positive.
int BinaryRating(double confidence);

}  // namespace rtrec

#endif  // RTREC_CORE_IMPLICIT_FEEDBACK_H_
