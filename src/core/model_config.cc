#include "core/model_config.h"

namespace rtrec {

const char* UpdatePolicyToString(UpdatePolicy policy) {
  switch (policy) {
    case UpdatePolicy::kBinary:
      return "BinaryModel";
    case UpdatePolicy::kConfidenceAsRating:
      return "ConfModel";
    case UpdatePolicy::kCombine:
      return "CombineModel";
  }
  return "Unknown";
}

Status MfModelConfig::Validate() const {
  if (num_factors <= 0) {
    return Status::InvalidArgument("num_factors must be positive");
  }
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (eta0 <= 0.0 || eta0 > 1.0) {
    return Status::InvalidArgument("eta0 must lie in (0, 1]");
  }
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (init_scale <= 0.0) {
    return Status::InvalidArgument("init_scale must be positive");
  }
  return feedback.Validate();
}

Status SimilarityConfig::Validate() const {
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("beta must lie in [0, 1]");
  }
  if (xi_millis <= 0.0) {
    return Status::InvalidArgument("xi_millis must be positive");
  }
  if (top_k == 0) return Status::InvalidArgument("top_k must be positive");
  if (max_pairs_per_action == 0) {
    return Status::InvalidArgument("max_pairs_per_action must be positive");
  }
  return Status::OK();
}

Status RecommendConfig::Validate() const {
  if (top_n == 0) return Status::InvalidArgument("top_n must be positive");
  if (candidates_per_seed == 0) {
    return Status::InvalidArgument("candidates_per_seed must be positive");
  }
  if (max_candidates < top_n) {
    return Status::InvalidArgument("max_candidates must be >= top_n");
  }
  if (candidate_hops < 1 || candidate_hops > 3) {
    return Status::InvalidArgument("candidate_hops must lie in [1, 3]");
  }
  if (hop_fanout == 0) {
    return Status::InvalidArgument("hop_fanout must be positive");
  }
  return Status::OK();
}

}  // namespace rtrec
