#ifndef RTREC_CORE_MODEL_CONFIG_H_
#define RTREC_CORE_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "core/implicit_feedback.h"
#include "kvstore/quantization.h"

namespace rtrec {

/// How the incremental SGD step treats a user action — the three
/// alternatives compared in Section 6.1.2:
enum class UpdatePolicy {
  /// Binary rating r in {0,1}, fixed learning rate η0 (BinaryModel).
  kBinary,
  /// Confidence-as-rating r = w_ui, fixed learning rate η0 (ConfModel).
  kConfidenceAsRating,
  /// Binary rating + adjustable learning rate η = η0 + α·w_ui (Eq. 8) —
  /// the paper's CombineModel (rMF).
  kCombine,
};

const char* UpdatePolicyToString(UpdatePolicy policy);

/// Hyper-parameters of the online MF model (Table 2). The printed values
/// in the paper are truncated; these defaults were re-derived by the grid
/// search of bench_table2_gridsearch on the synthetic workload.
struct MfModelConfig {
  /// Latent dimensionality f (paper: 20–200).
  int num_factors = 32;
  /// L2 regularization λ of Eq. 3.
  double lambda = 0.01;
  /// Basic learning rate η0 of Eq. 8 (grid-searched; see
  /// bench_table2_gridsearch and eval/experiment_runner.cc).
  double eta0 = 0.0025;
  /// Confidence coefficient α of Eq. 8. With the Table 1 weights this
  /// spreads per-action rates over ~[η0+α, η0+3α]: noisy clicks move the
  /// model roughly a third as much as full watches or comments, with the
  /// mean effective rate near 0.01.
  double alpha = 0.0034;
  /// Update policy (BinaryModel / ConfModel / CombineModel).
  UpdatePolicy policy = UpdatePolicy::kCombine;
  /// Whether Eq. 2's global-average term μ enters the online objective.
  /// Off by default: an implicit-feedback stream trains on positive
  /// ratings only (Algorithm 1 skips r_ui = 0), so a running mean of the
  /// *trained* ratings converges to the positive constant and soaks up
  /// the whole signal — biases and factors then learn nothing. μ is kept
  /// in the API for explicit-feedback uses of the library.
  bool use_global_mean = false;
  /// Scale of random vector initialization.
  double init_scale = 0.05;
  /// Seed for deterministic initialization.
  std::uint64_t seed = 1;
  /// Storage precision of factor vectors in the FactorStore. Training
  /// and serving always see float32; this controls the at-rest format
  /// (quantize on write, dequantize on read). kFloat16 halves factor
  /// memory for <1% recall cost (the bench ledger's workload section
  /// proves it per run); kInt8 quarters it but its per-step resolution
  /// (max|x|/127) can round away small SGD updates — check the recall
  /// guardrail before trusting it on a new workload.
  FactorPrecision precision = FactorPrecision::kFloat32;
  /// Action-to-confidence mapping (Table 1, Eq. 6).
  FeedbackConfig feedback;

  Status Validate() const;
};

/// Parameters of the similar-video tables (Section 4.2). β blends CF and
/// type similarity (Eq. 12); ξ is the decay half-life (Eq. 11).
struct SimilarityConfig {
  /// Weight of type similarity in the fusion, in [0, 1].
  double beta = 0.3;
  /// Time-decay half-life ξ in milliseconds.
  double xi_millis = 3.0 * kMillisPerDay;
  /// Per-video similar-list length K.
  std::size_t top_k = 50;
  /// How many recent history entries pair with a new action when updating
  /// the tables (bounds the GetItemPairs fan-out).
  std::size_t max_pairs_per_action = 16;
  /// Minimum confidence for an action to touch the similarity tables
  /// (impressions and weak signals do not imply co-interest).
  double min_confidence = 1.0;
  /// Per-task LRU cache of recent pair similarities in the ItemPairSim
  /// bolt — the "cache technique" of Section 5.1, enabled by the
  /// pair-key fields grouping. 0 disables. A cached pair skips the
  /// vector fetch + Eq. 9-12 recomputation while its entry is fresher
  /// than `pair_cache_ttl_millis`.
  std::size_t pair_cache_size = 4096;
  double pair_cache_ttl_millis = 60.0 * 1000.0;

  Status Validate() const;
};

/// Parameters of real-time top-N generation (Section 4.1).
struct RecommendConfig {
  /// Number of results to return (top-N).
  std::size_t top_n = 10;
  /// Seed videos taken from the user's history when the request carries
  /// none ("guess you like" scenario).
  std::size_t max_seed_videos = 8;
  /// Candidates expanded per seed from its similar-video list.
  std::size_t candidates_per_seed = 20;
  /// Hard cap on the ranked candidate set (keeps latency bounded).
  std::size_t max_candidates = 200;
  /// Candidate-expansion depth through the similar-video graph. 1 is the
  /// paper's production setting; 2 is the YouTube-style limited
  /// transitive closure (Section 5.2.1 discusses it and rejects it for
  /// latency — kept here for the ablation). Each extra hop expands the
  /// top `hop_fanout` neighbours of the previous frontier.
  int candidate_hops = 1;
  std::size_t hop_fanout = 5;
  /// If true, videos already in the user's history (including seeds
  /// derived from it) are excluded from results. Explicit request seeds
  /// are always excluded. Off by default — re-recommending a favourite
  /// is valid in the related-video scenario.
  bool exclude_watched = false;
  /// Capacity of the service-level LRU cache of hot video factor entries
  /// fronting the batched VectorsGet (entries are invalidated by the
  /// per-video write version the online model bumps on every update).
  /// 0 disables the cache.
  std::size_t factor_cache_size = 4096;

  Status Validate() const;
};

}  // namespace rtrec

#endif  // RTREC_CORE_MODEL_CONFIG_H_
