#include "core/online_mf.h"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/vec_math.h"

namespace rtrec {

namespace {

/// Fills the pre-step (progressive validation) fields of an MfSample from
/// entries the upcoming SGD step has not touched yet.
MfSample MakeSample(const UserAction& action, const FactorEntry& user,
                    const FactorEntry& video, double rating,
                    double confidence, double global_mean) {
  MfSample sample;
  sample.action = action;
  sample.rating = rating;
  sample.confidence = confidence;
  sample.global_mean = global_mean;
  sample.user_bias = user.bias;
  sample.video_bias = video.bias;
  sample.user_norm = std::sqrt(NormSquared(user.vec));
  sample.video_norm = std::sqrt(NormSquared(video.vec));
  // Eq. 2 on the pre-step entries: an honest out-of-sample prediction.
  sample.prediction =
      global_mean + user.bias + video.bias + Dot(user.vec, video.vec);
  return sample;
}

}  // namespace

OnlineMf::OnlineMf(FactorStore* store, MfModelConfig config)
    : store_(store), config_(std::move(config)) {
  assert(store_ != nullptr);
  assert(config_.Validate().ok());
  assert(store_->num_factors() == config_.num_factors &&
         "FactorStore dimensionality must match the model config");
}

void ResolveUpdateStep(const MfModelConfig& config, double confidence,
                       double* rating, double* learning_rate) {
  switch (config.policy) {
    case UpdatePolicy::kBinary:
      *rating = BinaryRating(confidence);
      *learning_rate = config.eta0;
      return;
    case UpdatePolicy::kConfidenceAsRating:
      // The weight itself is the rating; zero-weight actions (impressions)
      // still do not train.
      *rating = confidence;
      *learning_rate = config.eta0;
      return;
    case UpdatePolicy::kCombine:
      *rating = BinaryRating(confidence);
      // Eq. 8: η_ui = η0 + α·w_ui — high-confidence actions move the
      // model more; low-confidence (likely noisy) ones barely do.
      *learning_rate = config.eta0 + config.alpha * confidence;
      return;
  }
}

void OnlineMf::ResolveStep(double confidence, double* rating,
                           double* learning_rate) const {
  ResolveUpdateStep(config_, confidence, rating, learning_rate);
}

double OnlineMf::ApplySgdStep(FactorEntry& user, FactorEntry& video,
                              double rating, double learning_rate,
                              double lambda, double global_mean) {
  assert(user.vec.size() == video.vec.size());
  // Eq. 4: e_ui = r_ui − μ − b_u − b_i − x_uᵀ y_i.
  const double error = rating - global_mean - user.bias - video.bias -
                       Dot(user.vec, video.vec);
  const double eta = learning_rate;

  // Eq. 5 (with the corrected interaction gradient; see header).
  user.bias += static_cast<float>(eta * (error - lambda * user.bias));
  video.bias += static_cast<float>(eta * (error - lambda * video.bias));
  for (std::size_t k = 0; k < user.vec.size(); ++k) {
    const double xu = user.vec[k];
    const double yi = video.vec[k];
    user.vec[k] = static_cast<float>(xu + eta * (error * yi - lambda * xu));
    video.vec[k] = static_cast<float>(yi + eta * (error * xu - lambda * yi));
  }
  return error;
}

OnlineMf::UpdateResult OnlineMf::Update(const UserAction& action) {
  UpdateResult result;
  result.confidence = ActionConfidence(action, config_.feedback);

  double rating = 0.0;
  double eta = 0.0;
  ResolveStep(result.confidence, &rating, &eta);
  result.rating = rating;
  result.learning_rate = eta;
  if (rating <= 0.0) {
    // Impression records (r_ui = 0) do not influence the model
    // (Section 3.3) — but they are the negatives of progressive
    // validation, so a hooked model still scores them (read-only: ids
    // are not initialized by a mere impression).
    if (hook_ != nullptr) {
      StatusOr<FactorEntry> user = store_->GetUser(action.user);
      StatusOr<FactorEntry> video = store_->GetVideo(action.video);
      const FactorEntry user_entry =
          user.ok() ? std::move(user).value()
                    : store_->MakeInitialEntry(action.user, /*is_user=*/true);
      const FactorEntry video_entry =
          video.ok()
              ? std::move(video).value()
              : store_->MakeInitialEntry(action.video, /*is_user=*/false);
      const double mean =
          config_.use_global_mean ? store_->GlobalMean() : 0.0;
      hook_->OnMfSample(MakeSample(action, user_entry, video_entry,
                                   /*rating=*/0.0, result.confidence, mean));
    }
    return result;
  }

  // Read-compute-write, as the ComputeMF → MFStorage bolts do. New ids are
  // initialized on first touch (Algorithm 1 lines 3–8).
  FactorEntry user = store_->GetOrInitUser(action.user);
  FactorEntry video = store_->GetOrInitVideo(action.video);

  const double mean =
      config_.use_global_mean ? store_->GlobalMean() : 0.0;
  if (hook_ != nullptr) {
    // Progressive validation (predict-then-train): sample before the
    // step below mutates the entries.
    hook_->OnMfSample(
        MakeSample(action, user, video, rating, result.confidence, mean));
  }
  result.error =
      ApplySgdStep(user, video, rating, eta, config_.lambda, mean);
  result.updated = true;

  store_->PutUser(action.user, std::move(user));
  store_->PutVideo(action.video, std::move(video));
  store_->ObserveRating(rating);
  return result;
}

double OnlineMf::Predict(UserId u, VideoId i) const {
  StatusOr<FactorEntry> user = store_->GetUser(u);
  StatusOr<FactorEntry> video = store_->GetVideo(i);
  const FactorEntry user_entry =
      user.ok() ? std::move(user).value()
                : store_->MakeInitialEntry(u, /*is_user=*/true);
  const FactorEntry video_entry =
      video.ok() ? std::move(video).value()
                 : store_->MakeInitialEntry(i, /*is_user=*/false);
  return PredictWithEntries(user_entry, video_entry);
}

double OnlineMf::PredictWithEntries(const FactorEntry& user,
                                    const FactorEntry& video) const {
  // Eq. 2: r̂_ui = μ + b_u + b_i + x_uᵀ y_i.
  const double mean =
      config_.use_global_mean ? store_->GlobalMean() : 0.0;
  return mean + user.bias + video.bias + Dot(user.vec, video.vec);
}

}  // namespace rtrec
