#ifndef RTREC_CORE_ONLINE_MF_H_
#define RTREC_CORE_ONLINE_MF_H_

#include "common/status.h"
#include "core/action.h"
#include "core/model_config.h"
#include "kvstore/factor_store.h"

namespace rtrec {

/// Resolves (rating, learning rate) for an action of confidence `w`
/// under `config`'s policy — the pure part of Algorithm 1's step, shared
/// by OnlineMf and the ComputeMF bolts. Rating 0 means "do not update".
void ResolveUpdateStep(const MfModelConfig& config, double confidence,
                       double* rating, double* learning_rate);

/// One progressively-validated training sample: everything the model
/// knew about an action *before* the SGD step consumed it. Since the
/// action has not influenced the model yet, `prediction` is an honest
/// out-of-sample score (progressive validation), and the norms/biases
/// describe the pre-step parameter state.
struct MfSample {
  UserAction action;
  /// r̂_ui (Eq. 2) before the step.
  double prediction = 0.0;
  /// r_ui the step will train toward; 0 for impressions (no step taken).
  double rating = 0.0;
  /// Confidence weight w_ui (Table 1 / Eq. 6).
  double confidence = 0.0;
  /// L2 norms of x_u and y_i before the step.
  double user_norm = 0.0;
  double video_norm = 0.0;
  double user_bias = 0.0;
  double video_bias = 0.0;
  double global_mean = 0.0;
};

/// Observer of the online training stream. Implementations must be
/// thread-safe (Update may run on many bolt threads) and cheap — the
/// callback sits on the training hot path.
class MfValidationHook {
 public:
  virtual ~MfValidationHook() = default;
  virtual void OnMfSample(const MfSample& sample) = 0;
};

/// The online adjustable matrix-factorization model of Section 3 —
/// Algorithm 1. Each user action is processed exactly once, in a single
/// SGD step, with a learning rate scaled by the action's confidence level
/// (Eq. 8) under the CombineModel policy.
///
/// The model state (x_u, y_i, b_u, b_i, μ) lives in a FactorStore shared
/// with the serving path, so every update is visible to recommendation
/// requests immediately. Update follows the production read-compute-write
/// protocol of the ComputeMF → MFStorage bolts: entries are read, the step
/// is computed, and new entries are written back whole. Under concurrency
/// a racing write may overwrite a step (last-writer-wins), matching the
/// deployed system's semantics; the topology avoids even that by fields
/// grouping.
class OnlineMf {
 public:
  /// Outcome of one Update call, exposed for tests and diagnostics.
  struct UpdateResult {
    /// False when the action carried no positive preference (e.g. an
    /// impression) and the model was left untouched.
    bool updated = false;
    /// Confidence weight w_ui of the action (Table 1 / Eq. 6).
    double confidence = 0.0;
    /// Rating r_ui used in the step (binary, or w_ui for ConfModel).
    double rating = 0.0;
    /// Prediction error e_ui before the step (Eq. 4).
    double error = 0.0;
    /// Learning rate η_ui applied (Eq. 8).
    double learning_rate = 0.0;
  };

  /// `store` must outlive the model and is shared, not owned.
  /// `config` must be valid (see MfModelConfig::Validate).
  OnlineMf(FactorStore* store, MfModelConfig config);

  OnlineMf(const OnlineMf&) = delete;
  OnlineMf& operator=(const OnlineMf&) = delete;

  /// Algorithm 1: folds one user action into the model.
  UpdateResult Update(const UserAction& action);

  /// Predicted preference r̂_ui = μ + b_u + b_i + x_uᵀy_i (Eq. 2).
  /// Unknown users/videos are scored with their deterministic initial
  /// entries, so cold ids produce near-μ scores rather than errors.
  double Predict(UserId u, VideoId i) const;

  /// Eq. 2 on explicit entries; used by the serving path, which batches
  /// entry fetches (Fig. 1's VectorsGet step).
  double PredictWithEntries(const FactorEntry& user,
                            const FactorEntry& video) const;

  /// Resolves (rating, learning rate) for an action of confidence `w`
  /// under the configured policy. Rating 0 means "do not update".
  /// Exposed for the ComputeMF bolt and tests.
  void ResolveStep(double confidence, double* rating,
                   double* learning_rate) const;

  /// One in-place SGD step (the update block of Algorithm 1) on caller-
  /// provided entries: computes e_ui against `global_mean` and applies
  /// Eq. 5 with the regularized gradient. Returns e_ui.
  ///
  /// Note: the paper's Eq. 5 prints the interaction gradients as
  /// x_u ← x_u + η(e·x_u − λx_u); the correct SGD gradient of Eq. 3 (and
  /// what we implement) is x_u ← x_u + η(e·y_i − λx_u) and symmetrically
  /// for y_i — the printed form is a known typo (it would make the step
  /// independent of the other side's vector).
  static double ApplySgdStep(FactorEntry& user, FactorEntry& video,
                             double rating, double learning_rate,
                             double lambda, double global_mean);

  const MfModelConfig& config() const { return config_; }
  FactorStore& store() { return *store_; }
  const FactorStore& store() const { return *store_; }

  /// Installs a progressive-validation observer (nullptr to remove).
  /// The hook sees every action — impressions included, with rating 0 —
  /// scored by the model state *before* that action's step. Must be set
  /// before concurrent Update calls begin; not synchronized against them.
  void set_validation_hook(MfValidationHook* hook) { hook_ = hook; }
  MfValidationHook* validation_hook() const { return hook_; }

 private:
  FactorStore* store_;
  MfModelConfig config_;
  MfValidationHook* hook_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_CORE_ONLINE_MF_H_
