#include "core/recommender.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace rtrec {

MfRecommender::MfRecommender(OnlineMf* model, HistoryStore* history,
                             SimTableStore* table, SimTableUpdater* updater,
                             RecommendConfig config)
    : model_(model),
      history_(history),
      table_(table),
      updater_(updater),
      config_(std::move(config)) {
  assert(model_ != nullptr);
  assert(history_ != nullptr);
  assert(table_ != nullptr);
  assert(config_.Validate().ok());
}

StatusOr<std::vector<ScoredVideo>> MfRecommender::Recommend(
    const RecRequest& request) {
  ScopedLatencyTimer timer(&latency_);
  const std::size_t top_n = request.top_n > 0 ? request.top_n : config_.top_n;

  // 1. Seed videos: the one being watched, or the user's recent history
  //    ("guess you like", Section 6.2).
  std::vector<VideoId> seeds = request.seed_videos;
  if (seeds.empty()) {
    for (const HistoryEntry& e :
         history_->GetRecent(request.user, config_.max_seed_videos)) {
      seeds.push_back(e.video);
    }
  }
  if (seeds.empty()) {
    // Cold user with no seeds: nothing the CF path can do — the caller
    // falls back to demographic filtering (Section 5.2.1).
    return std::vector<ScoredVideo>{};
  }

  // 2. Candidate expansion through the similar-video tables; keeping the
  //    best decayed similarity per candidate dedupes across seeds.
  //    Explicitly-requested seeds (the video on screen) are never
  //    recommended back; history-derived seeds are excluded only under
  //    exclude_watched, so "guess you like" can resurface favourites.
  std::unordered_set<VideoId> excluded(request.seed_videos.begin(),
                                       request.seed_videos.end());
  if (config_.exclude_watched) {
    excluded.insert(seeds.begin(), seeds.end());
    for (const HistoryEntry& e : history_->Get(request.user)) {
      excluded.insert(e.video);
    }
  }
  std::unordered_map<VideoId, double> candidate_sim;
  std::vector<VideoId> frontier = seeds;
  for (int hop = 0; hop < config_.candidate_hops; ++hop) {
    // Hop 0 expands every seed fully; deeper hops (the YouTube-style
    // limited transitive closure) expand a bounded fan-out of the best
    // candidates found so far, with similarity damped multiplicatively
    // along the path.
    const std::size_t per_node =
        hop == 0 ? config_.candidates_per_seed : config_.hop_fanout;
    std::vector<std::pair<VideoId, double>> next_frontier;
    for (VideoId node : frontier) {
      const double base =
          hop == 0 ? 1.0 : candidate_sim[node];
      for (const SimilarVideo& similar :
           table_->Query(node, request.now, per_node)) {
        if (excluded.contains(similar.video)) continue;
        const double path_sim = base * similar.similarity;
        double& best = candidate_sim[similar.video];
        if (path_sim > best) {
          best = path_sim;
          next_frontier.emplace_back(similar.video, path_sim);
        }
      }
    }
    if (hop + 1 >= config_.candidate_hops) break;
    // Next frontier: strongest newly-improved candidates.
    std::sort(next_frontier.begin(), next_frontier.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    frontier.clear();
    for (std::size_t i = 0;
         i < next_frontier.size() && i < config_.hop_fanout * seeds.size();
         ++i) {
      frontier.push_back(next_frontier[i].first);
    }
    if (frontier.empty()) break;
  }
  if (candidate_sim.empty()) return std::vector<ScoredVideo>{};

  // Cap the candidate set by similarity to bound ranking cost
  // (Section 4.1's latency argument).
  std::vector<std::pair<VideoId, double>> candidates(candidate_sim.begin(),
                                                     candidate_sim.end());
  if (candidates.size() > config_.max_candidates) {
    std::nth_element(
        candidates.begin(),
        candidates.begin() +
            static_cast<std::ptrdiff_t>(config_.max_candidates),
        candidates.end(),
        [](const auto& a, const auto& b) { return a.second > b.second; });
    candidates.resize(config_.max_candidates);
  }

  // 3. Preference prediction (Eq. 2) and ranking. The user entry is
  //    fetched once (Fig. 1's VectorsGet).
  StatusOr<FactorEntry> user_entry = model_->store().GetUser(request.user);
  const FactorEntry user =
      user_entry.ok()
          ? std::move(user_entry).value()
          : model_->store().MakeInitialEntry(request.user, /*is_user=*/true);

  std::vector<ScoredVideo> scored;
  scored.reserve(candidates.size());
  for (const auto& [video, sim] : candidates) {
    StatusOr<FactorEntry> video_entry = model_->store().GetVideo(video);
    const FactorEntry entry =
        video_entry.ok()
            ? std::move(video_entry).value()
            : model_->store().MakeInitialEntry(video, /*is_user=*/false);
    scored.push_back(
        ScoredVideo{video, model_->PredictWithEntries(user, entry)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredVideo& a, const ScoredVideo& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.video < b.video;  // Deterministic tie-break.
            });
  if (scored.size() > top_n) scored.resize(top_n);
  return scored;
}

void MfRecommender::Observe(const UserAction& action) {
  model_->Update(action);
  if (updater_ != nullptr) {
    // The updater also appends to the history store.
    updater_->OnAction(action);
  } else {
    const double confidence =
        ActionConfidence(action, model_->config().feedback);
    if (confidence > 0.0) {
      history_->Append(action.user,
                       HistoryEntry{action.video, confidence, action.time});
    }
  }
}

}  // namespace rtrec
