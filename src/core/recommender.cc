#include "core/recommender.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace rtrec {

MfRecommender::MfRecommender(OnlineMf* model, HistoryStore* history,
                             SimTableStore* table, SimTableUpdater* updater,
                             RecommendConfig config, MetricsRegistry* metrics)
    : model_(model),
      history_(history),
      table_(table),
      updater_(updater),
      config_(std::move(config)) {
  assert(model_ != nullptr);
  assert(history_ != nullptr);
  assert(table_ != nullptr);
  assert(config_.Validate().ok());
  if (config_.factor_cache_size > 0) {
    factor_cache_ = std::make_unique<FactorCache>(
        &model_->store(), config_.factor_cache_size, metrics);
  }
}

StatusOr<std::vector<ScoredVideo>> MfRecommender::Recommend(
    const RecRequest& request) {
  ScopedLatencyTimer timer(&latency_);
  const std::size_t top_n = request.top_n > 0 ? request.top_n : config_.top_n;

  // 1. Seed videos: the one being watched, or the user's recent history
  //    ("guess you like", Section 6.2).
  std::vector<VideoId> seeds = request.seed_videos;
  if (seeds.empty()) {
    for (const HistoryEntry& e :
         history_->GetRecent(request.user, config_.max_seed_videos)) {
      seeds.push_back(e.video);
    }
  }
  if (seeds.empty()) {
    // Cold user with no seeds: nothing the CF path can do — the caller
    // falls back to demographic filtering (Section 5.2.1).
    return std::vector<ScoredVideo>{};
  }

  // 2. Candidate expansion through the similar-video tables; keeping the
  //    best decayed similarity per candidate dedupes across seeds.
  //    Explicitly-requested seeds (the video on screen) are never
  //    recommended back; history-derived seeds are excluded only under
  //    exclude_watched, so "guess you like" can resurface favourites.
  std::unordered_set<VideoId> excluded(request.seed_videos.begin(),
                                       request.seed_videos.end());
  if (config_.exclude_watched) {
    excluded.insert(seeds.begin(), seeds.end());
    for (const HistoryEntry& e : history_->Get(request.user)) {
      excluded.insert(e.video);
    }
  }
  std::unordered_map<VideoId, double> candidate_sim;
  std::vector<VideoId> frontier = seeds;
  for (int hop = 0; hop < config_.candidate_hops; ++hop) {
    // Hop 0 expands every seed fully; deeper hops (the YouTube-style
    // limited transitive closure) expand a bounded fan-out of the best
    // candidates found so far, with similarity damped multiplicatively
    // along the path.
    const std::size_t per_node =
        hop == 0 ? config_.candidates_per_seed : config_.hop_fanout;
    // Candidates improved this hop, each recorded once: a node whose best
    // path similarity improves several times (reached from several
    // frontier nodes) must not occupy several frontier slots or be
    // expanded more than once next hop.
    std::unordered_set<VideoId> improved;
    for (VideoId node : frontier) {
      const double base =
          hop == 0 ? 1.0 : candidate_sim[node];
      for (const SimilarVideo& similar :
           table_->Query(node, request.now, per_node)) {
        if (excluded.contains(similar.video)) continue;
        const double path_sim = base * similar.similarity;
        double& best = candidate_sim[similar.video];
        if (path_sim > best) {
          best = path_sim;
          improved.insert(similar.video);
        }
      }
    }
    if (hop + 1 >= config_.candidate_hops) break;
    // Next frontier: strongest newly-improved candidates, capped by
    // distinct candidate count.
    std::vector<std::pair<VideoId, double>> next_frontier;
    next_frontier.reserve(improved.size());
    for (VideoId video : improved) {
      next_frontier.emplace_back(video, candidate_sim[video]);
    }
    const std::size_t cap = config_.hop_fanout * seeds.size();
    if (next_frontier.size() > cap) {
      std::nth_element(
          next_frontier.begin(),
          next_frontier.begin() + static_cast<std::ptrdiff_t>(cap),
          next_frontier.end(), [](const auto& a, const auto& b) {
            if (a.second != b.second) return a.second > b.second;
            return a.first < b.first;  // Deterministic tie-break.
          });
      next_frontier.resize(cap);
    }
    frontier.clear();
    for (const auto& [video, sim] : next_frontier) frontier.push_back(video);
    if (frontier.empty()) break;
  }
  if (candidate_sim.empty()) return std::vector<ScoredVideo>{};

  // Cap the candidate set by similarity to bound ranking cost
  // (Section 4.1's latency argument).
  std::vector<std::pair<VideoId, double>> candidates(candidate_sim.begin(),
                                                     candidate_sim.end());
  if (candidates.size() > config_.max_candidates) {
    std::nth_element(
        candidates.begin(),
        candidates.begin() +
            static_cast<std::ptrdiff_t>(config_.max_candidates),
        candidates.end(),
        [](const auto& a, const auto& b) { return a.second > b.second; });
    candidates.resize(config_.max_candidates);
  }

  // 3. Preference prediction (Eq. 2) and ranking. The user entry is
  //    fetched once; video entries arrive in one batched VectorsGet
  //    (Fig. 1) — candidates are deduped already, so the request-scoped
  //    entry buffer below fetches each vector at most once per request.
  //    The service-level cache short-circuits hot videos entirely,
  //    validated against the store's per-video write version.
  StatusOr<FactorEntry> user_entry = model_->store().GetUser(request.user);
  const FactorEntry user =
      user_entry.ok()
          ? std::move(user_entry).value()
          : model_->store().MakeInitialEntry(request.user, /*is_user=*/true);

  FactorStore& store = model_->store();
  std::vector<FactorEntry> entries(candidates.size());
  std::vector<std::size_t> missing;  // Positions not served by the cache.
  if (factor_cache_ != nullptr) {
    missing.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!factor_cache_->Lookup(candidates[i].first, &entries[i])) {
        missing.push_back(i);
      }
    }
  } else {
    missing.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) missing[i] = i;
  }
  if (!missing.empty()) {
    std::vector<VideoId> ids;
    ids.reserve(missing.size());
    for (std::size_t pos : missing) ids.push_back(candidates[pos].first);
    std::vector<FactorStore::VideoBatchEntry> batch = store.GetVideos(ids);
    for (std::size_t j = 0; j < missing.size(); ++j) {
      const std::size_t pos = missing[j];
      if (batch[j].found) {
        if (factor_cache_ != nullptr) {
          factor_cache_->Insert(ids[j], batch[j].entry, batch[j].version);
        }
        entries[pos] = std::move(batch[j].entry);
      } else {
        // Unknown video: score with its deterministic initial entry, but
        // do not cache it — the id gains a real entry (and a version
        // bump) on its first observed action.
        entries[pos] = store.MakeInitialEntry(ids[j], /*is_user=*/false);
      }
    }
  }

  std::vector<ScoredVideo> scored;
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scored.push_back(ScoredVideo{
        candidates[i].first, model_->PredictWithEntries(user, entries[i])});
  }

  // Partial selection: only the top-N need ordering, so select them with
  // nth_element and sort just that prefix instead of sorting every
  // candidate (Section 4.1's latency bound).
  const auto better = [](const ScoredVideo& a, const ScoredVideo& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.video < b.video;  // Deterministic tie-break.
  };
  if (scored.size() > top_n) {
    std::nth_element(scored.begin(),
                     scored.begin() + static_cast<std::ptrdiff_t>(top_n),
                     scored.end(), better);
    scored.resize(top_n);
  }
  std::sort(scored.begin(), scored.end(), better);
  return scored;
}

void MfRecommender::Observe(const UserAction& action) {
  model_->Update(action);
  if (updater_ != nullptr) {
    // The updater also appends to the history store.
    updater_->OnAction(action);
  } else {
    const double confidence =
        ActionConfidence(action, model_->config().feedback);
    if (confidence > 0.0) {
      history_->Append(action.user,
                       HistoryEntry{action.video, confidence, action.time});
    }
  }
}

}  // namespace rtrec
