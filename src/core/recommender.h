#ifndef RTREC_CORE_RECOMMENDER_H_
#define RTREC_CORE_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/action.h"
#include "core/model_config.h"
#include "core/online_mf.h"
#include "core/sim_table.h"
#include "kvstore/factor_cache.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {

/// One recommendation result.
struct ScoredVideo {
  VideoId video = 0;
  double score = 0.0;

  friend bool operator==(const ScoredVideo&, const ScoredVideo&) = default;
};

/// One recommendation request. Two production scenarios (Fig. 6):
///  - "related videos": `seed_videos` holds the video being watched;
///  - "guess you like": `seed_videos` is empty and seeds come from the
///    user's history.
struct RecRequest {
  UserId user = 0;
  std::vector<VideoId> seed_videos;
  /// 0 means "use the recommender's configured top-N".
  std::size_t top_n = 0;
  /// Request time; drives the similarity decay (Eq. 11).
  Timestamp now = 0;
};

/// Common interface of the production model (rMF) and the comparative
/// methods of Section 6.2 (Hot, AR, SimHash). Implementations must be
/// thread-safe for concurrent Recommend calls.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Returns up to top-N videos, best first.
  virtual StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) = 0;

  /// Feeds one observed user action to the model. Real-time models fold
  /// it in immediately; batch baselines buffer it until RetrainBatch.
  virtual void Observe(const UserAction& action) { (void)action; }

  /// Batch (re)training hook, called once per simulated day in the A/B
  /// harness. No-op for online models.
  virtual void RetrainBatch(Timestamp now) { (void)now; }

  /// Display name used in experiment tables ("rMF", "Hot", ...).
  virtual std::string name() const = 0;
};

/// The paper's real-time MF recommender (Fig. 1): seed videos → candidate
/// expansion through the similar-video tables → preference ranking with
/// the online MF model. Thread-safe given its thread-safe dependencies.
class MfRecommender : public Recommender {
 public:
  /// All dependencies are shared, not owned. `updater` may be null if the
  /// caller maintains the similarity tables elsewhere (e.g. the topology);
  /// then Observe only updates the MF model and history. `metrics` (may
  /// be null) registers the `service.factor_cache.*` counters of the
  /// serving-path factor cache.
  MfRecommender(OnlineMf* model, HistoryStore* history, SimTableStore* table,
                SimTableUpdater* updater, RecommendConfig config,
                MetricsRegistry* metrics = nullptr);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Folds the action into the MF model and the similarity tables — the
  /// full real-time update path.
  void Observe(const UserAction& action) override;

  std::string name() const override { return "rMF"; }

  /// End-to-end Recommend latency (microseconds), for the production
  /// latency claims of Section 6.
  const Histogram& latency() const { return latency_; }

  const RecommendConfig& config() const { return config_; }

  /// The serving-path factor cache, or null when disabled
  /// (config.factor_cache_size == 0). Exposed for tests.
  FactorCache* factor_cache() { return factor_cache_.get(); }

 private:
  OnlineMf* model_;
  HistoryStore* history_;
  SimTableStore* table_;
  SimTableUpdater* updater_;
  RecommendConfig config_;
  std::unique_ptr<FactorCache> factor_cache_;
  Histogram latency_;
};

}  // namespace rtrec

#endif  // RTREC_CORE_RECOMMENDER_H_
