#include "core/sim_table.h"

#include <cassert>

#include "core/implicit_feedback.h"

namespace rtrec {

SimTableUpdater::SimTableUpdater(FactorStore* factors, HistoryStore* history,
                                 SimTableStore* table,
                                 VideoTypeResolver type_resolver,
                                 SimilarityConfig config,
                                 FeedbackConfig feedback)
    : factors_(factors),
      history_(history),
      table_(table),
      type_resolver_(std::move(type_resolver)),
      config_(std::move(config)),
      feedback_(feedback) {
  assert(factors_ != nullptr);
  assert(history_ != nullptr);
  assert(table_ != nullptr);
  assert(type_resolver_ != nullptr);
  assert(config_.Validate().ok());
}

std::size_t SimTableUpdater::OnAction(const UserAction& action) {
  const double confidence = ActionConfidence(action, feedback_);
  if (confidence < config_.min_confidence) {
    return 0;  // Impressions / weak signals do not imply co-interest.
  }

  // Partners first, then append — the action's own video must not pair
  // with itself via the just-written history entry.
  const std::vector<HistoryEntry> partners =
      history_->GetRecent(action.user, config_.max_pairs_per_action);
  history_->Append(action.user,
                   HistoryEntry{action.video, confidence, action.time});

  std::size_t refreshed = 0;
  for (const HistoryEntry& partner : partners) {
    if (partner.video == action.video) continue;
    RefreshPair(action.video, partner.video, action.time);
    ++refreshed;
  }
  return refreshed;
}

double SimTableUpdater::RefreshPair(VideoId a, VideoId b, Timestamp now) {
  // Eq. 9 on the *current* latent vectors: the tables track the model.
  const FactorEntry ya = factors_->GetOrInitVideo(a);
  const FactorEntry yb = factors_->GetOrInitVideo(b);
  const double s1 = CfSimilarity(ya.vec, yb.vec);
  const double s2 = TypeSimilarity(type_resolver_(a), type_resolver_(b));
  const double fused = FuseSimilarity(s1, s2, config_.beta);
  table_->Update(a, b, fused, now);
  return fused;
}

}  // namespace rtrec
