#ifndef RTREC_CORE_SIM_TABLE_H_
#define RTREC_CORE_SIM_TABLE_H_

#include <cstddef>

#include "core/action.h"
#include "core/model_config.h"
#include "core/similarity.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {

/// Incremental maintenance of the similar-video tables (Section 4.2) —
/// the logic of the GetItemPairs → ItemPairSim → ResultStorage bolts
/// (Fig. 2), callable directly for single-process training.
///
/// On each sufficiently-confident user action on video i:
///  1. Fetch the user's recent history (the videos the user interacted
///     with before) — these are the co-watch partners j of i.
///  2. For every pair (i, j): compute s1 = y_iᵀy_j from the current MF
///     vectors (Eq. 9) and s2 from the fine-grained types (Eq. 10), fuse
///     with β (Eq. 12), and write the pair into the SimTableStore stamped
///     with the action time (restarting its decay clock, Eq. 11).
class SimTableUpdater {
 public:
  /// All dependencies are shared, not owned, and must outlive the updater.
  SimTableUpdater(FactorStore* factors, HistoryStore* history,
                  SimTableStore* table, VideoTypeResolver type_resolver,
                  SimilarityConfig config, FeedbackConfig feedback = {});

  SimTableUpdater(const SimTableUpdater&) = delete;
  SimTableUpdater& operator=(const SimTableUpdater&) = delete;

  /// Processes one action: updates the user's history and, when the
  /// action's confidence clears the threshold, refreshes the similarity
  /// of (action.video × recent history) pairs. Returns the number of
  /// pairs refreshed.
  std::size_t OnAction(const UserAction& action);

  /// Recomputes and stores the similarity of one explicit pair at `now`.
  /// Used by tests and by backfill jobs.
  double RefreshPair(VideoId a, VideoId b, Timestamp now);

  const SimilarityConfig& config() const { return config_; }

 private:
  FactorStore* factors_;
  HistoryStore* history_;
  SimTableStore* table_;
  VideoTypeResolver type_resolver_;
  SimilarityConfig config_;
  FeedbackConfig feedback_;
};

}  // namespace rtrec

#endif  // RTREC_CORE_SIM_TABLE_H_
