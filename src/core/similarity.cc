#include "core/similarity.h"

#include <cmath>

#include "common/vec_math.h"

namespace rtrec {

double CfSimilarity(const std::vector<float>& yi,
                    const std::vector<float>& yj) {
  return Dot(yi, yj);
}

double TypeSimilarity(VideoType a, VideoType b) { return a == b ? 1.0 : 0.0; }

double TimeDecay(Timestamp delta_millis, double xi_millis) {
  if (delta_millis <= 0) return 1.0;
  return std::exp2(-static_cast<double>(delta_millis) / xi_millis);
}

double FuseSimilarity(double cf_sim, double type_sim, double beta) {
  return (1.0 - beta) * cf_sim + beta * type_sim;
}

}  // namespace rtrec
