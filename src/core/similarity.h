#ifndef RTREC_CORE_SIMILARITY_H_
#define RTREC_CORE_SIMILARITY_H_

#include <functional>
#include <vector>

#include "common/types.h"
#include "kvstore/factor_store.h"

namespace rtrec {

/// Resolves a video's fine-grained type/category; backed by the catalog in
/// production and by fixtures in tests. Must be thread-safe.
using VideoTypeResolver = std::function<VideoType(VideoId)>;

/// CF similarity s1_ij = y_iᵀ y_j (Eq. 9) on the MF latent vectors.
double CfSimilarity(const std::vector<float>& yi, const std::vector<float>& yj);

/// Type similarity s2_ij (Eq. 10): 1 iff the fine-grained types match.
double TypeSimilarity(VideoType a, VideoType b);

/// Time-decay damping factor d = 2^(-Δt/ξ) (Eq. 11). Δt <= 0 gives 1.
double TimeDecay(Timestamp delta_millis, double xi_millis);

/// Relevance fusion (Eq. 12) *before* decay:
/// (1-β)·s1 + β·s2. The decay factor d_ij is applied at read time by
/// SimTableStore from the pair's stored update time.
double FuseSimilarity(double cf_sim, double type_sim, double beta);

}  // namespace rtrec

#endif  // RTREC_CORE_SIMILARITY_H_
