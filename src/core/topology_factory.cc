#include "core/topology_factory.h"

#include <string>
#include <utility>

#include "common/lru_cache.h"
#include "core/implicit_feedback.h"
#include "core/online_mf.h"
#include "core/sim_table.h"
#include "stream/reliable_spout.h"

namespace rtrec {

namespace pipeline_schema {

namespace {
std::shared_ptr<const stream::Schema> MakeSchema(
    std::initializer_list<const char*> names) {
  return std::make_shared<const stream::Schema>(names);
}
}  // namespace

const std::shared_ptr<const stream::Schema>& Action() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"user", "video", "action", "value", "time"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& UserVec() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"user", "vec", "bias"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& VideoVec() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"video", "vec", "bias"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& Pair() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"pair_key", "video1", "video2", "time"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& PairSim() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"video1", "video2", "sim", "time"}));
  return schema;
}

}  // namespace pipeline_schema

stream::Tuple ActionToTuple(const UserAction& action) {
  return stream::Tuple(
      pipeline_schema::Action(),
      {static_cast<std::int64_t>(action.user),
       static_cast<std::int64_t>(action.video),
       static_cast<std::int64_t>(action.type), action.view_fraction,
       action.time});
}

StatusOr<UserAction> TupleToAction(const stream::Tuple& tuple) {
  StatusOr<std::int64_t> user = tuple.GetInt("user");
  if (!user.ok()) return user.status();
  StatusOr<std::int64_t> video = tuple.GetInt("video");
  if (!video.ok()) return video.status();
  StatusOr<std::int64_t> action = tuple.GetInt("action");
  if (!action.ok()) return action.status();
  StatusOr<double> value = tuple.GetDouble("value");
  if (!value.ok()) return value.status();
  StatusOr<std::int64_t> time = tuple.GetInt("time");
  if (!time.ok()) return time.status();
  if (*action < 0 || *action >= kNumActionTypes) {
    return Status::InvalidArgument("action code out of range");
  }
  UserAction out;
  out.user = static_cast<UserId>(*user);
  out.video = static_cast<VideoId>(*video);
  out.type = static_cast<ActionType>(*action);
  out.view_fraction = *value;
  out.time = *time;
  return out;
}

namespace {

/// Parses the raw message, filters unqualified tuples, forwards — the
/// spout of Fig. 2. Pulls from a shared ActionSource.
class ActionSpout : public stream::Spout {
 public:
  explicit ActionSpout(std::shared_ptr<ActionSource> source)
      : source_(std::move(source)) {}

  bool Next(stream::OutputCollector& collector) override {
    std::optional<UserAction> action = source_->Next();
    if (!action.has_value()) return false;
    collector.Emit(ActionToTuple(*action));
    return true;
  }

 private:
  std::shared_ptr<ActionSource> source_;
};

/// ComputeMF bolt: reads the current vectors, performs the Algorithm 1
/// step, and ships the *new* vectors to MFStorage keyed by id. It never
/// writes the store itself — the fields-grouped MFStorage tasks are the
/// single writers per key.
class ComputeMfBolt : public stream::Bolt {
 public:
  ComputeMfBolt(FactorStore* factors, MfModelConfig config)
      : factors_(factors), model_(factors, std::move(config)) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    StatusOr<UserAction> action = TupleToAction(tuple);
    if (!action.ok()) return;  // Unqualified tuple; spout-level filtering.
    const double confidence =
        ActionConfidence(*action, model_.config().feedback);
    double rating = 0.0;
    double eta = 0.0;
    model_.ResolveStep(confidence, &rating, &eta);
    if (rating <= 0.0) return;  // Impressions do not update the model.

    FactorEntry user = factors_->GetOrInitUser(action->user);
    FactorEntry video = factors_->GetOrInitVideo(action->video);
    const double mean =
        model_.config().use_global_mean ? factors_->GlobalMean() : 0.0;
    OnlineMf::ApplySgdStep(user, video, rating, eta,
                           model_.config().lambda, mean);
    factors_->ObserveRating(rating);

    collector.EmitTo(
        "user_vec",
        stream::Tuple(pipeline_schema::UserVec(),
                      {static_cast<std::int64_t>(action->user),
                       std::move(user.vec), static_cast<double>(user.bias)}));
    collector.EmitTo(
        "video_vec",
        stream::Tuple(pipeline_schema::VideoVec(),
                      {static_cast<std::int64_t>(action->video),
                       std::move(video.vec),
                       static_cast<double>(video.bias)}));
  }

 private:
  FactorStore* factors_;
  OnlineMf model_;
};

/// MFStorage bolt: writes new vectors to the KV store. Fields grouping by
/// key guarantees a single writer per user/video, so writes are atomic
/// without locking coordination across tasks (Section 5.1).
class MfStorageBolt : public stream::Bolt {
 public:
  explicit MfStorageBolt(FactorStore* factors) : factors_(factors) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    (void)collector;
    StatusOr<std::vector<float>> vec = tuple.GetFloats("vec");
    StatusOr<double> bias = tuple.GetDouble("bias");
    if (!vec.ok() || !bias.ok()) return;
    FactorEntry entry;
    entry.vec = std::move(vec).value();
    entry.bias = static_cast<float>(*bias);
    if (StatusOr<std::int64_t> user = tuple.GetInt("user"); user.ok()) {
      factors_->PutUser(static_cast<UserId>(*user), std::move(entry));
    } else if (StatusOr<std::int64_t> video = tuple.GetInt("video");
               video.ok()) {
      factors_->PutVideo(static_cast<VideoId>(*video), std::move(entry));
    }
  }

 private:
  FactorStore* factors_;
};

/// UserHistory bolt: records behaviour histories, fields-grouped by user.
class UserHistoryBolt : public stream::Bolt {
 public:
  UserHistoryBolt(HistoryStore* history, FeedbackConfig feedback)
      : history_(history), feedback_(feedback) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    (void)collector;
    StatusOr<UserAction> action = TupleToAction(tuple);
    if (!action.ok()) return;
    const double confidence = ActionConfidence(*action, feedback_);
    if (confidence <= 0.0) return;  // Impressions are not history.
    history_->Append(action->user,
                     HistoryEntry{action->video, confidence, action->time});
  }

 private:
  HistoryStore* history_;
  FeedbackConfig feedback_;
};

/// GetItemPairs bolt: joins a confident action with the user's recent
/// history and emits one tuple per (video1, video2) pair, keyed by the
/// normalized pair key so equal pairs co-locate downstream (enabling the
/// combiner/cache optimizations of Section 5.1).
class GetItemPairsBolt : public stream::Bolt {
 public:
  GetItemPairsBolt(HistoryStore* history, SimilarityConfig config,
                   FeedbackConfig feedback)
      : history_(history), config_(std::move(config)), feedback_(feedback) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    StatusOr<UserAction> action = TupleToAction(tuple);
    if (!action.ok()) return;
    const double confidence = ActionConfidence(*action, feedback_);
    if (confidence < config_.min_confidence) return;
    for (const HistoryEntry& partner : history_->GetRecent(
             action->user, config_.max_pairs_per_action)) {
      if (partner.video == action->video) continue;
      const VideoPair pair(action->video, partner.video);
      const std::string key = std::to_string(pair.first) + "#" +
                              std::to_string(pair.second);
      collector.EmitTo(
          "pairs",
          stream::Tuple(pipeline_schema::Pair(),
                        {key, static_cast<std::int64_t>(action->video),
                         static_cast<std::int64_t>(partner.video),
                         action->time}));
    }
  }

 private:
  HistoryStore* history_;
  SimilarityConfig config_;
  FeedbackConfig feedback_;
};

/// ItemPairSim bolt: computes the fused similarity of a pair from the
/// current latent vectors and the type system (Eq. 9, 10, 12).
///
/// Section 5.1's "cache technique": because tuples are fields-grouped by
/// pair key, every occurrence of a pair reaches the same task, so a
/// task-local LRU of recent results skips the KV-store vector fetches
/// and the similarity recomputation for hot pairs.
class ItemPairSimBolt : public stream::Bolt {
 public:
  ItemPairSimBolt(FactorStore* factors, VideoTypeResolver type_resolver,
                  SimilarityConfig config)
      : factors_(factors),
        type_resolver_(std::move(type_resolver)),
        config_(std::move(config)),
        cache_(config_.pair_cache_size == 0 ? 1 : config_.pair_cache_size) {}

  void Prepare(const stream::TaskContext& context) override {
    if (context.metrics != nullptr) {
      cache_hits_ =
          context.metrics->GetCounter(context.component + ".cache_hits");
      cache_misses_ =
          context.metrics->GetCounter(context.component + ".cache_misses");
    }
  }

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    StatusOr<std::int64_t> v1 = tuple.GetInt("video1");
    StatusOr<std::int64_t> v2 = tuple.GetInt("video2");
    StatusOr<std::int64_t> time = tuple.GetInt("time");
    if (!v1.ok() || !v2.ok() || !time.ok()) return;
    const VideoId a = static_cast<VideoId>(*v1);
    const VideoId b = static_cast<VideoId>(*v2);

    double fused = 0.0;
    bool cached = false;
    const VideoPair pair(a, b);
    if (config_.pair_cache_size > 0) {
      if (CachedSim* entry = cache_.Get(pair); entry != nullptr) {
        const double age = static_cast<double>(*time - entry->computed_at);
        if (age >= 0.0 && age <= config_.pair_cache_ttl_millis) {
          fused = entry->sim;
          cached = true;
        }
      }
    }
    if (!cached) {
      const FactorEntry ya = factors_->GetOrInitVideo(a);
      const FactorEntry yb = factors_->GetOrInitVideo(b);
      const double s1 = CfSimilarity(ya.vec, yb.vec);
      const double s2 = TypeSimilarity(type_resolver_(a), type_resolver_(b));
      fused = FuseSimilarity(s1, s2, config_.beta);
      if (config_.pair_cache_size > 0) {
        cache_.Put(pair, CachedSim{fused, *time});
      }
    }
    if (cached && cache_hits_ != nullptr) cache_hits_->Increment();
    if (!cached && cache_misses_ != nullptr) cache_misses_->Increment();

    collector.EmitTo(
        "pair_sim",
        stream::Tuple(pipeline_schema::PairSim(),
                      {static_cast<std::int64_t>(a),
                       static_cast<std::int64_t>(b), fused, *time}));
  }

 private:
  struct CachedSim {
    double sim = 0.0;
    Timestamp computed_at = 0;
  };

  FactorStore* factors_;
  VideoTypeResolver type_resolver_;
  SimilarityConfig config_;
  LruCache<VideoPair, CachedSim, VideoPairHash> cache_;
  Counter* cache_hits_ = nullptr;
  Counter* cache_misses_ = nullptr;
};

/// ResultStorage bolt: persists the top-N similar-video lists.
class ResultStorageBolt : public stream::Bolt {
 public:
  explicit ResultStorageBolt(SimTableStore* table) : table_(table) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    (void)collector;
    StatusOr<std::int64_t> v1 = tuple.GetInt("video1");
    StatusOr<std::int64_t> v2 = tuple.GetInt("video2");
    StatusOr<double> sim = tuple.GetDouble("sim");
    StatusOr<std::int64_t> time = tuple.GetInt("time");
    if (!v1.ok() || !v2.ok() || !sim.ok() || !time.ok()) return;
    table_->Update(static_cast<VideoId>(*v1), static_cast<VideoId>(*v2),
                   *sim, *time);
  }

 private:
  SimTableStore* table_;
};

}  // namespace

StatusOr<stream::TopologySpec> BuildRecommendationTopology(
    std::shared_ptr<ActionSource> source, const PipelineDeps& deps,
    const PipelineParallelism& parallelism) {
  if (source == nullptr) return Status::InvalidArgument("null action source");
  if (deps.factors == nullptr || deps.history == nullptr ||
      deps.sim_table == nullptr || deps.type_resolver == nullptr) {
    return Status::InvalidArgument("incomplete pipeline deps");
  }
  RTREC_RETURN_IF_ERROR(deps.model_config.Validate());
  RTREC_RETURN_IF_ERROR(deps.sim_config.Validate());

  // Copy dependencies into the factories (executed once per task).
  FactorStore* factors = deps.factors;
  HistoryStore* history = deps.history;
  SimTableStore* sim_table = deps.sim_table;
  VideoTypeResolver type_resolver = deps.type_resolver;
  MfModelConfig model_config = deps.model_config;
  SimilarityConfig sim_config = deps.sim_config;
  FeedbackConfig feedback = model_config.feedback;

  stream::TopologyBuilder builder;
  if (deps.reliable_spout) {
    builder.AddSpout(
        "spout",
        [source] {
          return std::make_unique<stream::ReliableReplaySpout>(
              [source]() -> std::optional<stream::Tuple> {
                std::optional<UserAction> action = source->Next();
                if (!action.has_value()) return std::nullopt;
                return ActionToTuple(*action);
              });
        },
        parallelism.spout);
  } else {
    builder.AddSpout(
        "spout",
        [source] { return std::make_unique<ActionSpout>(source); },
        parallelism.spout);
  }

  builder
      .AddBolt(
          "compute_mf",
          [factors, model_config] {
            return std::make_unique<ComputeMfBolt>(factors, model_config);
          },
          parallelism.compute_mf)
      .ShuffleGrouping("spout");

  builder
      .AddBolt(
          "mf_storage",
          [factors] { return std::make_unique<MfStorageBolt>(factors); },
          parallelism.mf_storage)
      .FieldsGrouping("compute_mf", "user_vec", {"user"})
      .FieldsGrouping("compute_mf", "video_vec", {"video"});

  builder
      .AddBolt(
          "user_history",
          [history, feedback] {
            return std::make_unique<UserHistoryBolt>(history, feedback);
          },
          parallelism.user_history)
      .FieldsGrouping("spout", {"user"});

  builder
      .AddBolt(
          "get_item_pairs",
          [history, sim_config, feedback] {
            return std::make_unique<GetItemPairsBolt>(history, sim_config,
                                                      feedback);
          },
          parallelism.get_item_pairs)
      .FieldsGrouping("spout", {"user"});

  builder
      .AddBolt(
          "item_pair_sim",
          [factors, type_resolver, sim_config] {
            return std::make_unique<ItemPairSimBolt>(factors, type_resolver,
                                                     sim_config);
          },
          parallelism.item_pair_sim)
      .FieldsGrouping("get_item_pairs", "pairs", {"pair_key"});

  builder
      .AddBolt(
          "result_storage",
          [sim_table] { return std::make_unique<ResultStorageBolt>(sim_table); },
          parallelism.result_storage)
      .FieldsGrouping("item_pair_sim", "pair_sim", {"video1"});

  return builder.Build();
}

}  // namespace rtrec
