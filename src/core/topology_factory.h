#ifndef RTREC_CORE_TOPOLOGY_FACTORY_H_
#define RTREC_CORE_TOPOLOGY_FACTORY_H_

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/action.h"
#include "core/model_config.h"
#include "core/similarity.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"
#include "stream/topology_builder.h"
#include "stream/tuple.h"

namespace rtrec {

/// Thread-safe source of user actions for the topology's spout tasks.
/// Multiple spout tasks pull from one source concurrently.
class ActionSource {
 public:
  virtual ~ActionSource() = default;

  /// Next action, or nullopt when the stream is exhausted (finite replay).
  virtual std::optional<UserAction> Next() = 0;
};

/// Replays a fixed action log; spout tasks claim actions with an atomic
/// cursor, so each action is emitted exactly once.
class VectorActionSource : public ActionSource {
 public:
  explicit VectorActionSource(std::vector<UserAction> actions)
      : actions_(std::move(actions)) {}

  std::optional<UserAction> Next() override {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= actions_.size()) return std::nullopt;
    return actions_[i];
  }

  std::size_t size() const { return actions_.size(); }

 private:
  std::vector<UserAction> actions_;
  std::atomic<std::size_t> cursor_{0};
};

/// Shared state the recommendation topology operates on: exactly the
/// KVStore boxes of Fig. 2. All pointers are shared, not owned, and must
/// outlive the running topology.
struct PipelineDeps {
  FactorStore* factors = nullptr;
  /// Use a ReliableReplaySpout so every action is delivered at least
  /// once (requires running the topology with
  /// TopologyOptions::enable_acking). Default is the paper's
  /// at-most-once spout.
  bool reliable_spout = false;
  HistoryStore* history = nullptr;
  SimTableStore* sim_table = nullptr;
  VideoTypeResolver type_resolver;
  MfModelConfig model_config;
  SimilarityConfig sim_config;
};

/// Per-component task counts. Defaults give a small multi-threaded
/// pipeline; benches sweep these.
struct PipelineParallelism {
  std::size_t spout = 1;
  std::size_t compute_mf = 2;
  std::size_t mf_storage = 2;
  std::size_t user_history = 2;
  std::size_t get_item_pairs = 2;
  std::size_t item_pair_sim = 2;
  std::size_t result_storage = 2;
};

/// Field schemas shared by the pipeline's streams.
namespace pipeline_schema {

/// <user, video, action, value, time> — the spout's output (Fig. 2).
const std::shared_ptr<const stream::Schema>& Action();
/// <user, vec, bias> on stream "user_vec".
const std::shared_ptr<const stream::Schema>& UserVec();
/// <video, vec, bias> on stream "video_vec".
const std::shared_ptr<const stream::Schema>& VideoVec();
/// <pair_key, video1, video2, time> on stream "pairs".
const std::shared_ptr<const stream::Schema>& Pair();
/// <video1, video2, sim, time> on stream "pair_sim".
const std::shared_ptr<const stream::Schema>& PairSim();

}  // namespace pipeline_schema

/// Converts an action to the spout's tuple layout and back.
stream::Tuple ActionToTuple(const UserAction& action);
StatusOr<UserAction> TupleToAction(const stream::Tuple& tuple);

/// Builds the Fig. 2 topology:
///
///   spout ──shuffle──> compute_mf ──fields(user)──> mf_storage
///                            └─────fields(video)────────┘
///   spout ──fields(user)──> user_history
///   spout ──fields(user)──> get_item_pairs ──fields(pair_key)──>
///       item_pair_sim ──fields(video1)──> result_storage
///
/// The fields groupings reproduce the paper's single-writer-per-key
/// guarantee for vector writes and the locality optimization for pair
/// similarity computation.
StatusOr<stream::TopologySpec> BuildRecommendationTopology(
    std::shared_ptr<ActionSource> source, const PipelineDeps& deps,
    const PipelineParallelism& parallelism = {});

}  // namespace rtrec

#endif  // RTREC_CORE_TOPOLOGY_FACTORY_H_
