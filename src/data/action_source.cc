#include "data/action_source.h"

#include "common/string_util.h"

namespace rtrec {

TsvFileActionSource::TsvFileActionSource(const std::string& path)
    : in_(path) {}

std::optional<UserAction> TsvFileActionSource::Next() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  while (std::getline(in_, line)) {
    if (Trim(line).empty()) continue;
    StatusOr<UserAction> action = ActionFromTsv(line);
    if (!action.ok()) {
      ++malformed_;  // Unqualified tuple: filter and move on.
      continue;
    }
    ++produced_;
    return *action;
  }
  return std::nullopt;
}

std::size_t TsvFileActionSource::malformed_lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return malformed_;
}

std::size_t TsvFileActionSource::produced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return produced_;
}

}  // namespace rtrec
