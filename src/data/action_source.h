#ifndef RTREC_DATA_ACTION_SOURCE_H_
#define RTREC_DATA_ACTION_SOURCE_H_

#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "core/topology_factory.h"
#include "data/log_format.h"

namespace rtrec {

/// Streams a TSV action log from disk into a topology — the file-backed
/// equivalent of the production spout's raw-message feed. Malformed
/// lines are counted and skipped (the spout "filters the unqualified
/// data tuples"). Thread-safe: multiple spout tasks may pull from one
/// source; lines are handed out under a lock.
class TsvFileActionSource : public ActionSource {
 public:
  /// Opens `path`. Check `ok()` before use; a failed open yields an
  /// immediately-exhausted source.
  explicit TsvFileActionSource(const std::string& path);

  /// True iff the file opened successfully.
  bool ok() const { return in_.is_open(); }

  std::optional<UserAction> Next() override;

  /// Lines skipped because they failed to parse.
  std::size_t malformed_lines() const;

  /// Actions successfully produced so far.
  std::size_t produced() const;

 private:
  mutable std::mutex mu_;
  std::ifstream in_;
  std::size_t malformed_ = 0;
  std::size_t produced_ = 0;
};

}  // namespace rtrec

#endif  // RTREC_DATA_ACTION_SOURCE_H_
