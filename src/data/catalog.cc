#include "data/catalog.h"

#include <cassert>
#include <cmath>

namespace rtrec {

namespace {

/// Normalizes to unit length (no-op on zero vectors).
void Normalize(std::vector<float>& v) {
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (float& x : v) x = static_cast<float>(x / norm);
}

}  // namespace

VideoCatalog::VideoCatalog(Options options, std::vector<VideoInfo> videos)
    : options_(options),
      videos_(std::move(videos)),
      popularity_(std::make_shared<ZipfDistribution>(
          videos_.size(), options.zipf_exponent)) {
  for (const VideoInfo& video : videos_) {
    if (video.release_day > 0) {
      releases_by_day_[video.release_day].push_back(video.id);
    }
  }
}

const std::vector<VideoId>& VideoCatalog::ReleasedOn(int day) const {
  static const std::vector<VideoId>& empty = *new std::vector<VideoId>();
  auto it = releases_by_day_.find(day);
  return it == releases_by_day_.end() ? empty : it->second;
}

VideoCatalog VideoCatalog::Generate(const Options& options) {
  assert(options.num_videos > 0);
  assert(options.num_types > 0);
  assert(options.num_genres > 0);
  Rng rng(options.seed);

  // Type prototypes in genre space: random unit vectors.
  std::vector<std::vector<float>> prototypes(options.num_types);
  for (auto& prototype : prototypes) {
    prototype.resize(options.num_genres);
    for (float& x : prototype) x = static_cast<float>(rng.NextGaussian());
    Normalize(prototype);
  }

  std::vector<VideoInfo> videos;
  videos.reserve(options.num_videos);
  for (std::size_t i = 0; i < options.num_videos; ++i) {
    VideoInfo video;
    video.id = static_cast<VideoId>(i + 1);
    video.type = static_cast<VideoType>(rng.NextUint64(options.num_types));
    // Durations: short clips to long features, type-agnostic.
    video.duration_sec = static_cast<int>(rng.NextInt64(60, 5400));
    if (options.staggered_release_fraction > 0.0 &&
        options.release_window_days > 0 &&
        rng.NextBool(options.staggered_release_fraction)) {
      video.release_day = static_cast<int>(
          1 + rng.NextUint64(static_cast<std::uint64_t>(
                  options.release_window_days)));
    }
    video.genre = prototypes[video.type];
    for (float& x : video.genre) {
      x += static_cast<float>(rng.NextGaussian(0.0, options.genre_noise));
    }
    Normalize(video.genre);
    videos.push_back(std::move(video));
  }
  return VideoCatalog(options, std::move(videos));
}

const VideoInfo& VideoCatalog::Get(VideoId id) const {
  assert(id >= 1 && id <= videos_.size());
  return videos_[static_cast<std::size_t>(id - 1)];
}

VideoId VideoCatalog::SamplePopular(Rng& rng) const {
  return static_cast<VideoId>(popularity_->Sample(rng) + 1);
}

VideoId VideoCatalog::SamplePopularReleased(Rng& rng, int day) const {
  for (int attempt = 0; attempt < 32; ++attempt) {
    const VideoId candidate = SamplePopular(rng);
    if (Get(candidate).release_day <= day) return candidate;
  }
  // Give up on sampling: scan from the popularity head.
  for (const VideoInfo& video : videos_) {
    if (video.release_day <= day) return video.id;
  }
  return videos_.front().id;  // Degenerate catalog; callers avoid this.
}

VideoTypeResolver VideoCatalog::TypeResolver() const {
  // Snapshot by value: the catalog is immutable after Generate, and the
  // resolver must stay valid independent of this object's storage.
  std::shared_ptr<std::vector<VideoType>> types =
      std::make_shared<std::vector<VideoType>>();
  types->reserve(videos_.size());
  for (const VideoInfo& v : videos_) types->push_back(v.type);
  return [types](VideoId id) -> VideoType {
    if (id == 0 || id > types->size()) return 0;
    return (*types)[static_cast<std::size_t>(id - 1)];
  };
}

}  // namespace rtrec
