#ifndef RTREC_DATA_CATALOG_H_
#define RTREC_DATA_CATALOG_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include <unordered_map>

#include "core/similarity.h"

namespace rtrec {

/// One video in the synthetic catalog. `genre` is the *hidden* ground-truth
/// topic vector that drives user affinity in the simulator — the planted
/// low-rank structure the MF model is supposed to recover. Models never
/// see it; only the generator and the A/B click simulator do.
struct VideoInfo {
  VideoId id = 0;
  /// Fine-grained category (Eq. 10's type system). Correlated with genre.
  VideoType type = 0;
  /// Full length t_i in seconds; PlayTime view rates are fractions of it.
  int duration_sec = 0;
  /// Day (0-based) the video becomes available on the site. 0 for the
  /// back catalog; staggered releases model the constant inflow of new
  /// content whose cold-start behaviour motivates the paper's real-time
  /// design.
  int release_day = 0;
  /// Hidden topic vector, unit norm.
  std::vector<float> genre;
};

/// The synthetic video catalog: Zipf-popular videos (id == popularity
/// rank) spread over a fine-grained type system whose types cluster in
/// genre space, mirroring a real category tree where same-type videos are
/// more alike (the premise of Eq. 10).
class VideoCatalog {
 public:
  struct Options {
    std::size_t num_videos = 2000;
    std::size_t num_types = 20;
    /// Dimensionality of the hidden genre space.
    std::size_t num_genres = 8;
    /// Zipf popularity exponent (s = 0 → uniform).
    double zipf_exponent = 0.8;
    /// Genre noise around the type prototype; small values make type a
    /// strong similarity signal.
    double genre_noise = 0.35;
    /// Fraction of the catalog released after day 0, spread uniformly
    /// over [1, release_window_days]. 0 disables staggered releases.
    double staggered_release_fraction = 0.0;
    int release_window_days = 0;
    std::uint64_t seed = 42;
  };

  /// Deterministically generates a catalog.
  static VideoCatalog Generate(const Options& options);

  /// Video ids are 1..size(); id 0 is invalid.
  const VideoInfo& Get(VideoId id) const;
  std::size_t size() const { return videos_.size(); }
  const std::vector<VideoInfo>& videos() const { return videos_; }

  /// Popularity distribution over ranks (rank r maps to id r+1).
  const ZipfDistribution& popularity() const { return *popularity_; }

  /// Samples a video id by popularity.
  VideoId SamplePopular(Rng& rng) const;

  /// Samples a video already released by `day` (rejection sampling with
  /// a bounded retry budget; falls back to the head of the catalog).
  VideoId SamplePopularReleased(Rng& rng, int day) const;

  /// Videos whose release_day == day (empty for days without releases).
  const std::vector<VideoId>& ReleasedOn(int day) const;

  /// Type lookup callable for the similarity machinery.
  VideoTypeResolver TypeResolver() const;

  const Options& options() const { return options_; }

 private:
  VideoCatalog(Options options, std::vector<VideoInfo> videos);

  Options options_;
  std::vector<VideoInfo> videos_;
  std::shared_ptr<ZipfDistribution> popularity_;
  // release day -> video ids released that day (day 0 omitted).
  std::unordered_map<int, std::vector<VideoId>> releases_by_day_;
};

}  // namespace rtrec

#endif  // RTREC_DATA_CATALOG_H_
