#include "data/dataset.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace rtrec {

std::string DatasetStats::ToString() const {
  return StringPrintf("users=%s videos=%s actions=%s sparsity=%.3f%%",
                      FormatCount(num_users).c_str(),
                      FormatCount(num_videos).c_str(),
                      FormatCount(num_actions).c_str(), sparsity_percent);
}

Dataset::Dataset(std::vector<UserAction> actions)
    : actions_(std::move(actions)) {
  if (!std::is_sorted(actions_.begin(), actions_.end(),
                      [](const UserAction& a, const UserAction& b) {
                        return a.time < b.time;
                      })) {
    std::stable_sort(actions_.begin(), actions_.end(),
                     [](const UserAction& a, const UserAction& b) {
                       return a.time < b.time;
                     });
  }
}

Dataset Dataset::FilterMinActivity(std::size_t min_user_actions,
                                   std::size_t min_video_actions) const {
  // Engagement counts: impressions are delivery, not user activity.
  std::unordered_map<UserId, std::size_t> user_count;
  for (const UserAction& a : actions_) {
    if (a.type != ActionType::kImpress) ++user_count[a.user];
  }
  std::unordered_map<VideoId, std::size_t> video_count;
  for (const UserAction& a : actions_) {
    if (a.type == ActionType::kImpress) continue;
    if (user_count[a.user] >= min_user_actions) ++video_count[a.video];
  }
  std::vector<UserAction> kept;
  kept.reserve(actions_.size());
  for (const UserAction& a : actions_) {
    auto uc = user_count.find(a.user);
    if (uc == user_count.end() || uc->second < min_user_actions) continue;
    auto vc = video_count.find(a.video);
    if (vc == video_count.end() || vc->second < min_video_actions) continue;
    kept.push_back(a);
  }
  return Dataset(std::move(kept));
}

Dataset Dataset::FilterMinActivityFixpoint(
    std::size_t min_user_actions, std::size_t min_video_actions) const {
  Dataset current = FilterMinActivity(min_user_actions, min_video_actions);
  for (int iteration = 0; iteration < 64; ++iteration) {
    Dataset next =
        current.FilterMinActivity(min_user_actions, min_video_actions);
    if (next.size() == current.size()) return current;
    current = std::move(next);
  }
  return current;  // Pathological oscillation guard (cannot occur: sizes
                   // strictly decrease, so 64 rounds is unreachable).
}

std::pair<Dataset, Dataset> Dataset::SplitAtTime(
    Timestamp split_millis) const {
  std::vector<UserAction> train;
  std::vector<UserAction> test;
  for (const UserAction& a : actions_) {
    (a.time < split_millis ? train : test).push_back(a);
  }
  return {Dataset(std::move(train)), Dataset(std::move(test))};
}

Dataset Dataset::FilterUsers(
    const std::unordered_set<UserId>& users) const {
  std::vector<UserAction> kept;
  for (const UserAction& a : actions_) {
    if (users.contains(a.user)) kept.push_back(a);
  }
  return Dataset(std::move(kept));
}

Dataset Dataset::FilterGroup(const DemographicGrouper& grouper,
                             GroupId group) const {
  std::vector<UserAction> kept;
  for (const UserAction& a : actions_) {
    if (grouper.GroupOf(a.user) == group) kept.push_back(a);
  }
  return Dataset(std::move(kept));
}

Dataset Dataset::FilterEngaged(const FeedbackConfig& feedback) const {
  std::vector<UserAction> kept;
  for (const UserAction& a : actions_) {
    if (ActionConfidence(a, feedback) > 0.0) kept.push_back(a);
  }
  return Dataset(std::move(kept));
}

DatasetStats Dataset::Stats(const FeedbackConfig& feedback) const {
  DatasetStats stats;
  std::unordered_set<UserId> users;
  std::unordered_set<VideoId> videos;
  for (const UserAction& a : actions_) {
    if (ActionConfidence(a, feedback) <= 0.0) continue;
    ++stats.num_actions;
    users.insert(a.user);
    videos.insert(a.video);
  }
  stats.num_users = users.size();
  stats.num_videos = videos.size();
  if (!users.empty() && !videos.empty()) {
    stats.sparsity_percent = 100.0 * static_cast<double>(stats.num_actions) /
                             (static_cast<double>(users.size()) *
                              static_cast<double>(videos.size()));
  }
  return stats;
}

std::unordered_set<UserId> Dataset::Users() const {
  std::unordered_set<UserId> users;
  for (const UserAction& a : actions_) {
    if (a.type != ActionType::kImpress) users.insert(a.user);
  }
  return users;
}

std::unordered_set<VideoId> Dataset::Videos() const {
  std::unordered_set<VideoId> videos;
  for (const UserAction& a : actions_) {
    if (a.type != ActionType::kImpress) videos.insert(a.video);
  }
  return videos;
}

}  // namespace rtrec
