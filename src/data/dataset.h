#ifndef RTREC_DATA_DATASET_H_
#define RTREC_DATA_DATASET_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/action.h"
#include "core/implicit_feedback.h"
#include "demographic/grouper.h"

namespace rtrec {

/// Summary statistics of an action log — the columns of Tables 3 and 4.
struct DatasetStats {
  std::size_t num_users = 0;
  std::size_t num_videos = 0;
  /// Engaged (non-impression) actions, the paper's "Actions" column.
  std::size_t num_actions = 0;
  /// #Actions / (#Users · #Videos), in percent (Table 4's Sparsity).
  double sparsity_percent = 0.0;

  std::string ToString() const;
};

/// An immutable, time-ordered action log with the cleaning/splitting
/// operations of Section 6.1: activity filtering ("reserve users who have
/// more than 50 actions and videos with more than 50 related actions")
/// and the 6-day/1-day train/test split.
class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of `actions`; sorts by time if needed.
  explicit Dataset(std::vector<UserAction> actions);

  const std::vector<UserAction>& actions() const { return actions_; }
  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }

  /// Keeps only users with >= `min_user_actions` engaged actions and
  /// videos with >= `min_video_actions` engaged actions. One pass each,
  /// applied user-filter-then-video-filter (as the paper describes, not a
  /// fixpoint iteration).
  Dataset FilterMinActivity(std::size_t min_user_actions,
                            std::size_t min_video_actions) const;

  /// FilterMinActivity iterated to a fixpoint: dropping cold videos can
  /// push users under the floor and vice versa; this repeats the pass
  /// until the dataset stabilizes (classic k-core-style cleaning, the
  /// strict variant of the paper's one-pass rule).
  Dataset FilterMinActivityFixpoint(std::size_t min_user_actions,
                                    std::size_t min_video_actions) const;

  /// Splits at an absolute time: actions with time < `split_millis` go to
  /// .first (train), the rest to .second (test).
  std::pair<Dataset, Dataset> SplitAtTime(Timestamp split_millis) const;

  /// Keeps only actions whose user is in `users`.
  Dataset FilterUsers(const std::unordered_set<UserId>& users) const;

  /// Keeps only actions of users in demographic `group` per `grouper`.
  Dataset FilterGroup(const DemographicGrouper& grouper,
                      GroupId group) const;

  /// Keeps only engaged actions (confidence > 0 under `feedback`).
  Dataset FilterEngaged(const FeedbackConfig& feedback) const;

  /// Table 3/4 statistics. Counts engaged actions only and the distinct
  /// users/videos appearing in them.
  DatasetStats Stats(const FeedbackConfig& feedback) const;

  /// Engaged-action counts per user, descending — used to pick the
  /// "largest demographic groups" (Table 4).
  std::unordered_set<UserId> Users() const;
  std::unordered_set<VideoId> Videos() const;

 private:
  std::vector<UserAction> actions_;
};

}  // namespace rtrec

#endif  // RTREC_DATA_DATASET_H_
