#include "data/event_generator.h"

#include <algorithm>
#include <cmath>

#include "common/vec_math.h"

namespace rtrec {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

SyntheticWorld::SyntheticWorld(WorldConfig config)
    : config_(std::move(config)),
      catalog_(VideoCatalog::Generate([this] {
        VideoCatalog::Options o = config_.catalog;
        o.seed = MixHash64(config_.seed ^ 0xCA7A106ull) ^ o.seed;
        return o;
      }())),
      population_(UserPopulation::Generate([this] {
        UserPopulation::Options o = config_.population;
        o.num_genres = config_.catalog.num_genres;
        o.seed = MixHash64(config_.seed ^ 0x9090ull) ^ o.seed;
        return o;
      }())) {}

double SyntheticWorld::TrueAffinity(UserId user, VideoId video) const {
  if (user == 0 || user > population_.size() || video == 0 ||
      video > catalog_.size()) {
    return 0.0;
  }
  return AffinityFor(population_.Get(user).taste, video);
}

double SyntheticWorld::TrueAffinity(UserId user, VideoId video,
                                    int day) const {
  if (user == 0 || user > population_.size() || video == 0 ||
      video > catalog_.size()) {
    return 0.0;
  }
  const ScenarioConfig& sc = config_.scenario;
  const SimUser& u = population_.Get(user);
  if (sc.drift_strength <= 0.0 || sc.drift_start_day < 0 ||
      day < sc.drift_start_day) {
    return AffinityFor(u.taste, video);
  }
  return AffinityFor(DriftedTaste(u.taste, sc.drift_strength), video);
}

double SyntheticWorld::AffinityFor(const std::vector<float>& taste,
                                   VideoId video) const {
  const VideoInfo& v = catalog_.Get(video);
  return Sigmoid(config_.behavior.affinity_sharpness * Dot(taste, v.genre));
}

std::vector<float> SyntheticWorld::DriftedTaste(
    const std::vector<float>& taste, double s) const {
  // Blend toward the shared target-genre axis: preference mass migrates
  // to one genre population-wide (a trend shift), which reshapes the
  // item-side engagement distribution — a per-user rotation would only
  // re-pair users with videos and leave every aggregate statistic the
  // model observes unchanged. Deterministic (no RNG), so any day can
  // still be regenerated independently.
  const std::size_t n = taste.size();
  const std::size_t target = config_.scenario.drift_target_genre % n;
  std::vector<float> out(n);
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>((1.0 - s) * taste[i] +
                                (i == target ? s : 0.0));
    norm_sq += static_cast<double>(out[i]) * out[i];
  }
  if (norm_sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (float& v : out) v *= inv;
  }
  return out;
}

std::int64_t SyntheticWorld::SessionStartOffset(Rng& rng) const {
  const ScenarioConfig& sc = config_.scenario;
  if (sc.diurnal_amplitude <= 0.0) {
    return rng.NextInt64(0, kMillisPerDay - 1);
  }
  // Rejection sampling against the sinusoidal intensity. Acceptance is
  // at least (1-A)/(1+A) per try, so the loop terminates fast for any
  // A < 1.
  const double a = std::min(sc.diurnal_amplitude, 0.99);
  constexpr double kTwoPi = 6.283185307179586;
  for (;;) {
    const std::int64_t offset = rng.NextInt64(0, kMillisPerDay - 1);
    const double hour = static_cast<double>(offset) / (3600.0 * 1000.0);
    const double intensity =
        1.0 + a * std::cos(kTwoPi * (hour - sc.diurnal_peak_hour) / 24.0);
    if (rng.NextDouble() * (1.0 + a) <= intensity) return offset;
  }
}

VideoId SyntheticWorld::FlashVideoFor(int day, Rng& rng) const {
  for (const FlashCrowdEvent& event : config_.scenario.flash_crowds) {
    if (event.day != day || event.video == 0) continue;
    if (rng.NextBool(event.browse_share)) return event.video;
  }
  return 0;
}

std::size_t SyntheticWorld::EstimateActions(std::size_t first,
                                            std::size_t end) const {
  // Per impression: 1 impress + P(engage)·(click, play, playtime and an
  // occasional comment/like) ≈ 2.5 actions with the default behaviour.
  // An estimate, not a bound — the vector still grows geometrically if
  // a chunk runs hot.
  const auto& users = population_.users();
  double sessions = 0.0;
  for (std::size_t i = first; i < end && i < users.size(); ++i) {
    sessions += users[i].activity;
  }
  const double per_session =
      static_cast<double>(config_.behavior.impressions_per_session) * 2.5;
  return static_cast<std::size_t>(sessions * per_session) + 16;
}

void SyntheticWorld::SimulateUserDay(int day, const SimUser& user,
                                     std::vector<UserAction>& out) const {
  // Independent stream per (seed, day, user) -> regenerable in any order.
  Rng rng(MixHash64(config_.seed) ^ MixHash64(static_cast<std::uint64_t>(day)) ^
          MixHash64(user.id * 0x5DEECE66Dull));

  // Poisson(activity) session count via thinning (activity is small).
  int sessions = 0;
  {
    const double l = std::exp(-user.activity);
    double p = rng.NextDouble();
    while (p > l && sessions < 50) {
      ++sessions;
      p *= rng.NextDouble();
    }
  }
  const BehaviorConfig& b = config_.behavior;
  const ScenarioConfig& sc = config_.scenario;
  const Timestamp day_start =
      config_.start_millis + static_cast<Timestamp>(day) * kMillisPerDay;

  // Demographic drift: past the drift day the user's effective taste is
  // the blended rotation, computed once per (user, day).
  const std::vector<float>* taste = &user.taste;
  std::vector<float> drifted;
  const bool drift_active = sc.drift_strength > 0.0 &&
                            sc.drift_start_day >= 0 &&
                            day >= sc.drift_start_day;
  if (drift_active) {
    drifted = DriftedTaste(user.taste, sc.drift_strength);
    taste = &drifted;
  }
  const std::size_t drift_genre =
      drift_active && !user.taste.empty()
          ? sc.drift_target_genre % user.taste.size()
          : 0;

  const Timestamp day_end = day_start + kMillisPerDay;
  for (int s = 0; s < sessions; ++s) {
    Timestamp t = day_start + SessionStartOffset(rng);

    // The user browses a popularity-sampled pool and gravitates to the
    // highest-affinity items: impressions for everything shown, clicks
    // and plays driven by true affinity. Sessions truncate at midnight
    // so the day-based train/test splits stay clean.
    for (std::size_t imp = 0;
         imp < b.impressions_per_session && t < day_end; ++imp) {
      // Slot priority: flash-crowd takeover, then same-day-release
      // promotion, then the taste-biased choice over a small popular
      // pool of videos already released by this day.
      const std::vector<VideoId>& todays_releases = catalog_.ReleasedOn(day);
      VideoId video = FlashVideoFor(day, rng);
      if (video != 0) {
        // Takeover slot: everyone sees the same video, taste unseen.
      } else if (!todays_releases.empty() &&
                 rng.NextBool(b.new_release_browse_rate)) {
        video = todays_releases[static_cast<std::size_t>(
            rng.NextUint64(todays_releases.size()))];
      } else {
        video = catalog_.SamplePopularReleased(rng, day);
        double affinity = AffinityFor(*taste, video);
        for (std::size_t c = 1; c < b.choice_pool; ++c) {
          const VideoId other = catalog_.SamplePopularReleased(rng, day);
          const double other_affinity = AffinityFor(*taste, other);
          // Keep the better item with high probability (imperfect choice).
          if (other_affinity > affinity && rng.NextBool(0.7)) {
            video = other;
            affinity = other_affinity;
          }
        }
      }
      const double affinity = AffinityFor(*taste, video);
      t += rng.NextInt64(1000, 60 * 1000);  // Browse pacing.

      out.push_back(UserAction{user.id, video, ActionType::kImpress, 0.0, t});

      // Accidental clicks: engagement with no preference behind it —
      // abandoned within the first few percent of the video.
      const bool accidental = rng.NextBool(b.accidental_click_rate);
      double p_click = b.click_floor + b.click_gain * affinity;
      if (drift_active) {
        // Herd engagement: trend-aligned content earns clicks beyond
        // personal fit (the same low-signal traffic as a flash crowd,
        // diffused over the trending genre). This is what makes the
        // drift *observable*: a pure taste rotation over an isotropic
        // catalog only re-pairs users with videos and leaves P(engage |
        // impression) untouched, so nothing bias-driven could notice it.
        const float align = catalog_.Get(video).genre[drift_genre];
        if (align > 0.0f) {
          p_click = std::min(
              1.0, p_click + sc.drift_strength * static_cast<double>(align));
        }
      }
      if (!accidental && !rng.NextBool(p_click)) continue;
      t += rng.NextInt64(500, 5000);
      out.push_back(UserAction{user.id, video, ActionType::kClick, 0.0, t});
      out.push_back(UserAction{user.id, video, ActionType::kPlay, 0.0,
                               t + 100});

      double fraction = accidental
                            ? rng.NextDouble(0.01, 0.08)
                            : affinity + rng.NextGaussian(0.0, b.watch_noise);
      if (!accidental && rng.NextBool(b.background_watch_rate)) {
        // Left running: completion says nothing about preference.
        fraction = rng.NextDouble(0.85, 1.0);
      }
      fraction = std::clamp(fraction, 0.01, 1.0);
      if (!accidental) {
        // Time-limitation cap: the viewed fraction a session budget
        // allows on this video, independent of preference.
        const double budget_secs = rng.NextDouble(b.watch_budget_min_secs,
                                                  b.watch_budget_max_secs);
        const double cap =
            budget_secs / static_cast<double>(catalog_.Get(video).duration_sec);
        fraction = std::clamp(std::min(fraction, cap), 0.01, 1.0);
      }
      if (accidental) {
        const VideoInfo& info = catalog_.Get(video);
        t += std::max<Timestamp>(
            static_cast<Timestamp>(fraction * info.duration_sec * 1000.0),
            1000);
        out.push_back(
            UserAction{user.id, video, ActionType::kPlayTime, fraction, t});
        continue;  // No comments/likes on abandoned plays.
      }
      const VideoInfo& info = catalog_.Get(video);
      const Timestamp watched_ms = static_cast<Timestamp>(
          fraction * info.duration_sec * 1000.0);
      t += std::max<Timestamp>(watched_ms, 1000);
      out.push_back(
          UserAction{user.id, video, ActionType::kPlayTime, fraction, t});

      if (fraction > 0.5 && rng.NextBool(b.comment_rate * affinity * 2.0)) {
        out.push_back(UserAction{user.id, video, ActionType::kComment, 0.0,
                                 t + rng.NextInt64(1000, 30000)});
      }
      if (rng.NextBool(b.like_rate * affinity)) {
        out.push_back(UserAction{user.id, video, ActionType::kLike, 0.0,
                                 t + rng.NextInt64(500, 10000)});
      }
    }
  }
}

std::vector<UserAction> SyntheticWorld::GenerateDay(int day) const {
  std::vector<UserAction> out;
  // Reserve from the activity-weighted expectation, not a flat per-user
  // constant: a session emits up to impressions_per_session impressions
  // *each* trailing click/play/playtime/comment/like, so the old
  // population×8 guess under-reserved by the activity factor and
  // realloc-churned multi-GB days.
  out.reserve(EstimateActions(0, population_.size()));
  for (const SimUser& user : population_.users()) {
    SimulateUserDay(day, user, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const UserAction& a, const UserAction& b) {
                     return a.time < b.time;
                   });
  return out;
}

void SyntheticWorld::GenerateDayChunked(
    int day, std::size_t chunk_users,
    const std::function<void(std::vector<UserAction>&&)>& sink) const {
  if (chunk_users == 0) chunk_users = 4096;
  const auto& users = population_.users();
  for (std::size_t first = 0; first < users.size(); first += chunk_users) {
    const std::size_t end = std::min(first + chunk_users, users.size());
    std::vector<UserAction> chunk;
    chunk.reserve(EstimateActions(first, end));
    for (std::size_t i = first; i < end; ++i) {
      SimulateUserDay(day, users[i], chunk);
    }
    std::stable_sort(chunk.begin(), chunk.end(),
                     [](const UserAction& a, const UserAction& b) {
                       return a.time < b.time;
                     });
    sink(std::move(chunk));
  }
}

std::vector<UserAction> SyntheticWorld::GenerateDays(int first_day,
                                                     int num_days) const {
  std::vector<UserAction> out;
  for (int d = 0; d < num_days; ++d) {
    std::vector<UserAction> day = GenerateDay(first_day + d);
    out.insert(out.end(), day.begin(), day.end());
  }
  return out;
}

}  // namespace rtrec
