#include "data/event_generator.h"

#include <algorithm>
#include <cmath>

#include "common/vec_math.h"

namespace rtrec {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

SyntheticWorld::SyntheticWorld(WorldConfig config)
    : config_(std::move(config)),
      catalog_(VideoCatalog::Generate([this] {
        VideoCatalog::Options o = config_.catalog;
        o.seed = MixHash64(config_.seed ^ 0xCA7A106ull) ^ o.seed;
        return o;
      }())),
      population_(UserPopulation::Generate([this] {
        UserPopulation::Options o = config_.population;
        o.num_genres = config_.catalog.num_genres;
        o.seed = MixHash64(config_.seed ^ 0x9090ull) ^ o.seed;
        return o;
      }())) {}

double SyntheticWorld::TrueAffinity(UserId user, VideoId video) const {
  if (user == 0 || user > population_.size() || video == 0 ||
      video > catalog_.size()) {
    return 0.0;
  }
  const SimUser& u = population_.Get(user);
  const VideoInfo& v = catalog_.Get(video);
  return Sigmoid(config_.behavior.affinity_sharpness *
                 Dot(u.taste, v.genre));
}

void SyntheticWorld::SimulateUserDay(int day, const SimUser& user,
                                     std::vector<UserAction>& out) const {
  // Independent stream per (seed, day, user) -> regenerable in any order.
  Rng rng(MixHash64(config_.seed) ^ MixHash64(static_cast<std::uint64_t>(day)) ^
          MixHash64(user.id * 0x5DEECE66Dull));

  // Poisson(activity) session count via thinning (activity is small).
  int sessions = 0;
  {
    const double l = std::exp(-user.activity);
    double p = rng.NextDouble();
    while (p > l && sessions < 50) {
      ++sessions;
      p *= rng.NextDouble();
    }
  }
  const BehaviorConfig& b = config_.behavior;
  const Timestamp day_start =
      config_.start_millis + static_cast<Timestamp>(day) * kMillisPerDay;

  const Timestamp day_end = day_start + kMillisPerDay;
  for (int s = 0; s < sessions; ++s) {
    Timestamp t = day_start + rng.NextInt64(0, kMillisPerDay - 1);

    // The user browses a popularity-sampled pool and gravitates to the
    // highest-affinity items: impressions for everything shown, clicks
    // and plays driven by true affinity. Sessions truncate at midnight
    // so the day-based train/test splits stay clean.
    for (std::size_t imp = 0;
         imp < b.impressions_per_session && t < day_end; ++imp) {
      // Taste-biased choice: best of a small popular pool of videos
      // already released by this day. Promoted slots show a same-day
      // release instead.
      const std::vector<VideoId>& todays_releases = catalog_.ReleasedOn(day);
      VideoId video;
      if (!todays_releases.empty() &&
          rng.NextBool(b.new_release_browse_rate)) {
        video = todays_releases[static_cast<std::size_t>(
            rng.NextUint64(todays_releases.size()))];
      } else {
        video = catalog_.SamplePopularReleased(rng, day);
        double affinity = TrueAffinity(user.id, video);
        for (std::size_t c = 1; c < b.choice_pool; ++c) {
          const VideoId other = catalog_.SamplePopularReleased(rng, day);
          const double other_affinity = TrueAffinity(user.id, other);
          // Keep the better item with high probability (imperfect choice).
          if (other_affinity > affinity && rng.NextBool(0.7)) {
            video = other;
            affinity = other_affinity;
          }
        }
      }
      const double affinity = TrueAffinity(user.id, video);
      t += rng.NextInt64(1000, 60 * 1000);  // Browse pacing.

      out.push_back(UserAction{user.id, video, ActionType::kImpress, 0.0, t});

      // Accidental clicks: engagement with no preference behind it —
      // abandoned within the first few percent of the video.
      const bool accidental = rng.NextBool(b.accidental_click_rate);
      const double p_click = b.click_floor + b.click_gain * affinity;
      if (!accidental && !rng.NextBool(p_click)) continue;
      t += rng.NextInt64(500, 5000);
      out.push_back(UserAction{user.id, video, ActionType::kClick, 0.0, t});
      out.push_back(UserAction{user.id, video, ActionType::kPlay, 0.0,
                               t + 100});

      double fraction = accidental
                            ? rng.NextDouble(0.01, 0.08)
                            : affinity + rng.NextGaussian(0.0, b.watch_noise);
      if (!accidental && rng.NextBool(b.background_watch_rate)) {
        // Left running: completion says nothing about preference.
        fraction = rng.NextDouble(0.85, 1.0);
      }
      fraction = std::clamp(fraction, 0.01, 1.0);
      if (!accidental) {
        // Time-limitation cap: the viewed fraction a session budget
        // allows on this video, independent of preference.
        const double budget_secs = rng.NextDouble(b.watch_budget_min_secs,
                                                  b.watch_budget_max_secs);
        const double cap =
            budget_secs / static_cast<double>(catalog_.Get(video).duration_sec);
        fraction = std::clamp(std::min(fraction, cap), 0.01, 1.0);
      }
      if (accidental) {
        const VideoInfo& info = catalog_.Get(video);
        t += std::max<Timestamp>(
            static_cast<Timestamp>(fraction * info.duration_sec * 1000.0),
            1000);
        out.push_back(
            UserAction{user.id, video, ActionType::kPlayTime, fraction, t});
        continue;  // No comments/likes on abandoned plays.
      }
      const VideoInfo& info = catalog_.Get(video);
      const Timestamp watched_ms = static_cast<Timestamp>(
          fraction * info.duration_sec * 1000.0);
      t += std::max<Timestamp>(watched_ms, 1000);
      out.push_back(
          UserAction{user.id, video, ActionType::kPlayTime, fraction, t});

      if (fraction > 0.5 && rng.NextBool(b.comment_rate * affinity * 2.0)) {
        out.push_back(UserAction{user.id, video, ActionType::kComment, 0.0,
                                 t + rng.NextInt64(1000, 30000)});
      }
      if (rng.NextBool(b.like_rate * affinity)) {
        out.push_back(UserAction{user.id, video, ActionType::kLike, 0.0,
                                 t + rng.NextInt64(500, 10000)});
      }
    }
  }
}

std::vector<UserAction> SyntheticWorld::GenerateDay(int day) const {
  std::vector<UserAction> out;
  // Rough reservation: activity * (impressions + ~2 engaged actions).
  out.reserve(population_.size() * 8);
  for (const SimUser& user : population_.users()) {
    SimulateUserDay(day, user, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const UserAction& a, const UserAction& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::vector<UserAction> SyntheticWorld::GenerateDays(int first_day,
                                                     int num_days) const {
  std::vector<UserAction> out;
  for (int d = 0; d < num_days; ++d) {
    std::vector<UserAction> day = GenerateDay(first_day + d);
    out.insert(out.end(), day.begin(), day.end());
  }
  return out;
}

}  // namespace rtrec
