#ifndef RTREC_DATA_EVENT_GENERATOR_H_
#define RTREC_DATA_EVENT_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/action.h"
#include "data/catalog.h"
#include "data/user_population.h"
#include "demographic/grouper.h"

namespace rtrec {

/// Behaviour knobs of the session simulator.
struct BehaviorConfig {
  /// Videos browsed (impressed) per session.
  std::size_t impressions_per_session = 6;
  /// Candidate pool sampled by popularity from which the user picks the
  /// best-affinity video to actually engage with (taste-biased choice).
  std::size_t choice_pool = 8;
  /// Click probability = click_floor + click_gain · affinity.
  double click_floor = 0.05;
  double click_gain = 0.65;
  /// Viewed fraction = clamp(affinity + Gaussian(0, watch_noise), 0, 1),
  /// further capped by the session's time budget (below).
  double watch_noise = 0.25;
  /// Per-watch time budget drawn uniformly from [min, max] seconds: a
  /// viewer may abandon a favourite long video purely for lack of time
  /// (Section 3.2's "time limitation" / video-length noise), which is
  /// what makes raw PlayTime weights unreliable as ratings. Short clips
  /// are unaffected; feature-length videos rarely reach high view rates.
  double watch_budget_min_secs = 300.0;
  double watch_budget_max_secs = 3600.0;
  /// P(comment | watched most of it) and P(like | clicked) scales.
  double comment_rate = 0.08;
  double like_rate = 0.12;
  /// Probability of an *accidental* click on an impressed video,
  /// independent of taste (misclicks, clickbait) — the implicit-feedback
  /// noise Section 3.2 warns about. Accidental plays are abandoned
  /// almost immediately (tiny view fraction).
  double accidental_click_rate = 0.08;
  /// Probability that a clicked video is left running to (near)
  /// completion regardless of taste — "the fact that a user watched a
  /// video in its entirety is not enough to conclude that he actually
  /// liked it" (Section 3.2). Produces maximal PlayTime weights on
  /// videos of arbitrary affinity, the noise that breaks weight-as-
  /// rating training.
  double background_watch_rate = 0.18;
  /// Probability that a browse slot shows a same-day release instead of
  /// a popularity-sampled video — front-page promotion of new content,
  /// the mechanism that gives fresh videos their first co-watches.
  /// Without it, popularity sampling (seeded at generation time) never
  /// surfaces a cold-start video, so a catalog-churn world silently
  /// produces zero traffic on its arrivals. Defaults to a small
  /// positive share; only consulted on days that actually have
  /// releases (worlds without staggered releases are unaffected).
  double new_release_browse_rate = 0.05;
  /// Sharpness of the affinity sigmoid; larger → more deterministic taste.
  double affinity_sharpness = 3.0;
};

/// A flash-crowd takeover: on `day`, every browse slot shows `video`
/// with probability `browse_share`, bypassing both promotion and the
/// taste-biased pool — breaking news / viral-hit traffic whose clicks
/// carry little preference signal but whose volume hammers one key.
struct FlashCrowdEvent {
  int day = 0;
  VideoId video = 0;
  double browse_share = 0.3;
};

/// Production-shaped stress layered over the base behaviour. Every knob
/// defaults off, in which case generation is bit-identical to the
/// legacy generator (enabling any knob consumes extra RNG draws and
/// therefore reshuffles the streams — scenarios are worlds of their
/// own, not overlays on an existing trace).
struct ScenarioConfig {
  /// Diurnal load: amplitude A in [0,1) of a sinusoidal session-start
  /// intensity 1 + A·cos(2π·(hour − peak)/24), sampled by rejection.
  /// 0 keeps the legacy uniform session times.
  double diurnal_amplitude = 0.0;
  /// Peak hour of the diurnal cycle, in [0, 24).
  double diurnal_peak_hour = 21.0;
  /// Flash-crowd takeovers, checked in order per browse slot.
  std::vector<FlashCrowdEvent> flash_crowds;
  /// Demographic drift: from `drift_start_day` (inclusive) every user's
  /// hidden taste blends toward the `drift_target_genre` axis with
  /// strength `drift_strength` in [0,1] — the population-wide trend
  /// shift ("everyone suddenly wants genre g") the PR 5 watchdog must
  /// notice. A shared target matters: a per-user rotation would only
  /// re-pair users with videos, leaving every aggregate engagement
  /// statistic invariant and therefore invisible to a bias-driven
  /// monitor; a common target reshapes the item-side engagement
  /// distribution itself. On drift days, trend-aligned videos also earn
  /// herd clicks beyond personal fit (click probability gains
  /// drift_strength · genre-alignment), so the engagement rate itself
  /// jumps at the drift boundary — the P(engage | impression) shift a
  /// calibration watchdog exists to catch. -1 / 0.0 disables.
  int drift_start_day = -1;
  double drift_strength = 0.0;
  std::size_t drift_target_genre = 0;
};

/// Configuration of a full synthetic world: the stand-in for the one-week
/// Tencent Video log of Section 6.1 (proprietary; see DESIGN.md).
struct WorldConfig {
  VideoCatalog::Options catalog;
  UserPopulation::Options population;
  BehaviorConfig behavior;
  ScenarioConfig scenario;
  /// Epoch of day 0, milliseconds.
  Timestamp start_millis = 0;
  std::uint64_t seed = 2016;
};

/// A deterministic simulated video site: catalog + population + session
/// simulator producing the implicit-feedback action stream (Impress /
/// Click / Play / PlayTime / Comment / Like). Each (day, user) draws from
/// its own seeded RNG stream, so any day can be regenerated independently
/// and the whole world is reproducible from `WorldConfig`.
class SyntheticWorld {
 public:
  /// Builds the catalog and population deterministically.
  explicit SyntheticWorld(WorldConfig config);

  /// Hidden ground-truth probability-like affinity of user u for video v
  /// in [0, 1]: sigmoid(sharpness · 〈taste_u, genre_v〉). Drives both
  /// generation and the A/B click simulator; models never see it. This
  /// overload uses the *pre-drift* taste.
  double TrueAffinity(UserId user, VideoId video) const;

  /// Day-aware affinity: applies the scenario's demographic drift when
  /// `day` is at or past drift_start_day. Equal to the 2-arg overload
  /// before the drift day (or when drift is off).
  double TrueAffinity(UserId user, VideoId video, int day) const;

  /// All actions of `day` (0-based), time-ordered.
  std::vector<UserAction> GenerateDay(int day) const;

  /// Actions of days [first_day, first_day + num_days), time-ordered.
  std::vector<UserAction> GenerateDays(int first_day, int num_days) const;

  /// Streaming day generation: simulates users in groups of
  /// `chunk_users` and hands each group's actions to `sink`, so a
  /// million-user day never materializes as one multi-GB vector. Each
  /// chunk is time-sorted internally, but chunks arrive in user order —
  /// consumers needing global time order must merge (the training
  /// pipeline doesn't: the stream engine re-orders by bolt anyway).
  /// chunk_users == 0 picks a default (4096).
  void GenerateDayChunked(
      int day, std::size_t chunk_users,
      const std::function<void(std::vector<UserAction>&&)>& sink) const;

  const VideoCatalog& catalog() const { return catalog_; }
  const UserPopulation& population() const { return population_; }
  const WorldConfig& config() const { return config_; }

  VideoTypeResolver TypeResolver() const { return catalog_.TypeResolver(); }

  /// Registers all user profiles into `grouper`.
  void RegisterProfiles(DemographicGrouper& grouper) const {
    population_.RegisterProfiles(grouper);
  }

 private:
  void SimulateUserDay(int day, const SimUser& user,
                       std::vector<UserAction>& out) const;

  /// Affinity from an explicit taste vector (drifted or not).
  double AffinityFor(const std::vector<float>& taste, VideoId video) const;

  /// Taste blended toward its one-genre rotation with strength s.
  std::vector<float> DriftedTaste(const std::vector<float>& taste,
                                  double s) const;

  /// Session start offset within the day: uniform, or diurnal-shaped by
  /// rejection sampling when the scenario enables it.
  std::int64_t SessionStartOffset(Rng& rng) const;

  /// The flash-crowd video a browse slot lands on, or 0 for none.
  VideoId FlashVideoFor(int day, Rng& rng) const;

  /// Expected action count for users [first, end) on one day, for
  /// vector reservations: sessions × impressions × expected actions per
  /// impression (impression + engagement tail).
  std::size_t EstimateActions(std::size_t first, std::size_t end) const;

  WorldConfig config_;
  VideoCatalog catalog_;
  UserPopulation population_;
};

}  // namespace rtrec

#endif  // RTREC_DATA_EVENT_GENERATOR_H_
