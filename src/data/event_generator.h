#ifndef RTREC_DATA_EVENT_GENERATOR_H_
#define RTREC_DATA_EVENT_GENERATOR_H_

#include <memory>
#include <vector>

#include "core/action.h"
#include "data/catalog.h"
#include "data/user_population.h"
#include "demographic/grouper.h"

namespace rtrec {

/// Behaviour knobs of the session simulator.
struct BehaviorConfig {
  /// Videos browsed (impressed) per session.
  std::size_t impressions_per_session = 6;
  /// Candidate pool sampled by popularity from which the user picks the
  /// best-affinity video to actually engage with (taste-biased choice).
  std::size_t choice_pool = 8;
  /// Click probability = click_floor + click_gain · affinity.
  double click_floor = 0.05;
  double click_gain = 0.65;
  /// Viewed fraction = clamp(affinity + Gaussian(0, watch_noise), 0, 1),
  /// further capped by the session's time budget (below).
  double watch_noise = 0.25;
  /// Per-watch time budget drawn uniformly from [min, max] seconds: a
  /// viewer may abandon a favourite long video purely for lack of time
  /// (Section 3.2's "time limitation" / video-length noise), which is
  /// what makes raw PlayTime weights unreliable as ratings. Short clips
  /// are unaffected; feature-length videos rarely reach high view rates.
  double watch_budget_min_secs = 300.0;
  double watch_budget_max_secs = 3600.0;
  /// P(comment | watched most of it) and P(like | clicked) scales.
  double comment_rate = 0.08;
  double like_rate = 0.12;
  /// Probability of an *accidental* click on an impressed video,
  /// independent of taste (misclicks, clickbait) — the implicit-feedback
  /// noise Section 3.2 warns about. Accidental plays are abandoned
  /// almost immediately (tiny view fraction).
  double accidental_click_rate = 0.08;
  /// Probability that a clicked video is left running to (near)
  /// completion regardless of taste — "the fact that a user watched a
  /// video in its entirety is not enough to conclude that he actually
  /// liked it" (Section 3.2). Produces maximal PlayTime weights on
  /// videos of arbitrary affinity, the noise that breaks weight-as-
  /// rating training.
  double background_watch_rate = 0.18;
  /// Probability that a browse slot shows a same-day release instead of
  /// a popularity-sampled video — front-page promotion of new content,
  /// the mechanism that gives fresh videos their first co-watches.
  double new_release_browse_rate = 0.0;
  /// Sharpness of the affinity sigmoid; larger → more deterministic taste.
  double affinity_sharpness = 3.0;
};

/// Configuration of a full synthetic world: the stand-in for the one-week
/// Tencent Video log of Section 6.1 (proprietary; see DESIGN.md).
struct WorldConfig {
  VideoCatalog::Options catalog;
  UserPopulation::Options population;
  BehaviorConfig behavior;
  /// Epoch of day 0, milliseconds.
  Timestamp start_millis = 0;
  std::uint64_t seed = 2016;
};

/// A deterministic simulated video site: catalog + population + session
/// simulator producing the implicit-feedback action stream (Impress /
/// Click / Play / PlayTime / Comment / Like). Each (day, user) draws from
/// its own seeded RNG stream, so any day can be regenerated independently
/// and the whole world is reproducible from `WorldConfig`.
class SyntheticWorld {
 public:
  /// Builds the catalog and population deterministically.
  explicit SyntheticWorld(WorldConfig config);

  /// Hidden ground-truth probability-like affinity of user u for video v
  /// in [0, 1]: sigmoid(sharpness · 〈taste_u, genre_v〉). Drives both
  /// generation and the A/B click simulator; models never see it.
  double TrueAffinity(UserId user, VideoId video) const;

  /// All actions of `day` (0-based), time-ordered.
  std::vector<UserAction> GenerateDay(int day) const;

  /// Actions of days [first_day, first_day + num_days), time-ordered.
  std::vector<UserAction> GenerateDays(int first_day, int num_days) const;

  const VideoCatalog& catalog() const { return catalog_; }
  const UserPopulation& population() const { return population_; }
  const WorldConfig& config() const { return config_; }

  VideoTypeResolver TypeResolver() const { return catalog_.TypeResolver(); }

  /// Registers all user profiles into `grouper`.
  void RegisterProfiles(DemographicGrouper& grouper) const {
    population_.RegisterProfiles(grouper);
  }

 private:
  void SimulateUserDay(int day, const SimUser& user,
                       std::vector<UserAction>& out) const;

  WorldConfig config_;
  VideoCatalog catalog_;
  UserPopulation population_;
};

}  // namespace rtrec

#endif  // RTREC_DATA_EVENT_GENERATOR_H_
