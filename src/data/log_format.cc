#include "data/log_format.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace rtrec {

std::string ActionToTsv(const UserAction& action) {
  return StringPrintf("%llu\t%llu\t%s\t%.6f\t%lld",
                      static_cast<unsigned long long>(action.user),
                      static_cast<unsigned long long>(action.video),
                      ActionTypeToString(action.type), action.view_fraction,
                      static_cast<long long>(action.time));
}

StatusOr<UserAction> ActionFromTsv(const std::string& line) {
  const std::vector<std::string_view> fields = Split(line, '\t');
  if (fields.size() != 5) {
    return Status::InvalidArgument("expected 5 tab-separated fields, got " +
                                   std::to_string(fields.size()));
  }
  StatusOr<std::uint64_t> user = ParseUint64(Trim(fields[0]));
  if (!user.ok()) return user.status();
  StatusOr<std::uint64_t> video = ParseUint64(Trim(fields[1]));
  if (!video.ok()) return video.status();
  StatusOr<ActionType> type =
      ActionTypeFromString(std::string(Trim(fields[2])));
  if (!type.ok()) return type.status();
  StatusOr<double> fraction = ParseDouble(Trim(fields[3]));
  if (!fraction.ok()) return fraction.status();
  StatusOr<std::int64_t> time = ParseInt64(Trim(fields[4]));
  if (!time.ok()) return time.status();

  UserAction action;
  action.user = *user;
  action.video = *video;
  action.type = *type;
  action.view_fraction = *fraction;
  action.time = *time;
  return action;
}

Status WriteActionLog(const std::string& path,
                      const std::vector<UserAction>& actions) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  for (const UserAction& action : actions) {
    out << ActionToTsv(action) << '\n';
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed on '" + path + "'");
  return Status::OK();
}

StatusOr<std::vector<UserAction>> ReadActionLog(const std::string& path,
                                                bool skip_malformed) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::vector<UserAction> actions;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    StatusOr<UserAction> action = ActionFromTsv(line);
    if (!action.ok()) {
      if (skip_malformed) continue;
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": " + action.status().message());
    }
    actions.push_back(*action);
  }
  return actions;
}

}  // namespace rtrec
