#ifndef RTREC_DATA_LOG_FORMAT_H_
#define RTREC_DATA_LOG_FORMAT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/action.h"

namespace rtrec {

/// TSV wire format for action logs, one action per line:
///   user \t video \t action_name \t view_fraction \t time_millis
/// Matching the raw-message parse/filter step the spout performs.
std::string ActionToTsv(const UserAction& action);

/// Parses one TSV line; rejects malformed input (the "unqualified data
/// tuples" the spout filters).
StatusOr<UserAction> ActionFromTsv(const std::string& line);

/// Writes all actions to `path`, one per line. Overwrites.
Status WriteActionLog(const std::string& path,
                      const std::vector<UserAction>& actions);

/// Reads an action log; skips blank lines, fails on malformed lines
/// unless `skip_malformed`.
StatusOr<std::vector<UserAction>> ReadActionLog(const std::string& path,
                                                bool skip_malformed = false);

}  // namespace rtrec

#endif  // RTREC_DATA_LOG_FORMAT_H_
