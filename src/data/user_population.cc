#include "data/user_population.h"

#include <cassert>
#include <cmath>

namespace rtrec {

namespace {

void Normalize(std::vector<float>& v) {
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (float& x : v) x = static_cast<float>(x / norm);
}

}  // namespace

UserPopulation::UserPopulation(Options options, std::vector<SimUser> users,
                               std::vector<std::vector<float>> prototypes)
    : options_(options),
      users_(std::move(users)),
      prototypes_(std::move(prototypes)) {}

UserPopulation UserPopulation::Generate(const Options& options) {
  assert(options.num_users > 0);
  assert(options.num_genres > 0);
  Rng rng(options.seed);

  // One taste prototype per (gender, age) demographic cell.
  std::vector<std::vector<float>> prototypes(DemographicGrouper::kNumGroups);
  for (auto& prototype : prototypes) {
    prototype.resize(options.num_genres);
    for (float& x : prototype) x = static_cast<float>(rng.NextGaussian());
    Normalize(prototype);
  }

  std::vector<SimUser> users;
  users.reserve(options.num_users);
  for (std::size_t i = 0; i < options.num_users; ++i) {
    SimUser user;
    user.id = static_cast<UserId>(i + 1);
    user.profile.registered = rng.NextBool(options.registered_fraction);
    if (user.profile.registered) {
      // Skip kUnknown buckets so registered users land in real groups.
      user.profile.gender =
          rng.NextBool(0.5) ? Gender::kFemale : Gender::kMale;
      user.profile.age = static_cast<AgeBucket>(
          1 + rng.NextUint64(kNumAgeBuckets - 1));
      user.profile.education = static_cast<Education>(
          1 + rng.NextUint64(kNumEducationLevels - 1));
    }

    const GroupId group = DemographicGrouper::GroupFor(user.profile);
    user.taste.resize(options.num_genres);
    if (group != kGlobalGroup) {
      const std::vector<float>& prototype = prototypes[group];
      for (std::size_t g = 0; g < options.num_genres; ++g) {
        user.taste[g] =
            prototype[g] +
            static_cast<float>(rng.NextGaussian(0.0, options.taste_noise));
      }
    } else {
      // Unregistered users: individual taste with no group structure.
      for (float& x : user.taste) {
        x = static_cast<float>(rng.NextGaussian());
      }
    }
    Normalize(user.taste);

    user.activity = options.mean_activity *
                    std::exp(rng.NextGaussian(0.0, options.activity_sigma));
    users.push_back(std::move(user));
  }
  return UserPopulation(options, std::move(users), std::move(prototypes));
}

const SimUser& UserPopulation::Get(UserId id) const {
  assert(id >= 1 && id <= users_.size());
  return users_[static_cast<std::size_t>(id - 1)];
}

void UserPopulation::RegisterProfiles(DemographicGrouper& grouper) const {
  for (const SimUser& user : users_) {
    if (user.profile.registered) {
      grouper.RegisterProfile(user.id, user.profile);
    }
  }
}

const std::vector<float>& UserPopulation::GroupPrototype(
    GroupId group) const {
  assert(group < prototypes_.size());
  return prototypes_[group];
}

}  // namespace rtrec
