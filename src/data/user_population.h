#ifndef RTREC_DATA_USER_POPULATION_H_
#define RTREC_DATA_USER_POPULATION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "demographic/grouper.h"
#include "demographic/profile.h"

namespace rtrec {

/// One simulated user: a demographic profile plus a *hidden* taste vector
/// in the same genre space as the catalog. Registered users' tastes are
/// drawn around their demographic group's prototype — the planted
/// between-group variation that demographic training exploits (Fig. 3).
struct SimUser {
  UserId id = 0;
  UserProfile profile;
  /// Hidden taste vector, unit norm. Invisible to the models.
  std::vector<float> taste;
  /// Expected engaged sessions per day (activity skew).
  double activity = 1.0;
};

/// The synthetic user population.
class UserPopulation {
 public:
  struct Options {
    std::size_t num_users = 2000;
    /// Must match the catalog's genre dimensionality.
    std::size_t num_genres = 8;
    /// Fraction of registered users (the rest are unregistered — a large
    /// proportion in Tencent Video, per the paper's introduction).
    double registered_fraction = 0.7;
    /// How tightly a registered user's taste clusters around the group
    /// prototype (smaller noise → stronger group signal).
    double taste_noise = 0.4;
    /// Mean engaged sessions per user per day.
    double mean_activity = 3.0;
    /// Activity skew: activity ~ mean * exp(Gaussian(0, sigma)).
    double activity_sigma = 0.8;
    std::uint64_t seed = 7;
  };

  /// Deterministically generates a population.
  static UserPopulation Generate(const Options& options);

  /// User ids are 1..size(); id 0 is invalid.
  const SimUser& Get(UserId id) const;
  std::size_t size() const { return users_.size(); }
  const std::vector<SimUser>& users() const { return users_; }

  /// Registers every registered user's profile into `grouper`.
  void RegisterProfiles(DemographicGrouper& grouper) const;

  /// Group prototype taste (unit norm) for a (gender, age) cell; exposed
  /// for tests asserting the planted structure.
  const std::vector<float>& GroupPrototype(GroupId group) const;

  const Options& options() const { return options_; }

 private:
  UserPopulation(Options options, std::vector<SimUser> users,
                 std::vector<std::vector<float>> prototypes);

  Options options_;
  std::vector<SimUser> users_;
  std::vector<std::vector<float>> prototypes_;  // Indexed by GroupId.
};

}  // namespace rtrec

#endif  // RTREC_DATA_USER_POPULATION_H_
