#include "demographic/demographic_filter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "core/implicit_feedback.h"

namespace rtrec {

DemographicFilter::DemographicFilter(Recommender* primary,
                                     HotVideoTracker* tracker,
                                     const DemographicGrouper* grouper,
                                     Options options)
    : primary_(primary),
      tracker_(tracker),
      grouper_(grouper),
      options_(options) {
  assert(primary_ != nullptr);
  assert(tracker_ != nullptr);
  assert(grouper_ != nullptr);
  assert(options_.blend_ratio >= 0.0 && options_.blend_ratio <= 1.0);
}

std::vector<ScoredVideo> DemographicFilter::Merge(
    const std::vector<ScoredVideo>& primary,
    const std::vector<ScoredVideo>& hot, std::size_t n, double blend_ratio) {
  std::vector<ScoredVideo> out;
  out.reserve(n);
  std::unordered_set<VideoId> seen;

  const std::size_t hot_slots = static_cast<std::size_t>(
      std::llround(blend_ratio * static_cast<double>(n)));
  const std::size_t primary_slots = n - hot_slots;

  for (const ScoredVideo& v : primary) {
    if (out.size() >= primary_slots) break;
    if (seen.insert(v.video).second) out.push_back(v);
  }
  for (const ScoredVideo& v : hot) {
    if (out.size() >= n) break;
    if (seen.insert(v.video).second) out.push_back(v);
  }
  // Shortfall (hot list exhausted): fill from remaining primary results.
  for (const ScoredVideo& v : primary) {
    if (out.size() >= n) break;
    if (seen.insert(v.video).second) out.push_back(v);
  }
  return out;
}

StatusOr<std::vector<ScoredVideo>> DemographicFilter::Recommend(
    const RecRequest& request) {
  const std::size_t n = request.top_n > 0 ? request.top_n : options_.top_n;

  StatusOr<std::vector<ScoredVideo>> primary = primary_->Recommend(request);
  if (!primary.ok()) return primary.status();

  GroupId group = grouper_->GroupOf(request.user);
  std::vector<ScoredVideo> hot = tracker_->Hottest(group, n, request.now);
  if (hot.empty() && group != kGlobalGroup) {
    // The group has no traffic yet — fall back to global popularity, the
    // rule the paper applies to new unregistered users.
    hot = tracker_->Hottest(kGlobalGroup, n, request.now);
  }

  if (primary->size() < options_.min_primary_results) {
    // Cold start: the MF path cannot produce enough efficient
    // recommendations; rely on the demographic group (Section 5.2.1).
    return Merge(*primary, hot, n, /*blend_ratio=*/1.0);
  }
  return Merge(*primary, hot, n, options_.blend_ratio);
}

void DemographicFilter::Observe(const UserAction& action) {
  primary_->Observe(action);
  // Hot tracking uses a neutral confidence (click-equivalent weighting):
  // any engaged action counts toward popularity.
  const double weight = action.type == ActionType::kImpress ? 0.0 : 1.0;
  if (weight > 0.0) {
    const GroupId group = grouper_->GroupOf(action.user);
    if (group != kGlobalGroup) {
      tracker_->Record(group, action.video, weight, action.time);
    }
    tracker_->Record(kGlobalGroup, action.video, weight, action.time);
  }
}

}  // namespace rtrec
