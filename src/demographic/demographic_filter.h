#ifndef RTREC_DEMOGRAPHIC_DEMOGRAPHIC_FILTER_H_
#define RTREC_DEMOGRAPHIC_DEMOGRAPHIC_FILTER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/recommender.h"
#include "demographic/grouper.h"
#include "demographic/hot_videos.h"

namespace rtrec {

/// Demographic filtering (Section 5.2.1): selectively merges the hot
/// videos of the user's demographic group into the MF-based results,
/// broadening the span of recommendations (diversity/novelty) and solving
/// the cold-start problem — users with too little history get the group's
/// hot videos, and brand-new unregistered users get the *global* hot
/// videos.
class DemographicFilter : public Recommender {
 public:
  struct Options {
    /// Fraction of the final list reserved for demographic hot videos
    /// when the primary model produced enough results.
    double blend_ratio = 0.2;
    /// If the primary model returns fewer results than this, the list is
    /// completed entirely from the demographic hot videos (cold start).
    std::size_t min_primary_results = 3;
    /// Final list length when the request does not specify one.
    std::size_t top_n = 10;
  };

  /// `primary`, `tracker`, `grouper` are shared, not owned.
  DemographicFilter(Recommender* primary, HotVideoTracker* tracker,
                    const DemographicGrouper* grouper, Options options);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  /// Forwards to the primary model and records the action in the hot
  /// trackers (user's group + global).
  void Observe(const UserAction& action) override;

  std::string name() const override { return "rMF+DB"; }

  /// Pure merge used by Recommend and exposed for tests: keeps primary
  /// order, reserves ~blend_ratio of the `n` slots for hot videos not
  /// already present, and fills any shortfall from either side.
  static std::vector<ScoredVideo> Merge(
      const std::vector<ScoredVideo>& primary,
      const std::vector<ScoredVideo>& hot, std::size_t n,
      double blend_ratio);

 private:
  Recommender* primary_;
  HotVideoTracker* tracker_;
  const DemographicGrouper* grouper_;
  Options options_;
};

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_DEMOGRAPHIC_FILTER_H_
