#include "demographic/demographic_topology.h"

#include <string>
#include <utility>

#include "common/lru_cache.h"
#include "core/implicit_feedback.h"
#include "core/online_mf.h"

namespace rtrec {

namespace demographic_schema {

namespace {
std::shared_ptr<const stream::Schema> MakeSchema(
    std::initializer_list<const char*> names) {
  return std::make_shared<const stream::Schema>(names);
}
}  // namespace

const std::shared_ptr<const stream::Schema>& GroupedAction() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"group", "user", "video", "action", "value", "time"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& GroupedUserVec() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"group", "user", "vec", "bias"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& GroupedVideoVec() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"group", "video", "vec", "bias"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& GroupedPair() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"group", "pair_key", "video1", "video2", "time"}));
  return schema;
}

const std::shared_ptr<const stream::Schema>& GroupedPairSim() {
  static const auto& schema = *new std::shared_ptr<const stream::Schema>(
      MakeSchema({"group", "video1", "video2", "sim", "time"}));
  return schema;
}

}  // namespace demographic_schema

namespace {

std::int64_t GroupField(GroupId group) {
  return static_cast<std::int64_t>(group);
}

StatusOr<GroupId> GetGroup(const stream::Tuple& tuple) {
  StatusOr<std::int64_t> group = tuple.GetInt("group");
  if (!group.ok()) return group.status();
  return static_cast<GroupId>(*group);
}

StatusOr<UserAction> GroupedTupleToAction(const stream::Tuple& tuple) {
  StatusOr<std::int64_t> user = tuple.GetInt("user");
  if (!user.ok()) return user.status();
  StatusOr<std::int64_t> video = tuple.GetInt("video");
  if (!video.ok()) return video.status();
  StatusOr<std::int64_t> action = tuple.GetInt("action");
  if (!action.ok()) return action.status();
  StatusOr<double> value = tuple.GetDouble("value");
  if (!value.ok()) return value.status();
  StatusOr<std::int64_t> time = tuple.GetInt("time");
  if (!time.ok()) return time.status();
  if (*action < 0 || *action >= kNumActionTypes) {
    return Status::InvalidArgument("action code out of range");
  }
  UserAction out;
  out.user = static_cast<UserId>(*user);
  out.video = static_cast<VideoId>(*video);
  out.type = static_cast<ActionType>(*action);
  out.view_fraction = *value;
  out.time = *time;
  return out;
}

/// Spout: pulls actions and stamps the user's demographic group.
class GroupingActionSpout : public stream::Spout {
 public:
  GroupingActionSpout(std::shared_ptr<ActionSource> source,
                      const DemographicGrouper* grouper)
      : source_(std::move(source)), grouper_(grouper) {}

  bool Next(stream::OutputCollector& collector) override {
    std::optional<UserAction> action = source_->Next();
    if (!action.has_value()) return false;
    const GroupId group = grouper_->GroupOf(action->user);
    collector.Emit(stream::Tuple(
        demographic_schema::GroupedAction(),
        {GroupField(group), static_cast<std::int64_t>(action->user),
         static_cast<std::int64_t>(action->video),
         static_cast<std::int64_t>(action->type), action->view_fraction,
         action->time}));
    return true;
  }

 private:
  std::shared_ptr<ActionSource> source_;
  const DemographicGrouper* grouper_;
};

/// ComputeMF within the action's group: reads/initializes vectors in the
/// group's FactorStore and ships the new vectors keyed by (group, id).
class GroupComputeMfBolt : public stream::Bolt {
 public:
  GroupComputeMfBolt(GroupStoreRegistry* stores, MfModelConfig config)
      : stores_(stores), config_(std::move(config)) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    StatusOr<GroupId> group = GetGroup(tuple);
    StatusOr<UserAction> action = GroupedTupleToAction(tuple);
    if (!group.ok() || !action.ok()) return;
    const double confidence = ActionConfidence(*action, config_.feedback);

    GroupStores& stores = stores_->GetOrCreate(*group);
    double rating = 0.0, eta = 0.0;
    ResolveUpdateStep(config_, confidence, &rating, &eta);
    if (rating <= 0.0) return;

    FactorEntry user = stores.factors->GetOrInitUser(action->user);
    FactorEntry video = stores.factors->GetOrInitVideo(action->video);
    const double mean =
        config_.use_global_mean ? stores.factors->GlobalMean() : 0.0;
    OnlineMf::ApplySgdStep(user, video, rating, eta, config_.lambda, mean);
    stores.factors->ObserveRating(rating);

    collector.EmitTo(
        "user_vec",
        stream::Tuple(demographic_schema::GroupedUserVec(),
                      {GroupField(*group),
                       static_cast<std::int64_t>(action->user),
                       std::move(user.vec), static_cast<double>(user.bias)}));
    collector.EmitTo(
        "video_vec",
        stream::Tuple(demographic_schema::GroupedVideoVec(),
                      {GroupField(*group),
                       static_cast<std::int64_t>(action->video),
                       std::move(video.vec),
                       static_cast<double>(video.bias)}));
  }

 private:
  GroupStoreRegistry* stores_;
  MfModelConfig config_;
};

class GroupMfStorageBolt : public stream::Bolt {
 public:
  explicit GroupMfStorageBolt(GroupStoreRegistry* stores) : stores_(stores) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    (void)collector;
    StatusOr<GroupId> group = GetGroup(tuple);
    StatusOr<std::vector<float>> vec = tuple.GetFloats("vec");
    StatusOr<double> bias = tuple.GetDouble("bias");
    if (!group.ok() || !vec.ok() || !bias.ok()) return;
    FactorEntry entry;
    entry.vec = std::move(vec).value();
    entry.bias = static_cast<float>(*bias);
    GroupStores& stores = stores_->GetOrCreate(*group);
    if (StatusOr<std::int64_t> user = tuple.GetInt("user"); user.ok()) {
      stores.factors->PutUser(static_cast<UserId>(*user), std::move(entry));
    } else if (StatusOr<std::int64_t> video = tuple.GetInt("video");
               video.ok()) {
      stores.factors->PutVideo(static_cast<VideoId>(*video),
                               std::move(entry));
    }
  }

 private:
  GroupStoreRegistry* stores_;
};

class GroupUserHistoryBolt : public stream::Bolt {
 public:
  GroupUserHistoryBolt(GroupStoreRegistry* stores, FeedbackConfig feedback)
      : stores_(stores), feedback_(feedback) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    (void)collector;
    StatusOr<GroupId> group = GetGroup(tuple);
    StatusOr<UserAction> action = GroupedTupleToAction(tuple);
    if (!group.ok() || !action.ok()) return;
    const double confidence = ActionConfidence(*action, feedback_);
    if (confidence <= 0.0) return;
    stores_->GetOrCreate(*group).history->Append(
        action->user, HistoryEntry{action->video, confidence, action->time});
  }

 private:
  GroupStoreRegistry* stores_;
  FeedbackConfig feedback_;
};

class GroupGetItemPairsBolt : public stream::Bolt {
 public:
  GroupGetItemPairsBolt(GroupStoreRegistry* stores, SimilarityConfig config,
                        FeedbackConfig feedback)
      : stores_(stores), config_(std::move(config)), feedback_(feedback) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    StatusOr<GroupId> group = GetGroup(tuple);
    StatusOr<UserAction> action = GroupedTupleToAction(tuple);
    if (!group.ok() || !action.ok()) return;
    const double confidence = ActionConfidence(*action, feedback_);
    if (confidence < config_.min_confidence) return;
    GroupStores& stores = stores_->GetOrCreate(*group);
    for (const HistoryEntry& partner : stores.history->GetRecent(
             action->user, config_.max_pairs_per_action)) {
      if (partner.video == action->video) continue;
      const VideoPair pair(action->video, partner.video);
      const std::string key = std::to_string(pair.first) + "#" +
                              std::to_string(pair.second);
      collector.EmitTo(
          "pairs",
          stream::Tuple(demographic_schema::GroupedPair(),
                        {GroupField(*group), key,
                         static_cast<std::int64_t>(action->video),
                         static_cast<std::int64_t>(partner.video),
                         action->time}));
    }
  }

 private:
  GroupStoreRegistry* stores_;
  SimilarityConfig config_;
  FeedbackConfig feedback_;
};

class GroupItemPairSimBolt : public stream::Bolt {
 public:
  GroupItemPairSimBolt(GroupStoreRegistry* stores,
                       VideoTypeResolver type_resolver,
                       SimilarityConfig config)
      : stores_(stores),
        type_resolver_(std::move(type_resolver)),
        config_(std::move(config)) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    StatusOr<GroupId> group = GetGroup(tuple);
    StatusOr<std::int64_t> v1 = tuple.GetInt("video1");
    StatusOr<std::int64_t> v2 = tuple.GetInt("video2");
    StatusOr<std::int64_t> time = tuple.GetInt("time");
    if (!group.ok() || !v1.ok() || !v2.ok() || !time.ok()) return;
    const VideoId a = static_cast<VideoId>(*v1);
    const VideoId b = static_cast<VideoId>(*v2);
    GroupStores& stores = stores_->GetOrCreate(*group);
    // Within-group similarity: the group's own y_i vectors (Eq. 9).
    const FactorEntry ya = stores.factors->GetOrInitVideo(a);
    const FactorEntry yb = stores.factors->GetOrInitVideo(b);
    const double s1 = CfSimilarity(ya.vec, yb.vec);
    const double s2 = TypeSimilarity(type_resolver_(a), type_resolver_(b));
    const double fused = FuseSimilarity(s1, s2, config_.beta);
    collector.EmitTo(
        "pair_sim",
        stream::Tuple(demographic_schema::GroupedPairSim(),
                      {GroupField(*group), static_cast<std::int64_t>(a),
                       static_cast<std::int64_t>(b), fused, *time}));
  }

 private:
  GroupStoreRegistry* stores_;
  VideoTypeResolver type_resolver_;
  SimilarityConfig config_;
};

class GroupResultStorageBolt : public stream::Bolt {
 public:
  explicit GroupResultStorageBolt(GroupStoreRegistry* stores)
      : stores_(stores) {}

  void Process(const stream::Tuple& tuple,
               stream::OutputCollector& collector) override {
    (void)collector;
    StatusOr<GroupId> group = GetGroup(tuple);
    StatusOr<std::int64_t> v1 = tuple.GetInt("video1");
    StatusOr<std::int64_t> v2 = tuple.GetInt("video2");
    StatusOr<double> sim = tuple.GetDouble("sim");
    StatusOr<std::int64_t> time = tuple.GetInt("time");
    if (!group.ok() || !v1.ok() || !v2.ok() || !sim.ok() || !time.ok()) {
      return;
    }
    stores_->GetOrCreate(*group).sim_table->Update(
        static_cast<VideoId>(*v1), static_cast<VideoId>(*v2), *sim, *time);
  }

 private:
  GroupStoreRegistry* stores_;
};

}  // namespace

StatusOr<stream::TopologySpec> BuildDemographicTopology(
    std::shared_ptr<ActionSource> source,
    const DemographicPipelineDeps& deps,
    const PipelineParallelism& parallelism) {
  if (source == nullptr) return Status::InvalidArgument("null action source");
  if (deps.stores == nullptr || deps.grouper == nullptr ||
      deps.type_resolver == nullptr) {
    return Status::InvalidArgument("incomplete demographic pipeline deps");
  }
  RTREC_RETURN_IF_ERROR(deps.model_config.Validate());
  RTREC_RETURN_IF_ERROR(deps.sim_config.Validate());
  if (deps.stores->options().num_factors != deps.model_config.num_factors) {
    return Status::InvalidArgument(
        "registry dimensionality does not match the model config");
  }

  GroupStoreRegistry* stores = deps.stores;
  const DemographicGrouper* grouper = deps.grouper;
  VideoTypeResolver type_resolver = deps.type_resolver;
  MfModelConfig model_config = deps.model_config;
  SimilarityConfig sim_config = deps.sim_config;
  FeedbackConfig feedback = model_config.feedback;

  stream::TopologyBuilder builder;
  builder.AddSpout(
      "spout",
      [source, grouper] {
        return std::make_unique<GroupingActionSpout>(source, grouper);
      },
      parallelism.spout);

  builder
      .AddBolt(
          "compute_mf",
          [stores, model_config] {
            return std::make_unique<GroupComputeMfBolt>(stores, model_config);
          },
          parallelism.compute_mf)
      // Keyed by (group, user): a user belongs to one group, so the
      // read-compute step for a user is serialized per group model.
      .FieldsGrouping("spout", {"group", "user"});

  builder
      .AddBolt(
          "mf_storage",
          [stores] { return std::make_unique<GroupMfStorageBolt>(stores); },
          parallelism.mf_storage)
      .FieldsGrouping("compute_mf", "user_vec", {"group", "user"})
      .FieldsGrouping("compute_mf", "video_vec", {"group", "video"});

  builder
      .AddBolt(
          "user_history",
          [stores, feedback] {
            return std::make_unique<GroupUserHistoryBolt>(stores, feedback);
          },
          parallelism.user_history)
      .FieldsGrouping("spout", {"group", "user"});

  builder
      .AddBolt(
          "get_item_pairs",
          [stores, sim_config, feedback] {
            return std::make_unique<GroupGetItemPairsBolt>(stores, sim_config,
                                                           feedback);
          },
          parallelism.get_item_pairs)
      .FieldsGrouping("spout", {"group", "user"});

  builder
      .AddBolt(
          "item_pair_sim",
          [stores, type_resolver, sim_config] {
            return std::make_unique<GroupItemPairSimBolt>(
                stores, type_resolver, sim_config);
          },
          parallelism.item_pair_sim)
      .FieldsGrouping("get_item_pairs", "pairs", {"group", "pair_key"});

  builder
      .AddBolt(
          "result_storage",
          [stores] {
            return std::make_unique<GroupResultStorageBolt>(stores);
          },
          parallelism.result_storage)
      .FieldsGrouping("item_pair_sim", "pair_sim", {"group", "video1"});

  return builder.Build();
}

}  // namespace rtrec
