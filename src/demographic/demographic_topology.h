#ifndef RTREC_DEMOGRAPHIC_DEMOGRAPHIC_TOPOLOGY_H_
#define RTREC_DEMOGRAPHIC_DEMOGRAPHIC_TOPOLOGY_H_

#include <memory>

#include "core/model_config.h"
#include "core/similarity.h"
#include "core/topology_factory.h"
#include "demographic/group_stores.h"
#include "demographic/grouper.h"
#include "stream/topology_builder.h"

namespace rtrec {

/// The demographically-trained deployment of Section 5.2.2: the Fig. 2
/// topology where every model operation happens *within the user's
/// demographic group*. The spout resolves each action's group and stamps
/// it onto the tuple; from there the fields groupings carry the group:
///
///   spout ──shuffle──> compute_mf ──fields(group,user)──>  mf_storage
///                            └──────fields(group,video)────────┘
///   spout ──fields(group,user)──> user_history
///   spout ──fields(group,user)──> get_item_pairs
///       ──fields(group,pair_key)──> item_pair_sim
///       ──fields(group,video1)──> result_storage
///
/// Keys are (group, id) pairs, so the single-writer-per-key guarantee
/// holds per group, and every group's vectors/tables live in its own
/// stores inside the shared GroupStoreRegistry. Unregistered users train
/// the kGlobalGroup model.
struct DemographicPipelineDeps {
  /// Per-group store registry (shared, not owned; outlives the topology).
  GroupStoreRegistry* stores = nullptr;
  /// Resolves users to demographic groups (shared, not owned).
  const DemographicGrouper* grouper = nullptr;
  VideoTypeResolver type_resolver;
  MfModelConfig model_config;
  SimilarityConfig sim_config;
};

/// Field schemas of the demographic pipeline (action tuples carry a
/// leading "group" field; downstream tuples mirror the plain pipeline
/// plus "group").
namespace demographic_schema {
const std::shared_ptr<const stream::Schema>& GroupedAction();
const std::shared_ptr<const stream::Schema>& GroupedUserVec();
const std::shared_ptr<const stream::Schema>& GroupedVideoVec();
const std::shared_ptr<const stream::Schema>& GroupedPair();
const std::shared_ptr<const stream::Schema>& GroupedPairSim();
}  // namespace demographic_schema

/// Builds the demographically-partitioned Fig. 2 topology.
StatusOr<stream::TopologySpec> BuildDemographicTopology(
    std::shared_ptr<ActionSource> source,
    const DemographicPipelineDeps& deps,
    const PipelineParallelism& parallelism = {});

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_DEMOGRAPHIC_TOPOLOGY_H_
