#include "demographic/demographic_trainer.h"

#include <cassert>
#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "kvstore/checkpoint.h"

namespace rtrec {

DemographicTrainer::DemographicTrainer(const DemographicGrouper* grouper,
                                       VideoTypeResolver type_resolver,
                                       Options options)
    : grouper_(grouper),
      type_resolver_(std::move(type_resolver)),
      options_(std::move(options)) {
  assert(grouper_ != nullptr);
  assert(type_resolver_ != nullptr);
  if (options_.train_global) {
    global_ = std::make_unique<RecEngine>(type_resolver_, options_.engine);
    // Observe() feeds every action to both its group engine and the
    // global one; a validation hook must see each action once, so only
    // the global engine keeps it. (Without a global engine, the group
    // engines are the only trainers and retain the hook.)
    options_.engine.validation_hook = nullptr;
  }
}

RecEngine& DemographicTrainer::EngineFor(GroupId group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = engines_[group];
  if (!slot) {
    slot = std::make_unique<RecEngine>(type_resolver_, options_.engine);
  }
  return *slot;
}

void DemographicTrainer::Observe(const UserAction& action) {
  const GroupId group = grouper_->GroupOf(action.user);
  if (group != kGlobalGroup) {
    EngineFor(group).Observe(action);
  }
  if (global_ != nullptr) {
    global_->Observe(action);
  }
}

StatusOr<std::vector<ScoredVideo>> DemographicTrainer::Recommend(
    const RecRequest& request) {
  const GroupId group = grouper_->GroupOf(request.user);
  RecEngine* engine = group == kGlobalGroup ? nullptr : GetEngine(group);
  if (engine != nullptr) {
    StatusOr<std::vector<ScoredVideo>> result = engine->Recommend(request);
    if (!result.ok()) return result;
    if (!result->empty()) return result;
  }
  if (global_ != nullptr) return global_->Recommend(request);
  return std::vector<ScoredVideo>{};
}

RecEngine* DemographicTrainer::GetEngine(GroupId group) {
  if (group == kGlobalGroup) return global_.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(group);
  return it == engines_.end() ? nullptr : it->second.get();
}

const RecEngine* DemographicTrainer::GetEngine(GroupId group) const {
  if (group == kGlobalGroup) return global_.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(group);
  return it == engines_.end() ? nullptr : it->second.get();
}

namespace {

std::string SnapshotFileName(GroupId group) {
  if (group == kGlobalGroup) return "group_global.ckpt";
  return "group_" + std::to_string(group) + ".ckpt";
}

}  // namespace

Status DemographicTrainer::SaveSnapshot(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Unavailable("cannot create '" + directory +
                               "': " + ec.message());
  }
  std::vector<std::pair<GroupId, RecEngine*>> engines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [group, engine] : engines_) {
      engines.emplace_back(group, engine.get());
    }
  }
  if (global_ != nullptr) engines.emplace_back(kGlobalGroup, global_.get());
  // Data files first, manifest last and atomically: a failure anywhere
  // leaves the previous manifest (and the snapshot it names) intact.
  std::string manifest;
  for (const auto& [group, engine] : engines) {
    const std::string path = directory + "/" + SnapshotFileName(group);
    RTREC_RETURN_IF_ERROR(SaveCheckpoint(path, &engine->factors(),
                                         &engine->sim_table(),
                                         &engine->history()));
    manifest += std::to_string(group) + "\n";
  }
  return WriteFileAtomic(directory + "/manifest.txt", manifest);
}

Status DemographicTrainer::LoadSnapshot(const std::string& directory) {
  std::ifstream manifest(directory + "/manifest.txt");
  if (!manifest.is_open()) {
    return Status::NotFound("no manifest in '" + directory + "'");
  }
  std::string line;
  while (std::getline(manifest, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    StatusOr<std::uint64_t> group_id = ParseUint64(trimmed);
    if (!group_id.ok()) {
      return Status::Corruption("bad manifest line '" + line + "'");
    }
    const GroupId group = static_cast<GroupId>(*group_id);
    RecEngine* engine = nullptr;
    if (group == kGlobalGroup) {
      if (global_ == nullptr) {
        return Status::FailedPrecondition(
            "snapshot has a global engine but train_global is off");
      }
      engine = global_.get();
    } else {
      engine = &EngineFor(group);
    }
    const std::string path = directory + "/" + SnapshotFileName(group);
    RTREC_RETURN_IF_ERROR(LoadCheckpoint(path, &engine->factors(),
                                         &engine->sim_table(),
                                         &engine->history()));
  }
  return Status::OK();
}

std::vector<GroupId> DemographicTrainer::ActiveGroups() const {
  std::vector<GroupId> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(engines_.size());
  for (const auto& [group, engine] : engines_) out.push_back(group);
  return out;
}

}  // namespace rtrec
