#ifndef RTREC_DEMOGRAPHIC_DEMOGRAPHIC_TRAINER_H_
#define RTREC_DEMOGRAPHIC_DEMOGRAPHIC_TRAINER_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "demographic/grouper.h"

namespace rtrec {

/// Demographic training (Section 5.2.2): one complete rMF engine per
/// demographic group, so each group gets its own video vectors y_i and
/// its own similar-video tables. The per-group user-video matrices are
/// denser than the global one, and the per-group models capture the
/// variation of rating patterns between groups — both effects behind the
/// 10–20% improvement of Figure 3.
///
/// A global engine is (optionally) trained on all traffic and serves
/// users whose group has no model yet.
class DemographicTrainer : public Recommender {
 public:
  struct Options {
    RecEngine::Options engine;
    /// Also feed every action to a global engine (needed as a fallback
    /// and as the Figure 3 comparison baseline).
    bool train_global = true;
  };

  /// `grouper` and `type_resolver` are shared, not owned.
  DemographicTrainer(const DemographicGrouper* grouper,
                     VideoTypeResolver type_resolver, Options options);

  /// Routes the action to the user's group engine (creating it on first
  /// traffic) and to the global engine when enabled.
  void Observe(const UserAction& action) override;

  /// Serves from the user's group engine; falls back to the global
  /// engine when the group has no model or returns nothing.
  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  std::string name() const override { return "rMF(groups)"; }

  /// The engine of `group`, or null if that group has seen no traffic.
  /// kGlobalGroup returns the global engine (null when train_global is
  /// off).
  RecEngine* GetEngine(GroupId group);
  const RecEngine* GetEngine(GroupId group) const;

  /// Groups that currently have engines (excluding kGlobalGroup).
  std::vector<GroupId> ActiveGroups() const;

  /// Snapshots every engine (group + global) into `directory` using the
  /// group-checkpoint layout (manifest.txt + group_<id>.ckpt).
  Status SaveSnapshot(const std::string& directory) const;

  /// Restores engines from a SaveSnapshot directory, materializing group
  /// engines as needed.
  Status LoadSnapshot(const std::string& directory);

 private:
  RecEngine& EngineFor(GroupId group);

  const DemographicGrouper* grouper_;
  VideoTypeResolver type_resolver_;
  Options options_;

  mutable std::mutex mu_;  // Guards the engine map (not the engines).
  std::unordered_map<GroupId, std::unique_ptr<RecEngine>> engines_;
  std::unique_ptr<RecEngine> global_;
};

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_DEMOGRAPHIC_TRAINER_H_
