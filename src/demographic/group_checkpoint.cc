#include "demographic/group_checkpoint.h"

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "kvstore/checkpoint.h"

namespace rtrec {

namespace {

std::string GroupFileName(GroupId group) {
  if (group == kGlobalGroup) return "group_global.ckpt";
  return "group_" + std::to_string(group) + ".ckpt";
}

}  // namespace

Status SaveGroupCheckpoint(const std::string& directory,
                           const GroupStoreRegistry& registry) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Unavailable("cannot create '" + directory +
                               "': " + ec.message());
  }
  const std::vector<GroupId> groups = registry.ActiveGroups();
  std::ofstream manifest(directory + "/manifest.txt", std::ios::trunc);
  if (!manifest.is_open()) {
    return Status::Unavailable("cannot write manifest in '" + directory +
                               "'");
  }
  for (GroupId group : groups) {
    const GroupStores* stores = registry.Find(group);
    if (stores == nullptr) continue;  // Raced away; skip.
    const std::string path = directory + "/" + GroupFileName(group);
    RTREC_RETURN_IF_ERROR(SaveCheckpoint(path, stores->factors.get(),
                                         stores->sim_table.get(),
                                         stores->history.get()));
    manifest << group << "\n";
  }
  manifest.flush();
  if (!manifest.good()) return Status::Internal("manifest write failed");
  return Status::OK();
}

Status LoadGroupCheckpoint(const std::string& directory,
                           GroupStoreRegistry& registry) {
  std::ifstream manifest(directory + "/manifest.txt");
  if (!manifest.is_open()) {
    return Status::NotFound("no manifest in '" + directory + "'");
  }
  std::string line;
  while (std::getline(manifest, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    StatusOr<std::uint64_t> group_id = ParseUint64(trimmed);
    if (!group_id.ok()) {
      return Status::Corruption("bad manifest line '" + line + "'");
    }
    const GroupId group = static_cast<GroupId>(*group_id);
    GroupStores& stores = registry.GetOrCreate(group);
    const std::string path = directory + "/" + GroupFileName(group);
    RTREC_RETURN_IF_ERROR(LoadCheckpoint(path, stores.factors.get(),
                                         stores.sim_table.get(),
                                         stores.history.get()));
  }
  return Status::OK();
}

}  // namespace rtrec
