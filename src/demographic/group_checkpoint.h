#ifndef RTREC_DEMOGRAPHIC_GROUP_CHECKPOINT_H_
#define RTREC_DEMOGRAPHIC_GROUP_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "demographic/group_stores.h"

namespace rtrec {

/// Checkpointing for the demographically-partitioned deployment: one
/// snapshot file per group plus a manifest, so a restarted process can
/// rebuild every group model from disk.
///
/// Layout under `directory`:
///   manifest.txt       — one group id per line
///   group_<id>.ckpt    — the group's stores (kvstore/checkpoint format)
/// The global group's file is "group_global.ckpt".

/// Snapshots every active group of `registry` into `directory`
/// (created if missing; existing snapshot files are overwritten).
Status SaveGroupCheckpoint(const std::string& directory,
                           const GroupStoreRegistry& registry);

/// Restores every group listed in the manifest into `registry`
/// (materializing groups as needed). The registry's dimensionality must
/// match the snapshots'.
Status LoadGroupCheckpoint(const std::string& directory,
                           GroupStoreRegistry& registry);

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_GROUP_CHECKPOINT_H_
