#include "demographic/group_stores.h"

namespace rtrec {

GroupStoreRegistry::GroupStoreRegistry()
    : GroupStoreRegistry(Options{}) {}

GroupStoreRegistry::GroupStoreRegistry(Options options) : options_(options) {}

GroupStores& GroupStoreRegistry::GetOrCreate(GroupId group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = groups_[group];
  if (!slot) {
    slot = std::make_unique<GroupStores>();
    FactorStore::Options factor_options;
    factor_options.num_factors = options_.num_factors;
    factor_options.init_scale = options_.init_scale;
    // Distinct per-group init streams: the same video id gets different
    // initial vectors in different groups, like independent models.
    factor_options.seed = MixHash64(options_.seed ^ (group + 0x6772ull));
    slot->factors = std::make_unique<FactorStore>(factor_options);

    HistoryStore::Options history_options;
    history_options.max_entries_per_user = options_.history_per_user;
    slot->history = std::make_unique<HistoryStore>(history_options);

    SimTableStore::Options table_options;
    table_options.top_k = options_.sim_top_k;
    table_options.xi_millis = options_.sim_xi_millis;
    slot->sim_table = std::make_unique<SimTableStore>(table_options);
  }
  return *slot;
}

GroupStores* GroupStoreRegistry::Find(GroupId group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

const GroupStores* GroupStoreRegistry::Find(GroupId group) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

std::vector<GroupId> GroupStoreRegistry::ActiveGroups() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GroupId> out;
  out.reserve(groups_.size());
  for (const auto& [group, stores] : groups_) out.push_back(group);
  return out;
}

GroupServer::GroupServer(GroupStores* stores, MfModelConfig model_config,
                         RecommendConfig rec_config)
    : model_(stores->factors.get(), std::move(model_config)),
      recommender_(&model_, stores->history.get(), stores->sim_table.get(),
                   nullptr, std::move(rec_config)) {}

StatusOr<std::vector<ScoredVideo>> GroupServer::Recommend(
    const RecRequest& request) {
  return recommender_.Recommend(request);
}

}  // namespace rtrec
