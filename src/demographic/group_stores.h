#ifndef RTREC_DEMOGRAPHIC_GROUP_STORES_H_
#define RTREC_DEMOGRAPHIC_GROUP_STORES_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/model_config.h"
#include "core/online_mf.h"
#include "core/recommender.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {

/// The KV-store state of one demographic group's model: per Section
/// 5.2.2 there is "a video vector y_i for each demographic group, and
/// the similarity between video pairs is computed within the demographic
/// group".
struct GroupStores {
  std::unique_ptr<FactorStore> factors;
  std::unique_ptr<HistoryStore> history;
  std::unique_ptr<SimTableStore> sim_table;
};

/// Lazily creates and owns one GroupStores per demographic group
/// (kGlobalGroup included). Thread-safe; the returned pointers stay
/// valid for the registry's lifetime, so bolt tasks may cache them.
class GroupStoreRegistry {
 public:
  struct Options {
    /// Factor dimensionality/init shared by all groups.
    int num_factors = 32;
    double init_scale = 0.05;
    std::uint64_t seed = 1;
    /// Per-user history retention.
    std::size_t history_per_user = 64;
    /// Similar-table shape.
    std::size_t sim_top_k = 50;
    double sim_xi_millis = 3.0 * kMillisPerDay;
  };

  /// Constructs with default options.
  GroupStoreRegistry();
  explicit GroupStoreRegistry(Options options);

  GroupStoreRegistry(const GroupStoreRegistry&) = delete;
  GroupStoreRegistry& operator=(const GroupStoreRegistry&) = delete;

  /// The stores of `group`, created on first use.
  GroupStores& GetOrCreate(GroupId group);

  /// The stores of `group`, or null if that group has never been used.
  GroupStores* Find(GroupId group);
  const GroupStores* Find(GroupId group) const;

  /// Groups with materialized stores, unordered.
  std::vector<GroupId> ActiveGroups() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<GroupId, std::unique_ptr<GroupStores>> groups_;
};

/// Serving view over one group's stores: the Fig. 1 request path bound
/// to the per-group state the demographic topology maintains. Construct
/// one per group (cheap; holds only pointers into the registry's
/// stores).
class GroupServer {
 public:
  /// `stores` is shared, not owned, and must outlive the server.
  /// `model_config.num_factors` must match the registry's.
  GroupServer(GroupStores* stores, MfModelConfig model_config,
              RecommendConfig rec_config = {});

  /// Serves a request from the group's model and tables.
  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest& request);

  OnlineMf& model() { return model_; }
  MfRecommender& recommender() { return recommender_; }

 private:
  OnlineMf model_;
  MfRecommender recommender_;
};

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_GROUP_STORES_H_
