#include "demographic/grouper.h"

#include <mutex>

namespace rtrec {

void DemographicGrouper::RegisterProfile(UserId user,
                                         const UserProfile& profile) {
  Stripe& stripe = StripeFor(user);
  std::unique_lock lock(stripe.mu);
  stripe.map[user] = profile;
}

UserProfile DemographicGrouper::GetProfile(UserId user) const {
  const Stripe& stripe = StripeFor(user);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(user);
  if (it == stripe.map.end()) return UserProfile{};
  return it->second;
}

GroupId DemographicGrouper::GroupOf(UserId user) const {
  return GroupFor(GetProfile(user));
}

GroupId DemographicGrouper::GroupFor(const UserProfile& profile) {
  if (!profile.registered) return kGlobalGroup;
  return static_cast<GroupId>(profile.gender) *
             static_cast<GroupId>(kNumAgeBuckets) +
         static_cast<GroupId>(profile.age);
}

std::string DemographicGrouper::GroupName(GroupId group) {
  if (group == kGlobalGroup) return "global";
  static const char* kGenderNames[] = {"unknown", "female", "male"};
  static const char* kAgeNames[] = {"age?", "<18", "18-24",
                                    "25-34", "35-49", "50+"};
  const std::size_t gender = group / kNumAgeBuckets;
  const std::size_t age = group % kNumAgeBuckets;
  if (gender >= static_cast<std::size_t>(kNumGenders)) return "invalid";
  return std::string(kGenderNames[gender]) + "/" + kAgeNames[age];
}

std::size_t DemographicGrouper::NumProfiles() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock lock(stripe.mu);
    total += stripe.map.size();
  }
  return total;
}

}  // namespace rtrec
