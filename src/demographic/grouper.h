#ifndef RTREC_DEMOGRAPHIC_GROUPER_H_
#define RTREC_DEMOGRAPHIC_GROUPER_H_

#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "demographic/profile.h"

namespace rtrec {

/// Clusters users into demographic groups by (gender × age bucket), the
/// scheme of Section 5.2: "users in Tencent Video are clustered into
/// dozens of groups" by properties such as gender, age and education.
/// Unregistered users (no profile) map to `kGlobalGroup`.
///
/// The grouper also acts as the profile registry: the event stream only
/// carries user ids, and profiles are registered out of band (sign-up).
/// Thread-safe.
class DemographicGrouper {
 public:
  DemographicGrouper() = default;

  DemographicGrouper(const DemographicGrouper&) = delete;
  DemographicGrouper& operator=(const DemographicGrouper&) = delete;

  /// Registers (or updates) a user's profile.
  void RegisterProfile(UserId user, const UserProfile& profile);

  /// The user's profile; unregistered default if never registered.
  UserProfile GetProfile(UserId user) const;

  /// Group of `user`: GroupFor(profile), or kGlobalGroup when unknown.
  GroupId GroupOf(UserId user) const;

  /// Pure mapping profile → group id. Unregistered profiles map to
  /// kGlobalGroup.
  static GroupId GroupFor(const UserProfile& profile);

  /// Total number of distinct group ids the static mapping can produce
  /// (excluding kGlobalGroup).
  static constexpr std::size_t kNumGroups =
      static_cast<std::size_t>(kNumGenders) *
      static_cast<std::size_t>(kNumAgeBuckets);

  /// Human-readable group label, e.g. "male/25-34".
  static std::string GroupName(GroupId group);

  /// Number of registered profiles.
  std::size_t NumProfiles() const;

 private:
  struct Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<UserId, UserProfile> map;
  };

  static constexpr std::size_t kStripes = 16;  // Power of two.

  Stripe& StripeFor(UserId u) { return stripes_[MixHash64(u) % kStripes]; }
  const Stripe& StripeFor(UserId u) const {
    return stripes_[MixHash64(u) % kStripes];
  }

  mutable Stripe stripes_[kStripes];
};

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_GROUPER_H_
