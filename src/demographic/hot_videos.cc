#include "demographic/hot_videos.h"

#include <cassert>
#include <cmath>

namespace rtrec {

HotVideoTracker::HotVideoTracker() : HotVideoTracker(Options{}) {}

HotVideoTracker::HotVideoTracker(Options options) : options_(options) {
  assert(options_.top_k > 0);
  assert(options_.half_life_millis > 0);
}

HotVideoTracker::GroupState& HotVideoTracker::StateFor(GroupId group) {
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto& slot = groups_[group];
  if (!slot) slot = std::make_unique<GroupState>(options_.top_k);
  return *slot;
}

const HotVideoTracker::GroupState* HotVideoTracker::FindState(
    GroupId group) const {
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

double HotVideoTracker::NormalizedIncrement(double weight,
                                            Timestamp now) const {
  const double dt =
      static_cast<double>(now - options_.epoch_millis);
  return weight * std::exp2(dt / options_.half_life_millis);
}

void HotVideoTracker::Record(GroupId group, VideoId video, double weight,
                             Timestamp now) {
  if (weight <= 0.0) return;
  GroupState& state = StateFor(group);
  std::lock_guard<std::mutex> lock(state.mu);
  const double increment = NormalizedIncrement(weight, now);
  const double* existing = state.top.Find(video);
  state.top.Upsert(video, (existing ? *existing : 0.0) + increment);
}

std::vector<ScoredVideo> HotVideoTracker::Hottest(GroupId group,
                                                  std::size_t n,
                                                  Timestamp now) const {
  const GroupState* state = FindState(group);
  if (state == nullptr) return {};
  // Convert normalized scores back to decayed-at-now scores.
  const double denom = std::exp2(
      static_cast<double>(now - options_.epoch_millis) /
      options_.half_life_millis);
  std::vector<ScoredVideo> out;
  std::lock_guard<std::mutex> lock(state->mu);
  const auto& entries = state->top.entries();
  out.reserve(std::min(n, entries.size()));
  for (std::size_t i = 0; i < entries.size() && i < n; ++i) {
    out.push_back(ScoredVideo{entries[i].key, entries[i].score / denom});
  }
  return out;
}

HotRecommenderView::HotRecommenderView(HotVideoTracker* tracker,
                                       GroupId group, std::size_t top_n)
    : tracker_(tracker), group_(group), top_n_(top_n) {
  assert(tracker_ != nullptr);
  assert(top_n_ > 0);
}

StatusOr<std::vector<ScoredVideo>> HotRecommenderView::Recommend(
    const RecRequest& request) {
  const std::size_t n = request.top_n > 0 ? request.top_n : top_n_;
  return tracker_->Hottest(group_, n, request.now);
}

}  // namespace rtrec
