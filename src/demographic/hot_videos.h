#ifndef RTREC_DEMOGRAPHIC_HOT_VIDEOS_H_
#define RTREC_DEMOGRAPHIC_HOT_VIDEOS_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/top_k.h"
#include "common/types.h"
#include "core/recommender.h"

namespace rtrec {

/// Tracks the most popular ("hot") videos per demographic group with an
/// exponentially time-decayed engagement score — the demographic-based
/// (DB) algorithm of Section 5.2.1. kGlobalGroup tracks global
/// popularity, used for brand-new unregistered users.
///
/// Decay uses the standard normalized-score trick: a hit at time t adds
/// w·2^((t - t0)/half_life) to the raw score, so all raw scores share one
/// reference epoch t0 and relative order equals decayed order without
/// rescans. Thread-safe (one mutex per group).
class HotVideoTracker {
 public:
  struct Options {
    /// Length of each hot list.
    std::size_t top_k = 100;
    /// Popularity half-life in milliseconds.
    double half_life_millis = 1.0 * kMillisPerDay;
    /// Reference epoch t0 for the normalized scores.
    Timestamp epoch_millis = 0;
  };

  /// Constructs with default options.
  HotVideoTracker();
  explicit HotVideoTracker(Options options);

  HotVideoTracker(const HotVideoTracker&) = delete;
  HotVideoTracker& operator=(const HotVideoTracker&) = delete;

  /// Records engagement `weight` on `video` in `group` at time `now`.
  /// Callers typically record both in the user's group and in
  /// kGlobalGroup.
  void Record(GroupId group, VideoId video, double weight, Timestamp now);

  /// The group's hottest videos at `now`, best first, scores decayed to
  /// `now` (comparable across groups).
  std::vector<ScoredVideo> Hottest(GroupId group, std::size_t n,
                                   Timestamp now) const;

  const Options& options() const { return options_; }

 private:
  struct GroupState {
    mutable std::mutex mu;
    TopK<VideoId> top;
    GroupState(std::size_t k) : top(k) {}
  };

  GroupState& StateFor(GroupId group);
  const GroupState* FindState(GroupId group) const;

  /// Normalized score increment for weight at `now`.
  double NormalizedIncrement(double weight, Timestamp now) const;

  Options options_;
  mutable std::mutex groups_mu_;  // Guards the group map only.
  std::unordered_map<GroupId, std::unique_ptr<GroupState>> groups_;
};

/// Recommender facade over a HotVideoTracker group — the "Hot method" of
/// Section 6.2 when bound to kGlobalGroup.
class HotRecommenderView : public Recommender {
 public:
  /// `tracker` is shared, not owned.
  HotRecommenderView(HotVideoTracker* tracker, GroupId group,
                     std::size_t top_n);

  StatusOr<std::vector<ScoredVideo>> Recommend(
      const RecRequest& request) override;

  std::string name() const override { return "Hot"; }

 private:
  HotVideoTracker* tracker_;
  GroupId group_;
  std::size_t top_n_;
};

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_HOT_VIDEOS_H_
