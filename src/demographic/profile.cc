#include "demographic/profile.h"

namespace rtrec {

namespace {

const char* GenderName(Gender g) {
  switch (g) {
    case Gender::kUnknown:
      return "unknown";
    case Gender::kFemale:
      return "female";
    case Gender::kMale:
      return "male";
  }
  return "?";
}

const char* AgeName(AgeBucket a) {
  switch (a) {
    case AgeBucket::kUnknown:
      return "age?";
    case AgeBucket::kUnder18:
      return "<18";
    case AgeBucket::k18To24:
      return "18-24";
    case AgeBucket::k25To34:
      return "25-34";
    case AgeBucket::k35To49:
      return "35-49";
    case AgeBucket::k50Plus:
      return "50+";
  }
  return "?";
}

const char* EducationName(Education e) {
  switch (e) {
    case Education::kUnknown:
      return "edu?";
    case Education::kPrimary:
      return "primary";
    case Education::kSecondary:
      return "secondary";
    case Education::kBachelor:
      return "bachelor";
    case Education::kPostgraduate:
      return "postgrad";
  }
  return "?";
}

}  // namespace

std::string ProfileToString(const UserProfile& profile) {
  std::string out = profile.registered ? "reg/" : "unreg/";
  out += GenderName(profile.gender);
  out += "/";
  out += AgeName(profile.age);
  out += "/";
  out += EducationName(profile.education);
  return out;
}

}  // namespace rtrec
