#ifndef RTREC_DEMOGRAPHIC_PROFILE_H_
#define RTREC_DEMOGRAPHIC_PROFILE_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace rtrec {

/// User gender as recorded at registration.
enum class Gender : std::uint8_t { kUnknown = 0, kFemale = 1, kMale = 2 };

/// Coarse age bucket.
enum class AgeBucket : std::uint8_t {
  kUnknown = 0,
  kUnder18 = 1,
  k18To24 = 2,
  k25To34 = 3,
  k35To49 = 4,
  k50Plus = 5,
};

inline constexpr int kNumGenders = 3;
inline constexpr int kNumAgeBuckets = 6;

/// Education level.
enum class Education : std::uint8_t {
  kUnknown = 0,
  kPrimary = 1,
  kSecondary = 2,
  kBachelor = 3,
  kPostgraduate = 4,
};

inline constexpr int kNumEducationLevels = 5;

/// The demographic properties used to cluster users (Section 5.2):
/// "gender, age and education". Unregistered users have no profile.
struct UserProfile {
  bool registered = false;
  Gender gender = Gender::kUnknown;
  AgeBucket age = AgeBucket::kUnknown;
  Education education = Education::kUnknown;

  friend bool operator==(const UserProfile&, const UserProfile&) = default;
};

/// Renders a profile for logs, e.g. "reg/male/25-34/bachelor".
std::string ProfileToString(const UserProfile& profile);

}  // namespace rtrec

#endif  // RTREC_DEMOGRAPHIC_PROFILE_H_
