#include "eval/ab_test.h"

#include <cassert>
#include <cmath>

#include "common/random.h"

namespace rtrec {

AbTestHarness::AbTestHarness(const SyntheticWorld* world, Options options)
    : world_(world), options_(options) {
  assert(world_ != nullptr);
  assert(options_.num_days > 0);
  assert(options_.top_n > 0);
}

std::vector<ArmResult> AbTestHarness::Run(
    const std::vector<Recommender*>& arms) const {
  assert(!arms.empty());
  const std::size_t num_arms = arms.size();

  std::vector<ArmResult> results(num_arms);
  for (std::size_t a = 0; a < num_arms; ++a) {
    results[a].name = arms[a]->name();
  }

  auto arm_of = [num_arms](UserId user) -> std::size_t {
    return AbArmOf(user, num_arms);
  };

  const int total_days = options_.warmup_days + options_.num_days;
  for (int day = 0; day < total_days; ++day) {
    const bool measuring = day >= options_.warmup_days;
    const Timestamp day_end =
        world_->config().start_millis +
        static_cast<Timestamp>(day + 1) * kMillisPerDay;

    // 1. Organic traffic: each arm observes only its own users.
    for (const UserAction& action : world_->GenerateDay(day)) {
      arms[arm_of(action.user)]->Observe(action);
    }

    // 2. Recommendation traffic with the click simulator.
    std::vector<std::uint64_t> day_impressions(num_arms, 0);
    std::vector<std::uint64_t> day_clicks(num_arms, 0);
    for (const SimUser& user : world_->population().users()) {
      const std::size_t arm = arm_of(user.id);
      Rng rng(MixHash64(options_.seed) ^
              MixHash64(static_cast<std::uint64_t>(day) * 31 + user.id));
      for (int r = 0; r < options_.requests_per_user; ++r) {
        RecRequest request;
        request.user = user.id;
        request.top_n = options_.top_n;
        request.now = world_->config().start_millis +
                      static_cast<Timestamp>(day) * kMillisPerDay +
                      rng.NextInt64(0, kMillisPerDay - 1);
        StatusOr<std::vector<ScoredVideo>> recs =
            arms[arm]->Recommend(request);
        if (measuring) {
          ++results[arm].requests;
          if (!recs.ok() || recs->empty()) ++results[arm].empty_pages;
        }
        if (!recs.ok() || recs->empty()) continue;

        double bias = 1.0;
        for (std::size_t k = 0; k < recs->size(); ++k) {
          const VideoId video = (*recs)[k].video;
          if (measuring) ++day_impressions[arm];
          const double p_click = options_.click_scale * bias *
                                 world_->TrueAffinity(user.id, video);
          bias *= options_.position_bias;
          if (!rng.NextBool(p_click)) continue;
          if (measuring) ++day_clicks[arm];
          // The click feeds back into the arm's model in real time.
          const Timestamp t = request.now + 1000 * (1 + static_cast<
              Timestamp>(k));
          arms[arm]->Observe(
              UserAction{user.id, video, ActionType::kClick, 0.0, t});
          arms[arm]->Observe(
              UserAction{user.id, video, ActionType::kPlay, 0.0, t + 100});
        }
      }
    }

    // 3. Nightly batch retrain (AR / SimHash cadence).
    for (Recommender* arm : arms) arm->RetrainBatch(day_end);

    if (measuring) {
      for (std::size_t a = 0; a < num_arms; ++a) {
        results[a].impressions += day_impressions[a];
        results[a].clicks += day_clicks[a];
        results[a].daily_ctr.push_back(
            day_impressions[a] == 0
                ? 0.0
                : static_cast<double>(day_clicks[a]) /
                      static_cast<double>(day_impressions[a]));
      }
    }
  }
  return results;
}

std::vector<std::vector<double>> CtrImprovementMatrix(
    const std::vector<ArmResult>& arms) {
  const std::size_t n = arms.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ctr_i = arms[i].OverallCtr();
      const double ctr_j = arms[j].OverallCtr();
      matrix[i][j] = ctr_j <= 0.0 ? 0.0 : (ctr_i - ctr_j) / ctr_j;
    }
  }
  return matrix;
}

}  // namespace rtrec
