#ifndef RTREC_EVAL_AB_TEST_H_
#define RTREC_EVAL_AB_TEST_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "data/event_generator.h"

namespace rtrec {

/// The A/B arm a user is hashed into. This is THE arm identity for the
/// whole system: the offline harness below and the live QualityMonitor
/// CTR join both call it, so a user lands in the same arm offline and
/// online. Header-only so non-eval code can use it without linking the
/// harness.
inline std::size_t AbArmOf(UserId user, std::size_t num_arms) {
  return static_cast<std::size_t>(MixHash64(user ^ 0xAB7E57ull) % num_arms);
}

/// Daily CTR series of one A/B arm (one line of Figure 7).
struct ArmResult {
  std::string name;
  std::vector<double> daily_ctr;
  std::uint64_t impressions = 0;
  std::uint64_t clicks = 0;
  /// Recommendation requests served to this arm's users (measured days).
  std::uint64_t requests = 0;
  /// Requests answered with an empty page (no recommendations) — the
  /// cold-start failure mode demographic filtering eliminates.
  std::uint64_t empty_pages = 0;

  double OverallCtr() const {
    return impressions == 0
               ? 0.0
               : static_cast<double>(clicks) / static_cast<double>(impressions);
  }

  /// Clicks per request: unlike CTR-per-impression, this charges empty
  /// pages, so coverage counts.
  double ClicksPerRequest() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(clicks) / static_cast<double>(requests);
  }
};

/// Live A/B testing simulator (Section 6.2). Substitutes the production
/// traffic split with a planted-affinity click model:
///
///  - users are hashed into arms (each arm serves a disjoint user slice);
///  - every simulated day, each arm's users produce organic actions
///    (fed to that arm's model only) and issue recommendation requests;
///  - a recommended video at position k is clicked with probability
///    position_bias^k · TrueAffinity(u, v) · click_scale;
///  - clicks feed back into the arm's model as Click/Play actions, so
///    real-time models benefit within the day while batch baselines wait
///    for their nightly RetrainBatch.
///
/// CTR per day per arm is the reported metric, exactly Figure 7's axes.
class AbTestHarness {
 public:
  struct Options {
    int num_days = 10;
    /// Warm-up days before day 0 of the measurement window (all arms see
    /// their users' organic traffic; no CTR recorded).
    int warmup_days = 2;
    /// Recommendation requests per user per day.
    int requests_per_user = 2;
    std::size_t top_n = 10;
    /// Multiplicative position bias per rank position.
    double position_bias = 0.85;
    /// Global click-probability scale.
    double click_scale = 0.8;
    std::uint64_t seed = 99;
  };

  /// `world` is shared, not owned.
  AbTestHarness(const SyntheticWorld* world, Options options);

  /// Runs the experiment; `arms[i]` serves the users with
  /// hash(user) % arms.size() == i. Arm models are mutated (trained).
  std::vector<ArmResult> Run(
      const std::vector<Recommender*>& arms) const;

  const Options& options() const { return options_; }

 private:
  const SyntheticWorld* world_;
  Options options_;
};

/// Pairwise relative CTR improvements, Table 5:
/// entry (i, j) = (ctr_i − ctr_j) / ctr_j, from overall CTRs.
std::vector<std::vector<double>> CtrImprovementMatrix(
    const std::vector<ArmResult>& arms);

}  // namespace rtrec

#endif  // RTREC_EVAL_AB_TEST_H_
