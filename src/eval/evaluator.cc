#include "eval/evaluator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace rtrec {

OfflineEvaluator::OfflineEvaluator() : OfflineEvaluator(Options{}) {}

OfflineEvaluator::OfflineEvaluator(Options options)
    : options_(std::move(options)) {}

void OfflineEvaluator::Train(Recommender& model, const Dataset& train) const {
  Timestamp current_day = -1;
  for (const UserAction& action : train.actions()) {
    const Timestamp day = action.time / kMillisPerDay;
    if (options_.retrain_daily && current_day >= 0 && day != current_day) {
      model.RetrainBatch(current_day * kMillisPerDay + kMillisPerDay);
    }
    current_day = day;
    if (options_.train_threshold > 0.0 &&
        ActionConfidence(action, options_.feedback) <
            options_.train_threshold) {
      continue;
    }
    model.Observe(action);
  }
  if (options_.retrain_daily && current_day >= 0) {
    model.RetrainBatch(current_day * kMillisPerDay + kMillisPerDay);
  }
}

std::vector<UserEvalData> OfflineEvaluator::CollectEvalData(
    Recommender& model, const Dataset& test) const {
  // Liked videos per user with their best confidence, from test actions.
  struct Liked {
    VideoId video;
    double confidence;
  };
  std::unordered_map<UserId, std::unordered_map<VideoId, double>> liked_map;
  Timestamp test_start = 0;
  if (!test.actions().empty()) test_start = test.actions().front().time;
  for (const UserAction& action : test.actions()) {
    const double confidence = ActionConfidence(action, options_.feedback);
    if (confidence < options_.like_threshold) continue;
    double& best = liked_map[action.user][action.video];
    best = std::max(best, confidence);
  }

  std::vector<UserEvalData> out;
  out.reserve(liked_map.size());
  // Deterministic user order.
  std::map<UserId, std::vector<Liked>> ordered;
  for (const auto& [user, videos] : liked_map) {
    auto& list = ordered[user];
    list.reserve(videos.size());
    for (const auto& [video, confidence] : videos) {
      list.push_back(Liked{video, confidence});
    }
  }

  for (auto& [user, liked] : ordered) {
    // Ordered interested list: by descending confidence, id tie-break.
    std::sort(liked.begin(), liked.end(),
              [](const Liked& a, const Liked& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.video < b.video;
              });

    RecRequest request;
    request.user = user;
    request.top_n = options_.rank_list_n;
    request.now = test_start;
    StatusOr<std::vector<ScoredVideo>> recs = model.Recommend(request);

    UserEvalData data;
    data.user = user;
    if (recs.ok()) {
      data.recommended.reserve(recs->size());
      for (const ScoredVideo& v : *recs) data.recommended.push_back(v.video);
    }
    data.liked.reserve(liked.size());
    for (const Liked& l : liked) data.liked.push_back(l.video);
    out.push_back(std::move(data));
  }
  return out;
}

OfflineResult OfflineEvaluator::Evaluate(Recommender& model,
                                         const Dataset& train,
                                         const Dataset& test) const {
  Train(model, train);
  const std::vector<UserEvalData> data = CollectEvalData(model, test);

  OfflineResult result;
  result.model_name = model.name();
  result.recall_at = RecallCurve(data, options_.max_n);
  result.avg_rank = AverageRank(data);
  for (const UserEvalData& u : data) {
    if (!u.liked.empty()) ++result.users_evaluated;
  }
  return result;
}

}  // namespace rtrec
