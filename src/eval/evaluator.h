#ifndef RTREC_EVAL_EVALUATOR_H_
#define RTREC_EVAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace rtrec {

/// Result of one offline evaluation run (the protocol of Section 6.1:
/// six days train, one day test).
struct OfflineResult {
  std::string model_name;
  /// recall@N for N = 1..max_n (index N-1).
  std::vector<double> recall_at;
  /// Average percentile rank (Eq. 14); lower is better.
  double avg_rank = 0.5;
  /// Users that entered the evaluation (had liked test videos).
  std::size_t users_evaluated = 0;

  double recall(std::size_t n) const {
    return n >= 1 && n <= recall_at.size() ? recall_at[n - 1] : 0.0;
  }
};

/// Offline train-then-test evaluation harness shared by the Figure 3/4/5
/// benches and the integration tests.
class OfflineEvaluator {
 public:
  struct Options {
    /// Maximum N of the recall curve (Fig. 4 sweeps 1..10).
    std::size_t max_n = 10;
    /// Length of the full serving list used for the rank metric (the
    /// "ordered list of all videos recommended for user u").
    std::size_t rank_list_n = 50;
    /// Minimum confidence for a test action to count as "liked".
    /// 2.0 = a PlayTime action covering roughly a third of the video —
    /// solid engagement, above the accidental-click noise floor.
    double like_threshold = 2.0;
    /// Actions below this are not even replayed at train time (keeps the
    /// impressions out, as Algorithm 1 does anyway).
    double train_threshold = 0.0;
    /// Feedback mapping used to weight test actions.
    FeedbackConfig feedback;
    /// Calls RetrainBatch on the model at each day boundary while
    /// training (needed by batch baselines).
    bool retrain_daily = true;
  };

  /// Constructs with default options.
  OfflineEvaluator();
  explicit OfflineEvaluator(Options options);

  /// Streams `train` through model.Observe (time order), then evaluates
  /// on `test`: for every user with liked test videos, requests a
  /// `rank_list_n`-long recommendation (seeds from the model's own state,
  /// i.e. empty seed list) and scores it against the ordered liked list.
  OfflineResult Evaluate(Recommender& model, const Dataset& train,
                         const Dataset& test) const;

  /// Replays training only (exposed so callers can interleave phases).
  void Train(Recommender& model, const Dataset& train) const;

  /// Builds the per-user eval material from `test` and the model's
  /// responses.
  std::vector<UserEvalData> CollectEvalData(Recommender& model,
                                            const Dataset& test) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace rtrec

#endif  // RTREC_EVAL_EVALUATOR_H_
