#include "eval/experiment_runner.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/string_util.h"

namespace rtrec {

WorldConfig SmallWorldConfig(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  config.catalog.num_videos = 300;
  config.catalog.num_types = 10;
  config.catalog.num_genres = 6;
  config.population.num_users = 300;
  config.population.mean_activity = 2.0;
  return config;
}

WorldConfig BenchWorldConfig(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  config.catalog.num_videos = 1500;
  config.catalog.num_types = 20;
  config.catalog.num_genres = 8;
  config.population.num_users = 1200;
  config.population.mean_activity = 3.0;
  return config;
}

WorldConfig SparseWorldConfig(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  config.catalog.num_videos = 9000;
  config.catalog.num_types = 30;
  config.catalog.num_genres = 8;
  config.catalog.zipf_exponent = 0.9;
  config.population.num_users = 3000;
  config.population.mean_activity = 1.0;
  config.population.activity_sigma = 1.0;
  return config;
}

WorldConfig MillionScaleWorldConfig(std::uint64_t seed) {
  WorldConfig config;
  config.seed = seed;
  config.catalog.num_videos = 100000;
  config.catalog.num_types = 40;
  config.catalog.num_genres = 8;
  config.catalog.zipf_exponent = 0.9;
  // Catalog churn: 20% of the catalog arrives cold, staggered over the
  // first week, surfaced by the promotion slots (new_release_browse_rate
  // defaults on).
  config.catalog.staggered_release_fraction = 0.2;
  config.catalog.release_window_days = 7;
  config.population.num_users = 1000000;
  // Per-user activity is tiny: a million-user site's daily actives are a
  // sliver of registrations. ~0.05 expected sessions/user/day is ~50k
  // sessions (~300k+ actions) per generated day — heavy traffic on this
  // hardware without a week-long bench.
  config.population.mean_activity = 0.05;
  config.population.activity_sigma = 1.2;
  // Production-shaped stress, all on: evening-peaked diurnal load, a
  // flash crowd on day 1, and a population-wide trend shift from day 2
  // (taste mass and herd clicks move to one genre) that the quality
  // watchdog's label-shift channel must notice.
  config.scenario.diurnal_amplitude = 0.6;
  config.scenario.diurnal_peak_hour = 21.0;
  config.scenario.flash_crowds.push_back(FlashCrowdEvent{
      /*day=*/1, /*video=*/1, /*browse_share=*/0.25});
  config.scenario.drift_start_day = 2;
  config.scenario.drift_strength = 0.8;
  return config;
}

RecEngine::Options DefaultEngineOptions(UpdatePolicy policy) {
  // Per-policy learning rates from the grid search of
  // bench_table2_gridsearch, chosen so all three policies run at the
  // same *mean* effective step size (~0.01): BinaryModel applies η0 to
  // unit ratings; ConfModel's targets average ~2.2, so its η0 is scaled
  // down; CombineModel splits the same mean between the base rate and
  // the confidence term of Eq. 8. Without mean-matching the comparison
  // would measure step size, not the update strategies.
  RecEngine::Options options;
  options.model.policy = policy;
  switch (policy) {
    case UpdatePolicy::kBinary:
      options.model.eta0 = 0.01;
      options.model.alpha = 0.0;
      break;
    case UpdatePolicy::kConfidenceAsRating:
      options.model.eta0 = 0.0045;
      options.model.alpha = 0.0;
      break;
    case UpdatePolicy::kCombine:
      options.model.eta0 = 0.0025;
      options.model.alpha = 0.0034;
      break;
  }
  return options;
}

std::vector<GroupId> LargestGroups(const Dataset& data,
                                   const DemographicGrouper& grouper,
                                   std::size_t k,
                                   const FeedbackConfig& feedback) {
  std::map<GroupId, std::size_t> counts;
  for (const UserAction& action : data.actions()) {
    if (ActionConfidence(action, feedback) <= 0.0) continue;
    const GroupId group = grouper.GroupOf(action.user);
    if (group == kGlobalGroup) continue;
    ++counts[group];
  }
  std::vector<std::pair<GroupId, std::size_t>> sorted(counts.begin(),
                                                      counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<GroupId> out;
  for (std::size_t i = 0; i < sorted.size() && i < k; ++i) {
    out.push_back(sorted[i].first);
  }
  return out;
}

std::vector<OfflineResult> ComparePolicies(
    const VideoTypeResolver& type_resolver, const Dataset& train,
    const Dataset& test, const OfflineEvaluator::Options& eval_options) {
  const OfflineEvaluator evaluator(eval_options);
  std::vector<OfflineResult> results;
  for (UpdatePolicy policy :
       {UpdatePolicy::kBinary, UpdatePolicy::kConfidenceAsRating,
        UpdatePolicy::kCombine}) {
    RecEngine engine(type_resolver, DefaultEngineOptions(policy));
    OfflineResult result = evaluator.Evaluate(engine, train, test);
    result.model_name = UpdatePolicyToString(policy);
    results.push_back(std::move(result));
  }
  return results;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size(), ' ') << " ";
    }
    os << "|\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Cell(double value, int precision) {
  return StringPrintf("%.*f", precision, value);
}

}  // namespace rtrec
