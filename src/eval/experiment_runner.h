#ifndef RTREC_EVAL_EXPERIMENT_RUNNER_H_
#define RTREC_EVAL_EXPERIMENT_RUNNER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "data/event_generator.h"
#include "demographic/grouper.h"
#include "eval/evaluator.h"

namespace rtrec {

/// Standard synthetic-world presets so benches, tests and examples agree
/// on the workload. `SmallWorldConfig` runs in well under a second;
/// `BenchWorldConfig` is the figure-reproduction scale.
WorldConfig SmallWorldConfig(std::uint64_t seed = 2016);
WorldConfig BenchWorldConfig(std::uint64_t seed = 2016);

/// A large, sparsely-interacted world for the dataset-statistics tables
/// (3 and 4): many videos, light per-user activity, so the user-video
/// matrix lands in the paper's sub-percent sparsity regime and the
/// >=N-action cleaning actually filters.
WorldConfig SparseWorldConfig(std::uint64_t seed = 2016);

/// The million-scale stress world (ROADMAP item 4): 1M users, 100k
/// videos, production-shaped load — evening-peaked diurnal sessions, a
/// day-1 flash crowd, 20% staggered cold-start catalog churn, and a
/// day-2 demographic drift sized to trip the quality watchdog. Per-user
/// activity is low (daily actives ≪ registrations), so one generated
/// day is a few hundred thousand actions. Use GenerateDayChunked to
/// stream it.
WorldConfig MillionScaleWorldConfig(std::uint64_t seed = 2016);

/// Engine options mirroring Table 2, with the given update policy.
RecEngine::Options DefaultEngineOptions(UpdatePolicy policy);

/// The `k` demographic groups with the most engaged actions in `data`
/// (how Table 4 picks "the three largest demographic groups").
std::vector<GroupId> LargestGroups(const Dataset& data,
                                   const DemographicGrouper& grouper,
                                   std::size_t k,
                                   const FeedbackConfig& feedback);

/// Trains a fresh engine per update policy on `train` and evaluates on
/// `test`; result order is {Binary, Conf, Combine}. The engines share the
/// given type resolver (the catalog's).
std::vector<OfflineResult> ComparePolicies(
    const VideoTypeResolver& type_resolver, const Dataset& train,
    const Dataset& test, const OfflineEvaluator::Options& eval_options);

/// Fixed-width text table for bench output, mirroring the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns and a separator under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "%.4f"-formatted helper for table cells.
std::string Cell(double value, int precision = 4);

}  // namespace rtrec

#endif  // RTREC_EVAL_EXPERIMENT_RUNNER_H_
