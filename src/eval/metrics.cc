#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace rtrec {

double PercentileRank(std::size_t pos, std::size_t size) {
  if (size <= 1) return 0.0;
  return static_cast<double>(pos) / static_cast<double>(size - 1);
}

double RecallAtN(const std::vector<UserEvalData>& users, std::size_t n) {
  if (n == 0) return 0.0;
  double total = 0.0;
  std::size_t evaluated = 0;
  for (const UserEvalData& u : users) {
    if (u.liked.empty()) continue;
    ++evaluated;
    const std::size_t cutoff = std::min(n, u.recommended.size());
    std::size_t hits = 0;
    for (VideoId liked : u.liked) {
      for (std::size_t k = 0; k < cutoff; ++k) {
        if (u.recommended[k] == liked) {
          ++hits;
          break;
        }
      }
    }
    total += static_cast<double>(hits) / static_cast<double>(n);
  }
  return evaluated == 0 ? 0.0 : total / static_cast<double>(evaluated);
}

std::vector<double> RecallCurve(const std::vector<UserEvalData>& users,
                                std::size_t max_n) {
  std::vector<double> curve;
  curve.reserve(max_n);
  for (std::size_t n = 1; n <= max_n; ++n) {
    curve.push_back(RecallAtN(users, n));
  }
  return curve;
}

double HitRateAtN(const std::vector<UserEvalData>& users, std::size_t n) {
  if (n == 0) return 0.0;
  double total = 0.0;
  std::size_t evaluated = 0;
  for (const UserEvalData& u : users) {
    if (u.liked.empty()) continue;
    ++evaluated;
    const std::size_t cutoff = std::min(n, u.recommended.size());
    std::size_t hits = 0;
    for (VideoId liked : u.liked) {
      for (std::size_t k = 0; k < cutoff; ++k) {
        if (u.recommended[k] == liked) {
          ++hits;
          break;
        }
      }
    }
    const std::size_t achievable = std::min(n, u.liked.size());
    total += static_cast<double>(hits) / static_cast<double>(achievable);
  }
  return evaluated == 0 ? 0.0 : total / static_cast<double>(evaluated);
}

double NdcgAtN(const std::vector<UserEvalData>& users, std::size_t n) {
  if (n == 0) return 0.0;
  double total = 0.0;
  std::size_t evaluated = 0;
  for (const UserEvalData& u : users) {
    if (u.liked.empty()) continue;
    ++evaluated;
    const std::unordered_map<VideoId, std::size_t> liked_set = [&u] {
      std::unordered_map<VideoId, std::size_t> out;
      for (std::size_t i = 0; i < u.liked.size(); ++i) {
        out.emplace(u.liked[i], i);
      }
      return out;
    }();
    double dcg = 0.0;
    const std::size_t cutoff = std::min(n, u.recommended.size());
    for (std::size_t k = 0; k < cutoff; ++k) {
      if (liked_set.contains(u.recommended[k])) {
        dcg += 1.0 / std::log2(static_cast<double>(k) + 2.0);
      }
    }
    double ideal = 0.0;
    const std::size_t ideal_hits = std::min(n, u.liked.size());
    for (std::size_t k = 0; k < ideal_hits; ++k) {
      ideal += 1.0 / std::log2(static_cast<double>(k) + 2.0);
    }
    total += ideal <= 0.0 ? 0.0 : dcg / ideal;
  }
  return evaluated == 0 ? 0.0 : total / static_cast<double>(evaluated);
}

double AverageRank(const std::vector<UserEvalData>& users) {
  double numerator = 0.0;
  double denominator = 0.0;
  for (const UserEvalData& u : users) {
    if (u.liked.empty() || u.recommended.empty()) continue;
    // Position of each recommended video (for 1 - rank_ui weights).
    std::unordered_map<VideoId, std::size_t> rec_pos;
    rec_pos.reserve(u.recommended.size());
    for (std::size_t k = 0; k < u.recommended.size(); ++k) {
      rec_pos.emplace(u.recommended[k], k);
    }
    for (std::size_t t = 0; t < u.liked.size(); ++t) {
      auto it = rec_pos.find(u.liked[t]);
      // Videos not recommended have rank_ui = 1 -> weight 0.
      if (it == rec_pos.end()) continue;
      const double rank_ui =
          PercentileRank(it->second, u.recommended.size());
      const double rank_t_ui = PercentileRank(t, u.liked.size());
      numerator += rank_t_ui * (1.0 - rank_ui);
      denominator += 1.0 - rank_ui;
    }
  }
  return denominator <= 0.0 ? 0.5 : numerator / denominator;
}

}  // namespace rtrec
