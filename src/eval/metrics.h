#ifndef RTREC_EVAL_METRICS_H_
#define RTREC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace rtrec {

/// Per-user evaluation material: the model's ranked recommendation list
/// and the user's ranked "interested" list from the test day (ordered by
/// descending action confidence — the paper's ordered interested video
/// list).
struct UserEvalData {
  UserId user = 0;
  /// Recommended videos, best first (full serving list, not truncated to
  /// the recall cutoff).
  std::vector<VideoId> recommended;
  /// Videos the user engaged with in the test data, most-confident first.
  std::vector<VideoId> liked;
};

/// recall@N exactly as Eq. 13:
///
///   recall = (1/|U_test|) · Σ_u Σ_{i_u} 1{i_u ∈ top-N_u} / N
///
/// i.e. per-user hits are normalized by N (not by |liked_u| — the paper's
/// formula divides by the list length, making this a precision-flavoured
/// "hit rate"; we reproduce the formula as printed). Users with empty
/// liked lists are excluded from U_test.
double RecallAtN(const std::vector<UserEvalData>& users, std::size_t n);

/// recall@N for every N in [1, max_n]; index k holds recall@(k+1).
std::vector<double> RecallCurve(const std::vector<UserEvalData>& users,
                                std::size_t max_n);

/// Average percentile rank exactly as Eq. 14:
///
///   rank = Σ_{u,i} rank^t_ui · (1 − rank_ui) / Σ_{u,i} (1 − rank_ui)
///
/// where rank_ui is video i's percentile position (0 = top, 1 = bottom)
/// in u's recommended list — 1 when not recommended, so non-recommended
/// videos contribute nothing — and rank^t_ui is i's percentile position
/// in u's test interested list. Lower is better. Returns 0.5 when no
/// recommended video appears in any test list (the neutral value).
double AverageRank(const std::vector<UserEvalData>& users);

/// Percentile position of index `pos` in a list of `size` items:
/// 0 for the first, 1 for the last; 0 for singleton lists.
double PercentileRank(std::size_t pos, std::size_t size);

/// Conventional recall ("hit rate"): per-user hits within the top N
/// divided by min(|liked|, N), averaged over users with likes. Unlike
/// Eq. 13 (which divides by N — see RecallAtN), this is bounded by what
/// a perfect model could achieve. Provided for comparison with other
/// systems; the paper benches use Eq. 13.
double HitRateAtN(const std::vector<UserEvalData>& users, std::size_t n);

/// Binary-relevance nDCG@N: DCG over the top N (gain 1 for liked videos,
/// log2 position discount) normalized by the ideal DCG, averaged over
/// users with likes. A standard extension metric, not in the paper.
double NdcgAtN(const std::vector<UserEvalData>& users, std::size_t n);

}  // namespace rtrec

#endif  // RTREC_EVAL_METRICS_H_
