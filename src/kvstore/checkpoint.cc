#include "kvstore/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injection.h"

namespace rtrec {

namespace {

// v2 stores factor vectors as float32; v3 stores the quantized payload
// raw (precision tag + per-entry scale), so a quantized store
// round-trips bit-exactly. The loader accepts both.
constexpr char kMagicV2[8] = {'R', 'T', 'R', 'E', 'C', 'C', 'P', '2'};
constexpr char kMagicV3[8] = {'R', 'T', 'R', 'E', 'C', 'C', 'P', '3'};

// Little-endian raw encoding; the library targets little-endian hosts
// (all supported platforms), so memcpy-based IO is portable enough and
// is validated by the round-trip tests.

/// Accumulates one section's bytes in memory.
class SectionWriter {
 public:
  template <typename T>
  void Write(const T& value) {
    buf_.append(reinterpret_cast<const char*>(&value), sizeof(T));
  }
  void WriteBytes(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Cursor over one CRC-verified section's bytes.
class SectionReader {
 public:
  explicit SectionReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool ReadBytes(void* dst, std::size_t len) {
    if (data_.size() - pos_ < len) return false;
    std::memcpy(dst, data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

bool ReadEntry(SectionReader& in, std::uint64_t* id, FactorEntry* entry,
               std::uint32_t expected_factors) {
  if (!in.Read(id)) return false;
  if (!in.Read(&entry->bias)) return false;
  std::uint32_t n = 0;
  if (!in.Read(&n)) return false;
  if (n != expected_factors) return false;
  entry->vec.resize(n);
  return in.ReadBytes(entry->vec.data(), n * sizeof(float));
}

/// v3 per-entry frame: id, bias, int8 scale, payload length, raw
/// quantized payload.
void WritePackedEntry(SectionWriter& out, std::uint64_t id,
                      const FactorStore::PackedView& view) {
  out.Write(id);
  out.Write(view.bias);
  out.Write(view.scale);
  out.Write(static_cast<std::uint32_t>(view.size));
  out.WriteBytes(view.data, view.size);
}

/// Appends one `u64 len | bytes | u32 crc` framed section to `file`.
void AppendSection(std::string& file, const SectionWriter& section) {
  const std::string& bytes = section.bytes();
  const std::uint64_t len = bytes.size();
  const std::uint32_t crc = Crc32(bytes);
  file.append(reinterpret_cast<const char*>(&len), sizeof(len));
  file.append(bytes);
  file.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

/// Extracts the next framed section from `file` at `*pos`, verifying its
/// CRC. On success advances `*pos` past the frame.
Status NextSection(std::string_view file, std::size_t* pos,
                   std::string_view* section, const char* what) {
  std::uint64_t len = 0;
  if (file.size() - *pos < sizeof(len)) {
    return Status::Corruption(std::string("truncated ") + what +
                              " section header");
  }
  std::memcpy(&len, file.data() + *pos, sizeof(len));
  *pos += sizeof(len);
  if (file.size() - *pos < len + sizeof(std::uint32_t)) {
    return Status::Corruption(std::string("truncated ") + what + " section");
  }
  std::string_view bytes = file.substr(*pos, len);
  *pos += len;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + *pos, sizeof(stored_crc));
  *pos += sizeof(stored_crc);
  if (Crc32(bytes) != stored_crc) {
    return Status::Corruption(std::string("CRC mismatch in ") + what +
                              " section");
  }
  *section = bytes;
  return Status::OK();
}

// --- Staging: everything parsed from the file before anything is applied.

/// One v3 entry staged verbatim: the quantized payload as stored.
struct RawFactorEntry {
  std::uint64_t id = 0;
  float bias = 0.0f;
  float scale = 0.0f;
  std::vector<std::byte> data;
};

struct FactorStaging {
  std::uint32_t num_factors = 0;
  /// Precision the file's payloads are encoded in (v3; v2 is float32).
  /// v2 files stage float entries in users/videos; v3 files stage raw
  /// payloads in raw_users/raw_videos.
  FactorPrecision precision = FactorPrecision::kFloat32;
  double rating_sum = 0.0;
  std::uint64_t rating_count = 0;
  std::vector<std::pair<std::uint64_t, FactorEntry>> users;
  std::vector<std::pair<std::uint64_t, FactorEntry>> videos;
  std::vector<RawFactorEntry> raw_users;
  std::vector<RawFactorEntry> raw_videos;
};

struct SimStaging {
  std::vector<std::pair<std::uint64_t, std::vector<SimilarVideo>>> lists;
};

struct HistoryStaging {
  std::vector<std::pair<std::uint64_t, std::vector<HistoryEntry>>> users;
};

Status ParseFactorSection(std::string_view bytes, FactorStaging* out) {
  SectionReader in(bytes);
  std::uint64_t num_users = 0, num_videos = 0;
  if (!in.Read(&out->num_factors) || !in.Read(&out->rating_sum) ||
      !in.Read(&out->rating_count) || !in.Read(&num_users) ||
      !in.Read(&num_videos)) {
    return Status::Corruption("truncated factor header");
  }
  out->users.reserve(num_users);
  for (std::uint64_t i = 0; i < num_users; ++i) {
    std::uint64_t id = 0;
    FactorEntry entry;
    if (!ReadEntry(in, &id, &entry, out->num_factors)) {
      return Status::Corruption("truncated user entry");
    }
    out->users.emplace_back(id, std::move(entry));
  }
  out->videos.reserve(num_videos);
  for (std::uint64_t i = 0; i < num_videos; ++i) {
    std::uint64_t id = 0;
    FactorEntry entry;
    if (!ReadEntry(in, &id, &entry, out->num_factors)) {
      return Status::Corruption("truncated video entry");
    }
    out->videos.emplace_back(id, std::move(entry));
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes after factors");
  return Status::OK();
}

bool ReadPackedEntry(SectionReader& in, RawFactorEntry* entry,
                     std::size_t expected_bytes) {
  if (!in.Read(&entry->id)) return false;
  if (!in.Read(&entry->bias)) return false;
  if (!in.Read(&entry->scale)) return false;
  std::uint32_t n = 0;
  if (!in.Read(&n)) return false;
  if (n != expected_bytes) return false;
  entry->data.resize(n);
  return in.ReadBytes(entry->data.data(), n);
}

Status ParseFactorSectionV3(std::string_view bytes, FactorStaging* out) {
  SectionReader in(bytes);
  std::uint8_t precision_tag = 0;
  std::uint64_t num_users = 0, num_videos = 0;
  if (!in.Read(&out->num_factors) || !in.Read(&precision_tag) ||
      !in.Read(&out->rating_sum) || !in.Read(&out->rating_count) ||
      !in.Read(&num_users) || !in.Read(&num_videos)) {
    return Status::Corruption("truncated factor header");
  }
  if (precision_tag > static_cast<std::uint8_t>(FactorPrecision::kInt8)) {
    return Status::Corruption("unknown factor precision tag " +
                              std::to_string(precision_tag));
  }
  out->precision = static_cast<FactorPrecision>(precision_tag);
  const std::size_t expected_bytes =
      out->num_factors * FactorWidthBytes(out->precision);
  out->raw_users.reserve(num_users);
  for (std::uint64_t i = 0; i < num_users; ++i) {
    RawFactorEntry entry;
    if (!ReadPackedEntry(in, &entry, expected_bytes)) {
      return Status::Corruption("truncated user entry");
    }
    out->raw_users.push_back(std::move(entry));
  }
  out->raw_videos.reserve(num_videos);
  for (std::uint64_t i = 0; i < num_videos; ++i) {
    RawFactorEntry entry;
    if (!ReadPackedEntry(in, &entry, expected_bytes)) {
      return Status::Corruption("truncated video entry");
    }
    out->raw_videos.push_back(std::move(entry));
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes after factors");
  return Status::OK();
}

/// Installs one staged v3 entry. Same precision: raw install, bit-exact.
/// Cross-precision (e.g. an fp16 checkpoint into an int8 store):
/// dequantize with the file's codec, requantize through the Put path.
void ApplyRawEntry(FactorStore* factors, bool is_user, RawFactorEntry& e,
                   FactorPrecision file_precision) {
  if (file_precision == factors->precision()) {
    const bool ok =
        is_user ? factors->PutUserPacked(e.id, e.bias, e.scale,
                                         e.data.data(), e.data.size())
                : factors->PutVideoPacked(e.id, e.bias, e.scale,
                                          e.data.data(), e.data.size());
    if (ok) return;
  }
  FactorEntry entry;
  entry.bias = e.bias;
  entry.vec.resize(static_cast<std::size_t>(factors->num_factors()));
  DequantizeVector(file_precision, e.data.data(), entry.vec.size(), e.scale,
                   entry.vec.data());
  if (is_user) {
    factors->PutUser(e.id, std::move(entry));
  } else {
    factors->PutVideo(e.id, std::move(entry));
  }
}

Status ParseSimSection(std::string_view bytes, SimStaging* out) {
  SectionReader in(bytes);
  std::uint64_t num_lists = 0;
  if (!in.Read(&num_lists)) {
    return Status::Corruption("truncated sim-table header");
  }
  out->lists.reserve(num_lists);
  for (std::uint64_t i = 0; i < num_lists; ++i) {
    std::uint64_t id = 0;
    std::uint32_t count = 0;
    if (!in.Read(&id) || !in.Read(&count)) {
      return Status::Corruption("truncated sim-table list");
    }
    std::vector<SimilarVideo> entries;
    entries.reserve(count);
    for (std::uint32_t e = 0; e < count; ++e) {
      std::uint64_t video = 0;
      double sim = 0.0;
      std::int64_t time = 0;
      if (!in.Read(&video) || !in.Read(&sim) || !in.Read(&time)) {
        return Status::Corruption("truncated sim-table entry");
      }
      entries.push_back(SimilarVideo{video, sim, time});
    }
    out->lists.emplace_back(id, std::move(entries));
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes after sim table");
  }
  return Status::OK();
}

Status ParseHistorySection(std::string_view bytes, HistoryStaging* out) {
  SectionReader in(bytes);
  std::uint64_t num_histories = 0;
  if (!in.Read(&num_histories)) {
    return Status::Corruption("truncated history header");
  }
  out->users.reserve(num_histories);
  for (std::uint64_t i = 0; i < num_histories; ++i) {
    std::uint64_t user = 0;
    std::uint32_t count = 0;
    if (!in.Read(&user) || !in.Read(&count)) {
      return Status::Corruption("truncated history record");
    }
    std::vector<HistoryEntry> entries;
    entries.reserve(count);
    for (std::uint32_t e = 0; e < count; ++e) {
      std::uint64_t video = 0;
      double weight = 0.0;
      std::int64_t time = 0;
      if (!in.Read(&video) || !in.Read(&weight) || !in.Read(&time)) {
        return Status::Corruption("truncated history entry");
      }
      entries.push_back(HistoryEntry{video, weight, time});
    }
    out->users.emplace_back(user, std::move(entries));
  }
  if (!in.AtEnd()) return Status::Corruption("trailing bytes after history");
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Unavailable("cannot open '" + tmp + "' for writing: " +
                               std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("write failed on '" + tmp + "': " +
                              std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync failed on '" + tmp + "': " +
                            std::strerror(err));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("rename to '" + path + "' failed: " +
                            std::strerror(err));
  }
  // Durability of the rename itself (best-effort: some filesystems refuse
  // to open directories for fsync).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status SaveCheckpoint(const std::string& path, const FactorStore* factors,
                      const SimTableStore* sim_table,
                      const HistoryStore* history) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.checkpoint.write"));

  // --- Factor section (v3: precision tag + raw quantized payloads, so
  // a quantized store round-trips without a dequantize/requantize hop).
  SectionWriter factor_section;
  const std::uint32_t num_factors =
      factors == nullptr ? 0
                         : static_cast<std::uint32_t>(factors->num_factors());
  factor_section.Write(num_factors);
  const std::uint8_t precision_tag =
      factors == nullptr
          ? 0
          : static_cast<std::uint8_t>(factors->precision());
  factor_section.Write(precision_tag);
  double rating_sum = 0.0;
  std::uint64_t rating_count = 0;
  if (factors != nullptr) factors->GetRatingStats(&rating_sum, &rating_count);
  factor_section.Write(rating_sum);
  factor_section.Write(rating_count);
  std::uint64_t num_users = factors == nullptr ? 0 : factors->NumUsers();
  std::uint64_t num_videos = factors == nullptr ? 0 : factors->NumVideos();
  factor_section.Write(num_users);
  factor_section.Write(num_videos);
  if (factors != nullptr) {
    factors->ForEachUserPacked(
        [&factor_section](UserId id, const FactorStore::PackedView& view) {
          WritePackedEntry(factor_section, id, view);
        });
    factors->ForEachVideoPacked(
        [&factor_section](VideoId id, const FactorStore::PackedView& view) {
          WritePackedEntry(factor_section, id, view);
        });
  }

  // --- Similar-video section: count, then per directed list.
  SectionWriter sim_section;
  std::uint64_t num_lists = 0;
  if (sim_table != nullptr) {
    sim_table->ForEachList(
        [&num_lists](VideoId, std::span<const SimilarVideo>) {
          ++num_lists;
        });
  }
  sim_section.Write(num_lists);
  if (sim_table != nullptr) {
    sim_table->ForEachList(
        [&sim_section](VideoId id, std::span<const SimilarVideo> entries) {
          sim_section.Write(static_cast<std::uint64_t>(id));
          sim_section.Write(static_cast<std::uint32_t>(entries.size()));
          for (const SimilarVideo& e : entries) {
            sim_section.Write(static_cast<std::uint64_t>(e.video));
            sim_section.Write(e.similarity);
            sim_section.Write(static_cast<std::int64_t>(e.update_time));
          }
        });
  }

  // --- History section.
  SectionWriter history_section;
  std::uint64_t num_histories =
      history == nullptr ? 0 : history->NumUsers();
  history_section.Write(num_histories);
  if (history != nullptr) {
    history->ForEach(
        [&history_section](UserId user,
                           const std::vector<HistoryEntry>& entries) {
          history_section.Write(static_cast<std::uint64_t>(user));
          history_section.Write(static_cast<std::uint32_t>(entries.size()));
          for (const HistoryEntry& e : entries) {
            history_section.Write(static_cast<std::uint64_t>(e.video));
            history_section.Write(e.weight);
            history_section.Write(static_cast<std::int64_t>(e.time));
          }
        });
  }

  std::string file;
  file.append(kMagicV3, sizeof(kMagicV3));
  AppendSection(file, factor_section);
  AppendSection(file, sim_section);
  AppendSection(file, history_section);
  return WriteFileAtomic(path, file);
}

Status LoadCheckpoint(const std::string& path, FactorStore* factors,
                      SimTableStore* sim_table, HistoryStore* history) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.checkpoint.read"));

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream contents;
  contents << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("read failed on '" + path + "'");
  }
  const std::string file = contents.str();

  bool is_v3 = false;
  if (file.size() >= sizeof(kMagicV3) &&
      std::memcmp(file.data(), kMagicV3, sizeof(kMagicV3)) == 0) {
    is_v3 = true;
  } else if (file.size() < sizeof(kMagicV2) ||
             std::memcmp(file.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::Corruption("bad checkpoint magic in '" + path + "'");
  }

  // Phase 1: verify + parse every section into staging. Nothing below may
  // touch the target stores.
  std::size_t pos = sizeof(kMagicV2);
  std::string_view factor_bytes, sim_bytes, history_bytes;
  RTREC_RETURN_IF_ERROR(NextSection(file, &pos, &factor_bytes, "factor"));
  RTREC_RETURN_IF_ERROR(NextSection(file, &pos, &sim_bytes, "sim-table"));
  RTREC_RETURN_IF_ERROR(NextSection(file, &pos, &history_bytes, "history"));
  if (pos != file.size()) {
    return Status::Corruption("trailing bytes after checkpoint sections");
  }

  FactorStaging factor_staging;
  SimStaging sim_staging;
  HistoryStaging history_staging;
  RTREC_RETURN_IF_ERROR(
      is_v3 ? ParseFactorSectionV3(factor_bytes, &factor_staging)
            : ParseFactorSection(factor_bytes, &factor_staging));
  RTREC_RETURN_IF_ERROR(ParseSimSection(sim_bytes, &sim_staging));
  RTREC_RETURN_IF_ERROR(ParseHistorySection(history_bytes, &history_staging));

  if (factors != nullptr && factor_staging.num_factors != 0 &&
      static_cast<int>(factor_staging.num_factors) !=
          factors->num_factors()) {
    return Status::InvalidArgument(
        "checkpoint dimensionality " +
        std::to_string(factor_staging.num_factors) +
        " != store dimensionality " +
        std::to_string(factors->num_factors()));
  }

  // Phase 2: everything verified — apply the staged state.
  if (factors != nullptr) {
    for (auto& [id, entry] : factor_staging.users) {
      factors->PutUser(id, std::move(entry));
    }
    for (auto& [id, entry] : factor_staging.videos) {
      factors->PutVideo(id, std::move(entry));
    }
    for (auto& entry : factor_staging.raw_users) {
      ApplyRawEntry(factors, /*is_user=*/true, entry,
                    factor_staging.precision);
    }
    for (auto& entry : factor_staging.raw_videos) {
      ApplyRawEntry(factors, /*is_user=*/false, entry,
                    factor_staging.precision);
    }
    factors->RestoreRatingStats(factor_staging.rating_sum,
                                factor_staging.rating_count);
  }
  if (sim_table != nullptr) {
    for (auto& [id, entries] : sim_staging.lists) {
      sim_table->LoadList(id, std::move(entries));
    }
  }
  if (history != nullptr) {
    for (auto& [user, entries] : history_staging.users) {
      history->LoadUser(user, std::move(entries));
    }
  }
  return Status::OK();
}

}  // namespace rtrec
