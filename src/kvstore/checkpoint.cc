#include "kvstore/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace rtrec {

namespace {

constexpr char kMagic[8] = {'R', 'T', 'R', 'E', 'C', 'C', 'P', '1'};

// Little-endian raw writes; the library targets little-endian hosts (all
// supported platforms), so plain memcpy-based IO is portable enough and
// is validated by the round-trip tests.
template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good() || (in.eof() && in.gcount() == sizeof(T));
}

void WriteEntry(std::ofstream& out, std::uint64_t id,
                const FactorEntry& entry) {
  WritePod(out, id);
  WritePod(out, entry.bias);
  const std::uint32_t n = static_cast<std::uint32_t>(entry.vec.size());
  WritePod(out, n);
  out.write(reinterpret_cast<const char*>(entry.vec.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
}

bool ReadEntry(std::ifstream& in, std::uint64_t* id, FactorEntry* entry,
               std::uint32_t expected_factors) {
  if (!ReadPod(in, id)) return false;
  if (!ReadPod(in, &entry->bias)) return false;
  std::uint32_t n = 0;
  if (!ReadPod(in, &n)) return false;
  if (n != expected_factors) return false;
  entry->vec.resize(n);
  in.read(reinterpret_cast<char*>(entry->vec.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  return in.good();
}

}  // namespace

Status SaveCheckpoint(const std::string& path, const FactorStore* factors,
                      const SimTableStore* sim_table,
                      const HistoryStore* history) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));

  // --- Factor section.
  const std::uint32_t num_factors =
      factors == nullptr ? 0
                         : static_cast<std::uint32_t>(factors->num_factors());
  WritePod(out, num_factors);
  double rating_sum = 0.0;
  std::uint64_t rating_count = 0;
  if (factors != nullptr) factors->GetRatingStats(&rating_sum, &rating_count);
  WritePod(out, rating_sum);
  WritePod(out, rating_count);

  std::uint64_t num_users = factors == nullptr ? 0 : factors->NumUsers();
  std::uint64_t num_videos = factors == nullptr ? 0 : factors->NumVideos();
  WritePod(out, num_users);
  WritePod(out, num_videos);
  if (factors != nullptr) {
    factors->ForEachUser([&out](UserId id, const FactorEntry& entry) {
      WriteEntry(out, id, entry);
    });
    factors->ForEachVideo([&out](VideoId id, const FactorEntry& entry) {
      WriteEntry(out, id, entry);
    });
  }

  // --- Similar-video section: count, then per directed list.
  std::uint64_t num_lists = 0;
  if (sim_table != nullptr) {
    sim_table->ForEachList(
        [&num_lists](VideoId, const std::vector<SimilarVideo>&) {
          ++num_lists;
        });
  }
  WritePod(out, num_lists);
  if (sim_table != nullptr) {
    sim_table->ForEachList(
        [&out](VideoId id, const std::vector<SimilarVideo>& entries) {
          WritePod(out, static_cast<std::uint64_t>(id));
          WritePod(out, static_cast<std::uint32_t>(entries.size()));
          for (const SimilarVideo& e : entries) {
            WritePod(out, static_cast<std::uint64_t>(e.video));
            WritePod(out, e.similarity);
            WritePod(out, static_cast<std::int64_t>(e.update_time));
          }
        });
  }

  // --- History section.
  std::uint64_t num_histories =
      history == nullptr ? 0 : history->NumUsers();
  WritePod(out, num_histories);
  if (history != nullptr) {
    history->ForEach(
        [&out](UserId user, const std::vector<HistoryEntry>& entries) {
          WritePod(out, static_cast<std::uint64_t>(user));
          WritePod(out, static_cast<std::uint32_t>(entries.size()));
          for (const HistoryEntry& e : entries) {
            WritePod(out, static_cast<std::uint64_t>(e.video));
            WritePod(out, e.weight);
            WritePod(out, static_cast<std::int64_t>(e.time));
          }
        });
  }

  out.flush();
  if (!out.good()) return Status::Internal("write failed on '" + path + "'");
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, FactorStore* factors,
                      SimTableStore* sim_table, HistoryStore* history) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open '" + path + "'");

  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad checkpoint magic in '" + path + "'");
  }

  // --- Factor section.
  std::uint32_t num_factors = 0;
  double rating_sum = 0.0;
  std::uint64_t rating_count = 0;
  std::uint64_t num_users = 0, num_videos = 0;
  if (!ReadPod(in, &num_factors) || !ReadPod(in, &rating_sum) ||
      !ReadPod(in, &rating_count) || !ReadPod(in, &num_users) ||
      !ReadPod(in, &num_videos)) {
    return Status::Corruption("truncated factor header");
  }
  if (factors != nullptr && num_factors != 0 &&
      static_cast<int>(num_factors) != factors->num_factors()) {
    return Status::InvalidArgument(
        "checkpoint dimensionality " + std::to_string(num_factors) +
        " != store dimensionality " +
        std::to_string(factors->num_factors()));
  }
  for (std::uint64_t i = 0; i < num_users; ++i) {
    std::uint64_t id = 0;
    FactorEntry entry;
    if (!ReadEntry(in, &id, &entry, num_factors)) {
      return Status::Corruption("truncated user entry");
    }
    if (factors != nullptr) factors->PutUser(id, std::move(entry));
  }
  for (std::uint64_t i = 0; i < num_videos; ++i) {
    std::uint64_t id = 0;
    FactorEntry entry;
    if (!ReadEntry(in, &id, &entry, num_factors)) {
      return Status::Corruption("truncated video entry");
    }
    if (factors != nullptr) factors->PutVideo(id, std::move(entry));
  }
  if (factors != nullptr) {
    factors->RestoreRatingStats(rating_sum, rating_count);
  }

  // --- Similar-video section.
  std::uint64_t num_lists = 0;
  if (!ReadPod(in, &num_lists)) {
    return Status::Corruption("truncated sim-table header");
  }
  for (std::uint64_t i = 0; i < num_lists; ++i) {
    std::uint64_t id = 0;
    std::uint32_t count = 0;
    if (!ReadPod(in, &id) || !ReadPod(in, &count)) {
      return Status::Corruption("truncated sim-table list");
    }
    std::vector<SimilarVideo> entries;
    entries.reserve(count);
    for (std::uint32_t e = 0; e < count; ++e) {
      std::uint64_t video = 0;
      double sim = 0.0;
      std::int64_t time = 0;
      if (!ReadPod(in, &video) || !ReadPod(in, &sim) || !ReadPod(in, &time)) {
        return Status::Corruption("truncated sim-table entry");
      }
      entries.push_back(SimilarVideo{video, sim, time});
    }
    if (sim_table != nullptr) sim_table->LoadList(id, std::move(entries));
  }

  // --- History section.
  std::uint64_t num_histories = 0;
  if (!ReadPod(in, &num_histories)) {
    return Status::Corruption("truncated history header");
  }
  for (std::uint64_t i = 0; i < num_histories; ++i) {
    std::uint64_t user = 0;
    std::uint32_t count = 0;
    if (!ReadPod(in, &user) || !ReadPod(in, &count)) {
      return Status::Corruption("truncated history record");
    }
    std::vector<HistoryEntry> entries;
    entries.reserve(count);
    for (std::uint32_t e = 0; e < count; ++e) {
      std::uint64_t video = 0;
      double weight = 0.0;
      std::int64_t time = 0;
      if (!ReadPod(in, &video) || !ReadPod(in, &weight) ||
          !ReadPod(in, &time)) {
        return Status::Corruption("truncated history entry");
      }
      entries.push_back(HistoryEntry{video, weight, time});
    }
    if (history != nullptr) history->LoadUser(user, std::move(entries));
  }
  return Status::OK();
}

}  // namespace rtrec
