#ifndef RTREC_KVSTORE_CHECKPOINT_H_
#define RTREC_KVSTORE_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {

/// Binary checkpointing of the engine's serving state — the operational
/// complement to the always-on stream: on restart, the model resumes
/// from the last snapshot instead of an empty (cold) state, exactly what
/// a production deployment of the paper's system needs since its model
/// exists only as KV-store contents.
///
/// Format: little-endian, magic "RTRECCP1", then the factor section
/// (dimensionality, μ accumulator, user entries, video entries), the
/// similar-video section (directed lists), and the history section.
/// Load validates the magic and the factor dimensionality against the
/// target store and fails with Corruption / InvalidArgument on mismatch,
/// leaving partially-loaded stores in an unspecified but safe state.

/// Serializes the three stores to `path` (overwrites). Any may be null
/// to skip its section (an empty section is written).
Status SaveCheckpoint(const std::string& path, const FactorStore* factors,
                      const SimTableStore* sim_table,
                      const HistoryStore* history);

/// Restores into the given stores; null targets skip their section.
/// `factors` must be configured with the same num_factors as the saved
/// state.
Status LoadCheckpoint(const std::string& path, FactorStore* factors,
                      SimTableStore* sim_table, HistoryStore* history);

}  // namespace rtrec

#endif  // RTREC_KVSTORE_CHECKPOINT_H_
