#ifndef RTREC_KVSTORE_CHECKPOINT_H_
#define RTREC_KVSTORE_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "kvstore/factor_store.h"
#include "kvstore/history_store.h"
#include "kvstore/sim_table_store.h"

namespace rtrec {

/// Binary checkpointing of the engine's serving state — the operational
/// complement to the always-on stream: on restart, the model resumes
/// from the last snapshot instead of an empty (cold) state, exactly what
/// a production deployment of the paper's system needs since its model
/// exists only as KV-store contents.
///
/// Format: little-endian, magic "RTRECCP3", then three length-prefixed
/// sections — factor (dimensionality, storage precision, μ accumulator,
/// user entries, video entries), similar-video (directed lists), and
/// history — each framed as
///   u64 section_length | section bytes | u32 CRC-32 of the bytes
/// so corruption anywhere in a section is detected before a single byte
/// of it is interpreted.
///
/// v3 persists factor vectors as the store's *raw quantized payload*
/// (precision tag in the header, per-entry int8 scale), so a quantized
/// store round-trips bit-exactly instead of through a dequantize/
/// requantize hop. The loader also accepts the older "RTRECCP2" float32
/// format, and converts across precisions when a checkpoint written at
/// one precision is loaded into a store configured with another.
///
/// Crash safety: SaveCheckpoint serializes to memory, writes `path`.tmp,
/// fsyncs it, and atomically renames it over `path` (then fsyncs the
/// directory), so a crash mid-save leaves the previous checkpoint intact.
/// LoadCheckpoint parses the whole file into staging buffers and applies
/// them to the target stores only after every section verified — a
/// corrupt or truncated file can never half-clobber live stores; on any
/// error the targets are exactly as they were before the call.
///
/// Fault points: "kvstore.checkpoint.write" and "kvstore.checkpoint.read"
/// (see common/fault_injection.h).

/// Serializes the three stores to `path` (atomic overwrite). Any may be
/// null to skip its section (an empty section is written).
Status SaveCheckpoint(const std::string& path, const FactorStore* factors,
                      const SimTableStore* sim_table,
                      const HistoryStore* history);

/// Restores into the given stores; null targets skip their section.
/// `factors` must be configured with the same num_factors as the saved
/// state. On any non-OK return the target stores are untouched.
Status LoadCheckpoint(const std::string& path, FactorStore* factors,
                      SimTableStore* sim_table, HistoryStore* history);

/// Durably replaces `path` with `contents`: tmp file, fsync, atomic
/// rename, directory fsync. A crash (or error return) at any point
/// leaves either the old file or the new one, never a mix. Used for the
/// checkpoint files themselves and for snapshot manifests, which must
/// only name files that were fully written.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace rtrec

#endif  // RTREC_KVSTORE_CHECKPOINT_H_
