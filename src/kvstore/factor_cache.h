#ifndef RTREC_KVSTORE_FACTOR_CACHE_H_
#define RTREC_KVSTORE_FACTOR_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/types.h"
#include "kvstore/factor_store.h"

namespace rtrec {

/// Thread-safe LRU cache of hot video factor entries fronting a
/// FactorStore — the service-level half of the serving path's caching
/// (the request-scoped half is the batched VectorsGet itself, which
/// fetches each candidate at most once per request).
///
/// Invalidation protocol: every cached entry carries the video's write
/// version (FactorStore::VideoVersion) captured under the store's stripe
/// lock at fill time. A lookup is a hit only when the stored version
/// still equals the live one, so any OnlineMf::Update (which rewrites
/// the video entry via PutVideo and bumps the version) invalidates the
/// cached copy without the writer ever touching the cache. Versions are
/// hash-bucketed, so collisions cause occasional spurious misses, never
/// stale hits beyond the (entry, version) snapshot itself.
///
/// Internally lock-striped so concurrent Recommend threads do not
/// serialize on one mutex.
class FactorCache {
 public:
  /// `store` must outlive the cache. `metrics` may be null; when set,
  /// registers `service.factor_cache.hits` / `.misses`.
  FactorCache(const FactorStore* store, std::size_t capacity,
              MetricsRegistry* metrics)
      : store_(store) {
    const std::size_t per_stripe =
        (capacity + kStripes - 1) / kStripes;
    stripes_.reserve(kStripes);
    for (std::size_t i = 0; i < kStripes; ++i) {
      stripes_.push_back(std::make_unique<Stripe>(per_stripe));
    }
    if (metrics != nullptr) {
      hits_ = metrics->GetCounter("service.factor_cache.hits");
      misses_ = metrics->GetCounter("service.factor_cache.misses");
    }
  }

  FactorCache(const FactorCache&) = delete;
  FactorCache& operator=(const FactorCache&) = delete;

  /// Returns true and copies the entry into `out` when `video` is cached
  /// at its current write version; counts a miss otherwise (including
  /// version mismatches, which also drop the stale copy).
  bool Lookup(VideoId video, FactorEntry* out) {
    const std::uint64_t live = store_->VideoVersion(video);
    Stripe& stripe = StripeFor(video);
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      Cached* cached = stripe.cache.Get(video);
      if (cached != nullptr && cached->version == live) {
        *out = cached->entry;
        hit_count_.fetch_add(1, std::memory_order_relaxed);
        if (hits_ != nullptr) hits_->Increment();
        return true;
      }
      // A version mismatch is a miss: the cached copy is stale.
      if (cached != nullptr) stripe.cache.Erase(video);
    }
    miss_count_.fetch_add(1, std::memory_order_relaxed);
    if (misses_ != nullptr) misses_->Increment();
    return false;
  }

  /// Caches `entry` under the write version captured when it was read
  /// from the store (FactorStore::VideoBatchEntry::version).
  void Insert(VideoId video, FactorEntry entry, std::uint64_t version) {
    Stripe& stripe = StripeFor(video);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.cache.Put(video, Cached{std::move(entry), version});
  }

  /// Cumulative effective hit/miss counts — a stale (version-mismatched)
  /// entry counts as a miss, matching the metric counters.
  std::size_t hits() const {
    return hit_count_.load(std::memory_order_relaxed);
  }
  std::size_t misses() const {
    return miss_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Cached {
    FactorEntry entry;
    std::uint64_t version = 0;
  };
  struct Stripe {
    explicit Stripe(std::size_t capacity) : cache(capacity) {}
    std::mutex mu;
    LruCache<VideoId, Cached> cache;
  };

  static constexpr std::size_t kStripes = 8;

  Stripe& StripeFor(VideoId video) {
    return *stripes_[MixHash64(video) & (kStripes - 1)];
  }

  const FactorStore* store_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::size_t> hit_count_{0};
  std::atomic<std::size_t> miss_count_{0};
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_KVSTORE_FACTOR_CACHE_H_
