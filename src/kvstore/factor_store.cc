#include "kvstore/factor_store.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <utility>

#include "common/trace.h"

namespace rtrec {

template <typename Id>
void FactorStore::InitTable(Table<Id>& table, std::size_t num_shards) {
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(1, num_shards));
  table.stripes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    table.stripes.push_back(
        std::make_unique<typename Table<Id>::Stripe>());
  }
  table.mask = n - 1;
}

FactorStore::FactorStore() : FactorStore(Options{}) {}

FactorStore::FactorStore(Options options) : options_(std::move(options)) {
  InitTable(users_, options_.num_shards);
  InitTable(videos_, options_.num_shards);
  if (options_.metrics != nullptr) {
    multiget_calls_ = options_.metrics->GetCounter(options_.metrics_prefix +
                                                   "multiget.calls");
    multiget_keys_ = options_.metrics->GetCounter(options_.metrics_prefix +
                                                  "multiget.keys");
    multiget_hits_ = options_.metrics->GetCounter(options_.metrics_prefix +
                                                  "multiget.hits");
    multiget_shard_batches_ = options_.metrics->GetCounter(
        options_.metrics_prefix + "multiget.shard_batches");
    multiget_span_ = options_.metrics->GetHistogram(
        "trace.stage." + options_.metrics_prefix + "multiget.us");
  }
}

FactorEntry FactorStore::MakeInitialEntry(std::uint64_t id,
                                          bool is_user) const {
  // Seed the per-id stream so initialization is independent of arrival
  // order; user and video streams are decorrelated by a salt.
  const std::uint64_t salt = is_user ? 0x75736572u : 0x766964u;
  Rng rng(MixHash64(options_.seed ^ MixHash64(id + salt)));
  FactorEntry entry;
  entry.vec.resize(static_cast<std::size_t>(options_.num_factors));
  for (float& v : entry.vec) {
    v = static_cast<float>(
        rng.NextDouble(-options_.init_scale, options_.init_scale));
  }
  entry.bias = 0.0f;
  return entry;
}

FactorEntry FactorStore::GetOrInitUser(UserId u) {
  auto& stripe = users_.StripeFor(u);
  {
    std::shared_lock lock(stripe.mu);
    auto it = stripe.map.find(u);
    if (it != stripe.map.end()) return it->second;
  }
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(u);
  if (inserted) it->second = MakeInitialEntry(u, /*is_user=*/true);
  return it->second;
}

FactorEntry FactorStore::GetOrInitVideo(VideoId i) {
  auto& stripe = videos_.StripeFor(i);
  {
    std::shared_lock lock(stripe.mu);
    auto it = stripe.map.find(i);
    if (it != stripe.map.end()) return it->second;
  }
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(i);
  if (inserted) {
    it->second = MakeInitialEntry(i, /*is_user=*/false);
    BumpVideoVersion(i);
  }
  return it->second;
}

StatusOr<FactorEntry> FactorStore::GetUser(UserId u) const {
  const auto& stripe = users_.StripeFor(u);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(u);
  if (it == stripe.map.end()) return Status::NotFound("user");
  return it->second;
}

StatusOr<FactorEntry> FactorStore::GetVideo(VideoId i) const {
  const auto& stripe = videos_.StripeFor(i);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(i);
  if (it == stripe.map.end()) return Status::NotFound("video");
  return it->second;
}

std::vector<FactorStore::VideoBatchEntry> FactorStore::GetVideos(
    std::span<const VideoId> ids) const {
  if (multiget_calls_ != nullptr) multiget_calls_->Increment();
  if (multiget_keys_ != nullptr) {
    multiget_keys_->Increment(static_cast<std::int64_t>(ids.size()));
  }
  TraceSpan span(multiget_span_);
  std::vector<VideoBatchEntry> results(ids.size());

  // Group positions by stripe so each stripe lock is taken once. Stripe
  // counts are small powers of two; sorting (stripe, position) pairs is
  // cheaper than per-stripe buckets for the ~200-key batches the serving
  // path issues.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  order.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    order.emplace_back(
        static_cast<std::uint32_t>(MixHash64(ids[i]) & videos_.mask),
        static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());

  std::int64_t hits = 0;
  std::int64_t stripe_batches = 0;
  for (std::size_t i = 0; i < order.size();) {
    const std::size_t stripe_index = order[i].first;
    const auto& stripe = *videos_.stripes[stripe_index];
    std::shared_lock lock(stripe.mu);
    ++stripe_batches;
    for (; i < order.size() && order[i].first == stripe_index; ++i) {
      const std::size_t pos = order[i].second;
      const VideoId id = ids[pos];
      auto it = stripe.map.find(id);
      if (it == stripe.map.end()) continue;  // found stays false.
      VideoBatchEntry& result = results[pos];
      result.found = true;
      // Read under the stripe lock: writers bump inside the same lock,
      // so the (entry, version) pair is consistent.
      result.version = VideoVersion(id);
      result.entry = it->second;
      ++hits;
    }
  }
  if (multiget_hits_ != nullptr) multiget_hits_->Increment(hits);
  if (multiget_shard_batches_ != nullptr) {
    multiget_shard_batches_->Increment(stripe_batches);
  }
  return results;
}

void FactorStore::PutUser(UserId u, FactorEntry entry) {
  auto& stripe = users_.StripeFor(u);
  std::unique_lock lock(stripe.mu);
  stripe.map[u] = std::move(entry);
}

void FactorStore::PutVideo(VideoId i, FactorEntry entry) {
  auto& stripe = videos_.StripeFor(i);
  std::unique_lock lock(stripe.mu);
  stripe.map[i] = std::move(entry);
  // Bumped under the stripe lock, so a GetVideos snapshot can never pair
  // the new entry with the old version (or vice versa).
  BumpVideoVersion(i);
}

void FactorStore::UpdateUser(UserId u,
                             const std::function<void(FactorEntry&)>& fn) {
  auto& stripe = users_.StripeFor(u);
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(u);
  if (inserted) it->second = MakeInitialEntry(u, /*is_user=*/true);
  fn(it->second);
}

void FactorStore::UpdateVideo(VideoId i,
                              const std::function<void(FactorEntry&)>& fn) {
  auto& stripe = videos_.StripeFor(i);
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(i);
  if (inserted) it->second = MakeInitialEntry(i, /*is_user=*/false);
  fn(it->second);
  BumpVideoVersion(i);
}

void FactorStore::ObserveRating(double rating) {
  // Relaxed accumulation: μ tolerates benign races (it is a slowly-moving
  // global average), but use CAS to avoid losing increments entirely.
  double expected = rating_sum_.load(std::memory_order_relaxed);
  while (!rating_sum_.compare_exchange_weak(expected, expected + rating,
                                            std::memory_order_relaxed)) {
  }
  rating_count_.fetch_add(1, std::memory_order_relaxed);
}

double FactorStore::GlobalMean() const {
  const std::uint64_t n = rating_count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return rating_sum_.load(std::memory_order_relaxed) /
         static_cast<double>(n);
}

std::uint64_t FactorStore::RatingCount() const {
  return rating_count_.load(std::memory_order_relaxed);
}

std::size_t FactorStore::NumUsers() const {
  std::size_t total = 0;
  for (const auto& stripe : users_.stripes) {
    std::shared_lock lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

std::size_t FactorStore::NumVideos() const {
  std::size_t total = 0;
  for (const auto& stripe : videos_.stripes) {
    std::shared_lock lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

void FactorStore::ForEachVideo(
    const std::function<void(VideoId, const FactorEntry&)>& fn) const {
  for (const auto& stripe : videos_.stripes) {
    std::shared_lock lock(stripe->mu);
    for (const auto& [id, entry] : stripe->map) fn(id, entry);
  }
}

void FactorStore::ForEachUser(
    const std::function<void(UserId, const FactorEntry&)>& fn) const {
  for (const auto& stripe : users_.stripes) {
    std::shared_lock lock(stripe->mu);
    for (const auto& [id, entry] : stripe->map) fn(id, entry);
  }
}

void FactorStore::RestoreRatingStats(double sum, std::uint64_t count) {
  rating_sum_.store(sum, std::memory_order_relaxed);
  rating_count_.store(count, std::memory_order_relaxed);
}

void FactorStore::GetRatingStats(double* sum, std::uint64_t* count) const {
  *sum = rating_sum_.load(std::memory_order_relaxed);
  *count = rating_count_.load(std::memory_order_relaxed);
}

}  // namespace rtrec
