#include "kvstore/factor_store.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/trace.h"

namespace rtrec {

template <typename Id>
void FactorStore::InitTable(Table<Id>& table, std::size_t num_shards) {
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(1, num_shards));
  table.stripes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    table.stripes.push_back(
        std::make_unique<typename Table<Id>::Stripe>());
  }
  table.mask = n - 1;
}

FactorStore::FactorStore() : FactorStore(Options{}) {}

FactorStore::FactorStore(Options options) : options_(std::move(options)) {
  payload_bytes_ = static_cast<std::size_t>(options_.num_factors) *
                   FactorWidthBytes(options_.precision);
  InitTable(users_, options_.num_shards);
  InitTable(videos_, options_.num_shards);
  if (options_.metrics != nullptr) {
    multiget_calls_ = options_.metrics->GetCounter(options_.metrics_prefix +
                                                   "multiget.calls");
    multiget_keys_ = options_.metrics->GetCounter(options_.metrics_prefix +
                                                  "multiget.keys");
    multiget_hits_ = options_.metrics->GetCounter(options_.metrics_prefix +
                                                  "multiget.hits");
    multiget_shard_batches_ = options_.metrics->GetCounter(
        options_.metrics_prefix + "multiget.shard_batches");
    multiget_span_ = options_.metrics->GetHistogram(
        "trace.stage." + options_.metrics_prefix + "multiget.us");
  }
}

FactorStore::PackedFactorEntry FactorStore::Pack(
    const FactorEntry& entry) const {
  PackedFactorEntry packed;
  packed.bias = entry.bias;
  packed.data = std::make_unique<std::byte[]>(payload_bytes_);
  const std::size_t f = static_cast<std::size_t>(options_.num_factors);
  if (entry.vec.size() == f) {
    QuantizeVector(options_.precision, entry.vec.data(), f,
                   packed.data.get(), &packed.scale);
  } else {
    // Off-size vectors are truncated / zero-padded to num_factors so the
    // payload width stays fixed (every write path produces num_factors;
    // this is belt-and-braces for hand-built entries).
    std::vector<float> fixed(f, 0.0f);
    std::memcpy(fixed.data(), entry.vec.data(),
                std::min(entry.vec.size(), f) * sizeof(float));
    QuantizeVector(options_.precision, fixed.data(), f, packed.data.get(),
                   &packed.scale);
  }
  return packed;
}

FactorEntry FactorStore::Unpack(const PackedFactorEntry& packed) const {
  FactorEntry entry;
  entry.bias = packed.bias;
  entry.vec.resize(static_cast<std::size_t>(options_.num_factors));
  DequantizeVector(options_.precision, packed.data.get(), entry.vec.size(),
                   packed.scale, entry.vec.data());
  return entry;
}

FactorEntry FactorStore::MakeInitialEntry(std::uint64_t id,
                                          bool is_user) const {
  // Seed the per-id stream so initialization is independent of arrival
  // order; user and video streams are decorrelated by a salt.
  const std::uint64_t salt = is_user ? 0x75736572u : 0x766964u;
  Rng rng(MixHash64(options_.seed ^ MixHash64(id + salt)));
  FactorEntry entry;
  entry.vec.resize(static_cast<std::size_t>(options_.num_factors));
  for (float& v : entry.vec) {
    v = static_cast<float>(
        rng.NextDouble(-options_.init_scale, options_.init_scale));
  }
  entry.bias = 0.0f;
  return entry;
}

FactorEntry FactorStore::GetOrInitUser(UserId u) {
  auto& stripe = users_.StripeFor(u);
  {
    std::shared_lock lock(stripe.mu);
    auto it = stripe.map.find(u);
    if (it != stripe.map.end()) return Unpack(it->second);
  }
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(u);
  if (inserted) it->second = Pack(MakeInitialEntry(u, /*is_user=*/true));
  return Unpack(it->second);
}

FactorEntry FactorStore::GetOrInitVideo(VideoId i) {
  auto& stripe = videos_.StripeFor(i);
  {
    std::shared_lock lock(stripe.mu);
    auto it = stripe.map.find(i);
    if (it != stripe.map.end()) return Unpack(it->second);
  }
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(i);
  if (inserted) {
    it->second = Pack(MakeInitialEntry(i, /*is_user=*/false));
    BumpVideoVersion(i);
  }
  return Unpack(it->second);
}

StatusOr<FactorEntry> FactorStore::GetUser(UserId u) const {
  const auto& stripe = users_.StripeFor(u);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(u);
  if (it == stripe.map.end()) return Status::NotFound("user");
  return Unpack(it->second);
}

StatusOr<FactorEntry> FactorStore::GetVideo(VideoId i) const {
  const auto& stripe = videos_.StripeFor(i);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(i);
  if (it == stripe.map.end()) return Status::NotFound("video");
  return Unpack(it->second);
}

std::vector<FactorStore::VideoBatchEntry> FactorStore::GetVideos(
    std::span<const VideoId> ids) const {
  if (multiget_calls_ != nullptr) multiget_calls_->Increment();
  if (multiget_keys_ != nullptr) {
    multiget_keys_->Increment(static_cast<std::int64_t>(ids.size()));
  }
  TraceSpan span(multiget_span_);
  std::vector<VideoBatchEntry> results(ids.size());

  // Group positions by stripe so each stripe lock is taken once. Stripe
  // counts are small powers of two; sorting (stripe, position) pairs is
  // cheaper than per-stripe buckets for the ~200-key batches the serving
  // path issues.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  order.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    order.emplace_back(
        static_cast<std::uint32_t>(MixHash64(ids[i]) & videos_.mask),
        static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());

  std::int64_t hits = 0;
  std::int64_t stripe_batches = 0;
  for (std::size_t i = 0; i < order.size();) {
    const std::size_t stripe_index = order[i].first;
    const auto& stripe = *videos_.stripes[stripe_index];
    std::shared_lock lock(stripe.mu);
    ++stripe_batches;
    for (; i < order.size() && order[i].first == stripe_index; ++i) {
      const std::size_t pos = order[i].second;
      const VideoId id = ids[pos];
      auto it = stripe.map.find(id);
      if (it == stripe.map.end()) continue;  // found stays false.
      VideoBatchEntry& result = results[pos];
      result.found = true;
      // Read under the stripe lock: writers bump inside the same lock,
      // so the (entry, version) pair is consistent.
      result.version = VideoVersion(id);
      result.entry = Unpack(it->second);
      ++hits;
    }
  }
  if (multiget_hits_ != nullptr) multiget_hits_->Increment(hits);
  if (multiget_shard_batches_ != nullptr) {
    multiget_shard_batches_->Increment(stripe_batches);
  }
  return results;
}

void FactorStore::PutUser(UserId u, FactorEntry entry) {
  PackedFactorEntry packed = Pack(entry);
  auto& stripe = users_.StripeFor(u);
  std::unique_lock lock(stripe.mu);
  stripe.map[u] = std::move(packed);
}

void FactorStore::PutVideo(VideoId i, FactorEntry entry) {
  PackedFactorEntry packed = Pack(entry);
  auto& stripe = videos_.StripeFor(i);
  std::unique_lock lock(stripe.mu);
  stripe.map[i] = std::move(packed);
  // Bumped under the stripe lock, so a GetVideos snapshot can never pair
  // the new entry with the old version (or vice versa).
  BumpVideoVersion(i);
}

void FactorStore::UpdateUser(UserId u,
                             const std::function<void(FactorEntry&)>& fn) {
  auto& stripe = users_.StripeFor(u);
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(u);
  FactorEntry entry = inserted ? MakeInitialEntry(u, /*is_user=*/true)
                               : Unpack(it->second);
  fn(entry);
  it->second = Pack(entry);
}

void FactorStore::UpdateVideo(VideoId i,
                              const std::function<void(FactorEntry&)>& fn) {
  auto& stripe = videos_.StripeFor(i);
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.map.try_emplace(i);
  FactorEntry entry = inserted ? MakeInitialEntry(i, /*is_user=*/false)
                               : Unpack(it->second);
  fn(entry);
  it->second = Pack(entry);
  BumpVideoVersion(i);
}

void FactorStore::ObserveRating(double rating) {
  // Seqlock write: serialize writers, mark the window odd, update both
  // halves, mark it even. Readers that overlap the window retry.
  std::lock_guard<std::mutex> lock(rating_mu_);
  rating_seq_.fetch_add(1, std::memory_order_acq_rel);
  rating_sum_.store(rating_sum_.load(std::memory_order_relaxed) + rating,
                    std::memory_order_relaxed);
  rating_count_.store(rating_count_.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
  rating_seq_.fetch_add(1, std::memory_order_release);
}

double FactorStore::GlobalMean() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  GetRatingStats(&sum, &count);
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

std::uint64_t FactorStore::RatingCount() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  GetRatingStats(&sum, &count);
  return count;
}

std::size_t FactorStore::NumUsers() const {
  std::size_t total = 0;
  for (const auto& stripe : users_.stripes) {
    std::shared_lock lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

std::size_t FactorStore::NumVideos() const {
  std::size_t total = 0;
  for (const auto& stripe : videos_.stripes) {
    std::shared_lock lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

void FactorStore::ForEachVideo(
    const std::function<void(VideoId, const FactorEntry&)>& fn) const {
  for (const auto& stripe : videos_.stripes) {
    std::shared_lock lock(stripe->mu);
    for (const auto& [id, entry] : stripe->map) fn(id, Unpack(entry));
  }
}

void FactorStore::ForEachUser(
    const std::function<void(UserId, const FactorEntry&)>& fn) const {
  for (const auto& stripe : users_.stripes) {
    std::shared_lock lock(stripe->mu);
    for (const auto& [id, entry] : stripe->map) fn(id, Unpack(entry));
  }
}

void FactorStore::ForEachUserPacked(
    const std::function<void(UserId, const PackedView&)>& fn) const {
  for (const auto& stripe : users_.stripes) {
    std::shared_lock lock(stripe->mu);
    for (const auto& [id, entry] : stripe->map) {
      fn(id, PackedView{entry.bias, entry.scale, entry.data.get(),
                        payload_bytes_});
    }
  }
}

void FactorStore::ForEachVideoPacked(
    const std::function<void(VideoId, const PackedView&)>& fn) const {
  for (const auto& stripe : videos_.stripes) {
    std::shared_lock lock(stripe->mu);
    for (const auto& [id, entry] : stripe->map) {
      fn(id, PackedView{entry.bias, entry.scale, entry.data.get(),
                        payload_bytes_});
    }
  }
}

bool FactorStore::PutUserPacked(UserId u, float bias, float scale,
                                const std::byte* data, std::size_t size) {
  if (size != payload_bytes_) return false;
  PackedFactorEntry packed;
  packed.bias = bias;
  packed.scale = scale;
  packed.data = std::make_unique<std::byte[]>(payload_bytes_);
  std::memcpy(packed.data.get(), data, payload_bytes_);
  auto& stripe = users_.StripeFor(u);
  std::unique_lock lock(stripe.mu);
  stripe.map[u] = std::move(packed);
  return true;
}

bool FactorStore::PutVideoPacked(VideoId i, float bias, float scale,
                                 const std::byte* data, std::size_t size) {
  if (size != payload_bytes_) return false;
  PackedFactorEntry packed;
  packed.bias = bias;
  packed.scale = scale;
  packed.data = std::make_unique<std::byte[]>(payload_bytes_);
  std::memcpy(packed.data.get(), data, payload_bytes_);
  auto& stripe = videos_.StripeFor(i);
  std::unique_lock lock(stripe.mu);
  stripe.map[i] = std::move(packed);
  BumpVideoVersion(i);
  return true;
}

void FactorStore::RestoreRatingStats(double sum, std::uint64_t count) {
  std::lock_guard<std::mutex> lock(rating_mu_);
  rating_seq_.fetch_add(1, std::memory_order_acq_rel);
  rating_sum_.store(sum, std::memory_order_relaxed);
  rating_count_.store(count, std::memory_order_relaxed);
  rating_seq_.fetch_add(1, std::memory_order_release);
}

void FactorStore::GetRatingStats(double* sum, std::uint64_t* count) const {
  // Seqlock read: retry until a stable even sequence brackets the loads.
  for (;;) {
    const std::uint32_t before = rating_seq_.load(std::memory_order_acquire);
    if (before & 1u) continue;  // Write in progress.
    const double s = rating_sum_.load(std::memory_order_relaxed);
    const std::uint64_t c = rating_count_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (rating_seq_.load(std::memory_order_relaxed) == before) {
      *sum = s;
      *count = c;
      return;
    }
  }
}

}  // namespace rtrec
