#ifndef RTREC_KVSTORE_FACTOR_STORE_H_
#define RTREC_KVSTORE_FACTOR_STORE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "kvstore/quantization.h"

namespace rtrec {

/// A latent-factor entry: the vector (x_u or y_i) plus the bias term
/// (b_u or b_i) of Eq. 2.
struct FactorEntry {
  std::vector<float> vec;
  float bias = 0.0f;
};

/// Stores the matrix-factorization state: one FactorEntry per user and per
/// video, plus the running global average rating μ. This is the typed view
/// over the paper's distributed KV store that the ComputeMF / MFStorage
/// bolts read and write. Hash-sharded with striped reader-writer locks;
/// operations on distinct keys proceed in parallel.
///
/// Entries are stored packed: vectors are quantized on write to
/// `Options::precision` (float32 / float16 / int8) and dequantized on
/// read, so the whole training and serving stack keeps speaking float
/// `FactorEntry`s while a million-entry store holds 80 bytes per entry
/// at fp16 instead of 144 at fp32 (16-byte packed struct + payload; see
/// BytesPerEntry). The FactorCache caches the dequantized form, so the
/// serving hot path pays the decode once per fill, not per request.
///
/// New ids are lazily initialized with small random values drawn from a
/// deterministic per-id stream, so "new users and items can be easily
/// added" (Section 3.3) and initialization is reproducible regardless of
/// arrival order.
class FactorStore {
 public:
  struct Options {
    /// Latent dimensionality f.
    int num_factors = 32;
    /// Scale of the random initialization (uniform in ±init_scale).
    double init_scale = 0.1;
    /// Seed mixed with each id to derive its initial vector.
    std::uint64_t seed = 1;
    /// Lock-stripe count (rounded up to a power of two).
    std::size_t num_shards = 16;
    /// Storage precision of factor vectors. Biases stay float32 (one
    /// scalar per entry — quantizing it saves nothing and the bias
    /// carries the per-item popularity signal).
    FactorPrecision precision = FactorPrecision::kFloat32;
    /// Optional registry for batch-read counters (`<prefix>multiget.*`);
    /// nullptr disables.
    MetricsRegistry* metrics = nullptr;
    /// Prefix for metric names. The factor store is the typed view over
    /// the paper's KV store, so it reports under the same namespace.
    std::string metrics_prefix = "kvstore.";
  };

  /// Constructs with default options.
  FactorStore();
  explicit FactorStore(Options options);

  FactorStore(const FactorStore&) = delete;
  FactorStore& operator=(const FactorStore&) = delete;

  int num_factors() const { return options_.num_factors; }
  FactorPrecision precision() const { return options_.precision; }

  /// Fixed storage cost of one entry: the packed struct (pointer + bias
  /// + scale) plus the quantized payload. Hash-map node and bucket
  /// overhead is excluded — the bench's RSS rows carry the honest total.
  std::size_t BytesPerEntry() const {
    return sizeof(PackedFactorEntry) + payload_bytes_;
  }

  /// BytesPerEntry summed over every stored user and video entry.
  std::size_t ApproxFactorBytes() const {
    return (NumUsers() + NumVideos()) * BytesPerEntry();
  }

  /// Returns the user entry, creating and initializing it if absent.
  FactorEntry GetOrInitUser(UserId u);

  /// Returns the video entry, creating and initializing it if absent.
  FactorEntry GetOrInitVideo(VideoId i);

  /// Returns the user entry, or NotFound without creating it.
  StatusOr<FactorEntry> GetUser(UserId u) const;

  /// Returns the video entry, or NotFound without creating it.
  StatusOr<FactorEntry> GetVideo(VideoId i) const;

  /// One result of a batched video read.
  struct VideoBatchEntry {
    /// False when the id has no stored entry (the caller scores it with
    /// MakeInitialEntry instead).
    bool found = false;
    /// The id's version (see VideoVersion) read under the same stripe
    /// lock as `entry`, so (entry, version) is consistent.
    std::uint64_t version = 0;
    FactorEntry entry;
  };

  /// Batched VectorsGet (Fig. 1): fetches all ids in one pass, grouping
  /// them by stripe and taking each stripe lock exactly once instead of
  /// once per id. Results are aligned with `ids`.
  std::vector<VideoBatchEntry> GetVideos(std::span<const VideoId> ids) const;

  /// Monotone per-video write version, bumped whenever the video's entry
  /// is (re)written (PutVideo / UpdateVideo / first GetOrInitVideo).
  /// Versions are tracked in hashed buckets, so two videos may share a
  /// version stream — a collision only causes a spurious cache
  /// invalidation, never a stale hit. Lock-free read; serving caches
  /// compare it against the version captured at fill time.
  std::uint64_t VideoVersion(VideoId i) const {
    return video_versions_[VersionBucket(i)].load(std::memory_order_acquire);
  }

  /// Overwrites the user entry (MFStorage bolt write path). The vector
  /// is quantized to the store's precision; reads return the quantized
  /// value, and vectors longer/shorter than num_factors are
  /// truncated/zero-padded to exactly num_factors.
  void PutUser(UserId u, FactorEntry entry);

  /// Overwrites the video entry (MFStorage bolt write path).
  void PutVideo(VideoId i, FactorEntry entry);

  /// Atomically read-modify-writes the user entry under its stripe lock,
  /// initializing it first if absent. Used by the single-process training
  /// path where per-key atomicity substitutes for fields grouping. The
  /// callback sees the dequantized entry; the result is requantized.
  void UpdateUser(UserId u, const std::function<void(FactorEntry&)>& fn);

  /// Atomically read-modify-writes the video entry (see UpdateUser).
  void UpdateVideo(VideoId i, const std::function<void(FactorEntry&)>& fn);

  /// Folds one observed rating into the running global mean μ.
  void ObserveRating(double rating);

  /// Running global average rating μ of Eq. 2 (0 until first observation).
  /// Reads (sum, count) as a consistent pair via the rating seqlock.
  double GlobalMean() const;

  /// Number of ratings folded into μ.
  std::uint64_t RatingCount() const;

  std::size_t NumUsers() const;
  std::size_t NumVideos() const;

  /// Visits every video entry (id, entry). Iteration locks one stripe at a
  /// time. Used by batch jobs (e.g. full similarity rebuilds in tests).
  void ForEachVideo(
      const std::function<void(VideoId, const FactorEntry&)>& fn) const;

  /// Visits every user entry (id, entry); same locking discipline.
  void ForEachUser(
      const std::function<void(UserId, const FactorEntry&)>& fn) const;

  /// Borrowed view of one packed (quantized) entry — valid only inside
  /// the ForEach*Packed callback that produced it. Checkpoints persist
  /// these raw bytes so a quantized store round-trips bit-exactly
  /// (dequantize→requantize is stable for fp16/int8 but memcmp-identical
  /// only via the raw payload).
  struct PackedView {
    float bias = 0.0f;
    /// int8 dequantization scale; 0 for float32/float16.
    float scale = 0.0f;
    const std::byte* data = nullptr;
    /// Payload size: num_factors * FactorWidthBytes(precision).
    std::size_t size = 0;
  };

  /// Visits every user entry in packed form (checkpoint save path).
  void ForEachUserPacked(
      const std::function<void(UserId, const PackedView&)>& fn) const;

  /// Visits every video entry in packed form (checkpoint save path).
  void ForEachVideoPacked(
      const std::function<void(VideoId, const PackedView&)>& fn) const;

  /// Installs a raw packed payload (checkpoint load path). `size` must
  /// equal num_factors * FactorWidthBytes(precision()); returns false
  /// (and stores nothing) otherwise.
  bool PutUserPacked(UserId u, float bias, float scale,
                     const std::byte* data, std::size_t size);

  /// Video-side PutUserPacked; bumps the video version.
  bool PutVideoPacked(VideoId i, float bias, float scale,
                      const std::byte* data, std::size_t size);

  /// Restores the running-mean accumulator (checkpoint load path).
  void RestoreRatingStats(double sum, std::uint64_t count);

  /// Current running-mean accumulator (checkpoint save path), read as a
  /// consistent pair.
  void GetRatingStats(double* sum, std::uint64_t* count) const;

  /// Deterministically initializes an entry for `id` without storing it.
  FactorEntry MakeInitialEntry(std::uint64_t id, bool is_user) const;

 private:
  /// Quantized in-memory form of one entry: 16 bytes of struct plus the
  /// payload the unique_ptr owns (num_factors * factor width).
  struct PackedFactorEntry {
    std::unique_ptr<std::byte[]> data;
    float bias = 0.0f;
    /// int8 dequantization scale; unused (0) for float32/float16.
    float scale = 0.0f;
  };

  PackedFactorEntry Pack(const FactorEntry& entry) const;
  FactorEntry Unpack(const PackedFactorEntry& packed) const;

  template <typename Id>
  struct Table {
    struct Stripe {
      mutable std::shared_mutex mu;
      std::unordered_map<Id, PackedFactorEntry> map;
    };
    std::vector<std::unique_ptr<Stripe>> stripes;
    std::size_t mask = 0;

    Stripe& StripeFor(Id id) {
      return *stripes[MixHash64(id) & mask];
    }
    const Stripe& StripeFor(Id id) const {
      return *stripes[MixHash64(id) & mask];
    }
  };

  template <typename Id>
  void InitTable(Table<Id>& table, std::size_t num_shards);

  static constexpr std::size_t kVersionBuckets = 4096;  // Power of two.
  static std::size_t VersionBucket(VideoId i) {
    return MixHash64(i) & (kVersionBuckets - 1);
  }
  void BumpVideoVersion(VideoId i) {
    video_versions_[VersionBucket(i)].fetch_add(1, std::memory_order_acq_rel);
  }

  Options options_;
  /// num_factors * FactorWidthBytes(precision), cached at construction.
  std::size_t payload_bytes_ = 0;
  Table<UserId> users_;
  Table<VideoId> videos_;

  // Hashed per-video write versions backing serving-cache invalidation.
  std::array<std::atomic<std::uint64_t>, kVersionBuckets> video_versions_{};

  // Batch-read instrumentation (see ShardedKvStore's multiget counters).
  Counter* multiget_calls_ = nullptr;
  Counter* multiget_keys_ = nullptr;
  Counter* multiget_hits_ = nullptr;
  Counter* multiget_shard_batches_ = nullptr;
  Histogram* multiget_span_ = nullptr;

  // Running mean μ. (sum, count) must be read as a pair — a sum from one
  // rating and a count from another skews the mean every reader sees —
  // so the pair sits behind a seqlock: writers serialize on rating_mu_
  // and bracket their two stores with seq increments (odd = write in
  // progress); readers retry until they see the same even sequence on
  // both sides of the loads. The payload stays in atomics with relaxed
  // ordering so the retry loop is race-free under TSan.
  mutable std::mutex rating_mu_;
  std::atomic<std::uint32_t> rating_seq_{0};
  std::atomic<double> rating_sum_{0.0};
  std::atomic<std::uint64_t> rating_count_{0};
};

}  // namespace rtrec

#endif  // RTREC_KVSTORE_FACTOR_STORE_H_
