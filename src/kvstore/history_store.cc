#include "kvstore/history_store.h"

#include <algorithm>
#include <bit>

namespace rtrec {

HistoryStore::HistoryStore() : HistoryStore(Options{}) {}

HistoryStore::HistoryStore(Options options) : options_(options) {
  const std::size_t n =
      std::bit_ceil(std::max<std::size_t>(1, options_.num_shards));
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  mask_ = n - 1;
}

void HistoryStore::Append(UserId user, HistoryEntry entry) {
  Stripe& stripe = StripeFor(user);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::deque<HistoryEntry>& history = stripe.map[user];
  // Keep videos distinct: refresh an existing entry by moving it to the
  // back (most recent position).
  auto it = std::find_if(
      history.begin(), history.end(),
      [&entry](const HistoryEntry& e) { return e.video == entry.video; });
  if (it != history.end()) history.erase(it);
  history.push_back(entry);
  while (history.size() > options_.max_entries_per_user) {
    history.pop_front();
  }
}

std::vector<HistoryEntry> HistoryStore::Get(UserId user) const {
  return GetRecent(user, options_.max_entries_per_user);
}

std::vector<HistoryEntry> HistoryStore::GetRecent(UserId user,
                                                  std::size_t limit) const {
  const Stripe& stripe = StripeFor(user);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(user);
  if (it == stripe.map.end()) return {};
  const std::deque<HistoryEntry>& history = it->second;
  std::vector<HistoryEntry> out;
  const std::size_t n = std::min(limit, history.size());
  out.reserve(n);
  // Newest first.
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(history[history.size() - 1 - i]);
  }
  return out;
}

std::size_t HistoryStore::NumUsers() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

void HistoryStore::ForEach(
    const std::function<void(UserId, const std::vector<HistoryEntry>&)>& fn)
    const {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [user, history] : stripe->map) {
      fn(user, std::vector<HistoryEntry>(history.begin(), history.end()));
    }
  }
}

void HistoryStore::LoadUser(UserId user, std::vector<HistoryEntry> entries) {
  Stripe& stripe = StripeFor(user);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::deque<HistoryEntry>& history = stripe.map[user];
  history.assign(entries.begin(), entries.end());
  while (history.size() > options_.max_entries_per_user) {
    history.pop_front();
  }
}

void HistoryStore::Erase(UserId user) {
  Stripe& stripe = StripeFor(user);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.map.erase(user);
}

}  // namespace rtrec
