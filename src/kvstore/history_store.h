#ifndef RTREC_KVSTORE_HISTORY_STORE_H_
#define RTREC_KVSTORE_HISTORY_STORE_H_

#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtrec {

/// One remembered interaction of a user: which video, with what confidence
/// weight (Section 3.2), and when.
struct HistoryEntry {
  VideoId video = 0;
  double weight = 0.0;
  Timestamp time = 0;
};

/// Bounded per-user behaviour history, as recorded by the UserHistory bolt
/// (Fig. 2). Histories feed (a) item-pair generation for the similar-video
/// tables and (b) seed selection in the "guess you like" scenario.
/// Hash-sharded; each user's history is a small ring of the most recent
/// `max_entries_per_user` interactions.
class HistoryStore {
 public:
  struct Options {
    /// Per-user retention; the paper only needs recent co-watches.
    std::size_t max_entries_per_user = 64;
    /// Lock-stripe count (rounded up to a power of two).
    std::size_t num_shards = 16;
  };

  /// Constructs with default options.
  HistoryStore();
  explicit HistoryStore(Options options);

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  /// Appends one interaction for `user`, evicting the oldest entry when
  /// over the bound. If the same video already appears, the old entry is
  /// replaced in place (weight and time refreshed) so the history holds
  /// distinct videos.
  void Append(UserId user, HistoryEntry entry);

  /// Most recent entries for `user`, newest first. Empty if unknown.
  std::vector<HistoryEntry> Get(UserId user) const;

  /// Most recent at most `limit` entries for `user`, newest first.
  std::vector<HistoryEntry> GetRecent(UserId user, std::size_t limit) const;

  /// Number of users with any history.
  std::size_t NumUsers() const;

  /// Drops the history of `user`.
  void Erase(UserId user);

  /// Visits every user's history, oldest entry first (checkpoint save).
  void ForEach(const std::function<void(
                   UserId, const std::vector<HistoryEntry>&)>& fn) const;

  /// Replaces a user's history wholesale, `entries` oldest first
  /// (checkpoint load). Truncated to the per-user bound.
  void LoadUser(UserId user, std::vector<HistoryEntry> entries);

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<UserId, std::deque<HistoryEntry>> map;
  };

  Stripe& StripeFor(UserId u) { return *stripes_[MixHash64(u) & mask_]; }
  const Stripe& StripeFor(UserId u) const {
    return *stripes_[MixHash64(u) & mask_];
  }

  Options options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

}  // namespace rtrec

#endif  // RTREC_KVSTORE_HISTORY_STORE_H_
