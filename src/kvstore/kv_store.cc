#include "kvstore/kv_store.h"

#include <bit>

#include "common/fault_injection.h"

namespace rtrec {

namespace {

std::size_t RoundUpPowerOfTwo(std::size_t n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

}  // namespace

ShardedKvStore::ShardedKvStore(ShardedKvStoreOptions options) {
  const std::size_t n = RoundUpPowerOfTwo(options.num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
  if (options.metrics != nullptr) {
    gets_ = options.metrics->GetCounter(options.metrics_prefix + "gets");
    hits_ = options.metrics->GetCounter(options.metrics_prefix + "hits");
    puts_ = options.metrics->GetCounter(options.metrics_prefix + "puts");
    deletes_ = options.metrics->GetCounter(options.metrics_prefix + "deletes");
    get_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "get.us");
    put_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "put.us");
    update_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "update.us");
  }
}

ShardedKvStore::Shard& ShardedKvStore::ShardFor(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h & shard_mask_];
}

const ShardedKvStore::Shard& ShardedKvStore::ShardFor(
    const std::string& key) const {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h & shard_mask_];
}

StatusOr<std::string> ShardedKvStore::Get(const std::string& key) const {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.get"));
  TraceSpan span(get_span_);
  if (gets_ != nullptr) gets_->Increment();
  const Shard& shard = ShardFor(key);
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return Status::NotFound("key '" + key + "'");
  }
  if (hits_ != nullptr) hits_->Increment();
  return it->second;
}

Status ShardedKvStore::Put(const std::string& key, std::string value) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.put"));
  TraceSpan span(put_span_);
  if (puts_ != nullptr) puts_->Increment();
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  shard.map[key] = std::move(value);
  return Status::OK();
}

Status ShardedKvStore::Delete(const std::string& key) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.delete"));
  if (deletes_ != nullptr) deletes_->Increment();
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  if (shard.map.erase(key) == 0) {
    return Status::NotFound("key '" + key + "'");
  }
  return Status::OK();
}

bool ShardedKvStore::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::shared_lock lock(shard.mu);
  return shard.map.contains(key);
}

Status ShardedKvStore::Update(const std::string& key,
                              const std::function<void(std::string&)>& fn,
                              bool create_if_missing) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.update"));
  TraceSpan span(update_span_);
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    if (!create_if_missing) return Status::NotFound("key '" + key + "'");
    it = shard.map.emplace(key, std::string()).first;
  }
  fn(it->second);
  return Status::OK();
}

std::size_t ShardedKvStore::Size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void ShardedKvStore::ForEach(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [key, value] : shard->map) fn(key, value);
  }
}

}  // namespace rtrec
