#include "kvstore/kv_store.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/fault_injection.h"

namespace rtrec {

namespace {

std::size_t RoundUpPowerOfTwo(std::size_t n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

}  // namespace

ShardedKvStore::ShardedKvStore(ShardedKvStoreOptions options) {
  const std::size_t n = RoundUpPowerOfTwo(options.num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = n - 1;
  if (options.metrics != nullptr) {
    gets_ = options.metrics->GetCounter(options.metrics_prefix + "gets");
    hits_ = options.metrics->GetCounter(options.metrics_prefix + "hits");
    puts_ = options.metrics->GetCounter(options.metrics_prefix + "puts");
    deletes_ = options.metrics->GetCounter(options.metrics_prefix + "deletes");
    get_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "get.us");
    put_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "put.us");
    update_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "update.us");
    multiget_calls_ =
        options.metrics->GetCounter(options.metrics_prefix + "multiget.calls");
    multiget_keys_ =
        options.metrics->GetCounter(options.metrics_prefix + "multiget.keys");
    multiget_hits_ =
        options.metrics->GetCounter(options.metrics_prefix + "multiget.hits");
    multiget_shard_batches_ = options.metrics->GetCounter(
        options.metrics_prefix + "multiget.shard_batches");
    multiget_span_ = options.metrics->GetHistogram(
        "trace.stage." + options.metrics_prefix + "multiget.us");
  }
}

ShardedKvStore::Shard& ShardedKvStore::ShardFor(const std::string& key) {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h & shard_mask_];
}

const ShardedKvStore::Shard& ShardedKvStore::ShardFor(
    const std::string& key) const {
  const std::size_t h = std::hash<std::string>{}(key);
  return *shards_[h & shard_mask_];
}

std::size_t ShardedKvStore::ShardIndexFor(const std::string& key) const {
  return std::hash<std::string>{}(key) & shard_mask_;
}

std::vector<StatusOr<std::string>> KvStore::MultiGet(
    std::span<const std::string> keys) const {
  std::vector<StatusOr<std::string>> results;
  results.reserve(keys.size());
  for (const std::string& key : keys) results.push_back(Get(key));
  return results;
}

std::vector<StatusOr<std::string>> ShardedKvStore::MultiGet(
    std::span<const std::string> keys) const {
  if (multiget_calls_ != nullptr) multiget_calls_->Increment();
  if (multiget_keys_ != nullptr) {
    multiget_keys_->Increment(static_cast<std::int64_t>(keys.size()));
  }
  std::vector<StatusOr<std::string>> results(
      keys.size(), StatusOr<std::string>(Status::NotFound("not looked up")));
  if (const Status fault = RTREC_FAULT_POINT("kvstore.multiget");
      !fault.ok()) {
    std::fill(results.begin(), results.end(),
              StatusOr<std::string>(fault));
    return results;
  }
  TraceSpan span(multiget_span_);

  // Bucket key indices by shard, then visit each shard's run under one
  // lock acquisition. Sorting (shard, position) pairs groups the keys
  // without a per-shard allocation.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  order.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    order.emplace_back(static_cast<std::uint32_t>(ShardIndexFor(keys[i])),
                       static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());

  std::uint64_t hits = 0;
  std::uint64_t shard_batches = 0;
  for (std::size_t i = 0; i < order.size();) {
    const std::size_t shard_index = order[i].first;
    const Shard& shard = *shards_[shard_index];
    std::shared_lock lock(shard.mu);
    ++shard_batches;
    for (; i < order.size() && order[i].first == shard_index; ++i) {
      const std::size_t key_index = order[i].second;
      auto it = shard.map.find(keys[key_index]);
      if (it == shard.map.end()) {
        results[key_index] = Status::NotFound("key '" + keys[key_index] + "'");
      } else {
        results[key_index] = it->second;
        ++hits;
      }
    }
  }
  if (multiget_hits_ != nullptr) {
    multiget_hits_->Increment(static_cast<std::int64_t>(hits));
  }
  if (multiget_shard_batches_ != nullptr) {
    multiget_shard_batches_->Increment(
        static_cast<std::int64_t>(shard_batches));
  }
  return results;
}

StatusOr<std::string> ShardedKvStore::Get(const std::string& key) const {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.get"));
  TraceSpan span(get_span_);
  if (gets_ != nullptr) gets_->Increment();
  const Shard& shard = ShardFor(key);
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return Status::NotFound("key '" + key + "'");
  }
  if (hits_ != nullptr) hits_->Increment();
  return it->second;
}

Status ShardedKvStore::Put(const std::string& key, std::string value) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.put"));
  TraceSpan span(put_span_);
  if (puts_ != nullptr) puts_->Increment();
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  shard.map[key] = std::move(value);
  return Status::OK();
}

Status ShardedKvStore::Delete(const std::string& key) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.delete"));
  if (deletes_ != nullptr) deletes_->Increment();
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  if (shard.map.erase(key) == 0) {
    return Status::NotFound("key '" + key + "'");
  }
  return Status::OK();
}

bool ShardedKvStore::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::shared_lock lock(shard.mu);
  return shard.map.contains(key);
}

Status ShardedKvStore::Update(const std::string& key,
                              const std::function<void(std::string&)>& fn,
                              bool create_if_missing) {
  RTREC_RETURN_IF_ERROR(RTREC_FAULT_POINT("kvstore.update"));
  TraceSpan span(update_span_);
  Shard& shard = ShardFor(key);
  std::unique_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    if (!create_if_missing) return Status::NotFound("key '" + key + "'");
    it = shard.map.emplace(key, std::string()).first;
  }
  fn(it->second);
  return Status::OK();
}

std::size_t ShardedKvStore::Size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void ShardedKvStore::ForEach(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    for (const auto& [key, value] : shard->map) fn(key, value);
  }
}

}  // namespace rtrec
