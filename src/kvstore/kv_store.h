#ifndef RTREC_KVSTORE_KV_STORE_H_
#define RTREC_KVSTORE_KV_STORE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"

namespace rtrec {

/// Interface of the distributed memory-based key-value storage the paper's
/// topology relies on (Section 5.1): vectors, user histories and similar
/// video lists are all addressed by key, and operations on distinct keys
/// are independent, which is what lets the Storm bolts scale.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Returns the value stored under `key`, or NotFound.
  virtual StatusOr<std::string> Get(const std::string& key) const = 0;

  /// Batched Get: returns one result per key, aligned with `keys`. The
  /// base implementation loops over Get; implementations with internal
  /// partitioning override it to amortize per-key overhead (one lock
  /// acquisition per partition instead of per key — the paper's
  /// "VectorsGet" batching, Fig. 1).
  virtual std::vector<StatusOr<std::string>> MultiGet(
      std::span<const std::string> keys) const;

  /// Stores `value` under `key`, overwriting any previous value.
  virtual Status Put(const std::string& key, std::string value) = 0;

  /// Removes `key`. Returns NotFound if absent.
  virtual Status Delete(const std::string& key) = 0;

  /// True iff `key` is present.
  virtual bool Contains(const std::string& key) const = 0;

  /// Atomically applies `fn` to the value under `key` (creating it from an
  /// empty string if absent when `create_if_missing`). The mutation is
  /// performed under the key's shard lock, giving per-key read-modify-write
  /// atomicity — the property the paper obtains via fields grouping.
  virtual Status Update(const std::string& key,
                        const std::function<void(std::string&)>& fn,
                        bool create_if_missing) = 0;

  /// Number of stored keys.
  virtual std::size_t Size() const = 0;
};

/// Options for ShardedKvStore.
struct ShardedKvStoreOptions {
  /// Number of lock-striped shards; rounded up to a power of two. Models
  /// the data partitions of the distributed store.
  std::size_t num_shards = 16;

  /// Optional registry for get/put/hit counters (nullptr disables).
  MetricsRegistry* metrics = nullptr;

  /// Prefix for metric names, e.g. "kvstore.".
  std::string metrics_prefix = "kvstore.";
};

/// In-memory hash-sharded implementation of KvStore with reader-writer
/// striped locking. Thread-safe. Simulates the production distributed KV
/// store on a single node; shard count models partition count.
class ShardedKvStore : public KvStore {
 public:
  explicit ShardedKvStore(ShardedKvStoreOptions options = {});

  StatusOr<std::string> Get(const std::string& key) const override;
  /// Shard-grouped batch read: keys are bucketed by shard and each shard
  /// lock is taken exactly once, so an N-key batch costs
  /// O(distinct shards) lock acquisitions instead of N.
  std::vector<StatusOr<std::string>> MultiGet(
      std::span<const std::string> keys) const override;
  Status Put(const std::string& key, std::string value) override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  Status Update(const std::string& key,
                const std::function<void(std::string&)>& fn,
                bool create_if_missing) override;
  std::size_t Size() const override;

  /// Visits every (key, value) pair. The callback must not reenter the
  /// store. Iteration locks one shard at a time, so it observes a
  /// per-shard-consistent snapshot.
  void ForEach(
      const std::function<void(const std::string&, const std::string&)>& fn)
      const;

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::string> map;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  std::size_t ShardIndexFor(const std::string& key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_;
  Counter* gets_ = nullptr;
  Counter* hits_ = nullptr;
  Counter* puts_ = nullptr;
  Counter* deletes_ = nullptr;
  // MultiGet instrumentation: calls, total keys requested, keys found,
  // and shard locks taken (vs. `keys` had each key gone through Get).
  Counter* multiget_calls_ = nullptr;
  Counter* multiget_keys_ = nullptr;
  Counter* multiget_hits_ = nullptr;
  Counter* multiget_shard_batches_ = nullptr;
  // Trace spans ("trace.stage.<prefix>get.us", …): recorded only when
  // the calling thread carries a sampled trace (see common/trace.h), so
  // a traced tuple's KV time is attributed separately from bolt compute.
  Histogram* get_span_ = nullptr;
  Histogram* put_span_ = nullptr;
  Histogram* update_span_ = nullptr;
  Histogram* multiget_span_ = nullptr;
};

}  // namespace rtrec

#endif  // RTREC_KVSTORE_KV_STORE_H_
