#ifndef RTREC_KVSTORE_QUANTIZATION_H_
#define RTREC_KVSTORE_QUANTIZATION_H_

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rtrec {

/// Storage width of one latent factor in the FactorStore. The serving
/// and training APIs always speak float32 `FactorEntry`s; the store
/// quantizes on write and dequantizes on read, so precision is purely a
/// memory/accuracy trade:
///
///  - kFloat32 — lossless, 4 bytes/factor (the pre-quantization format);
///  - kFloat16 — IEEE 754 half, 2 bytes/factor, ~3 decimal digits.
///    Round-trips through float32 exactly, so repeated read-modify-write
///    cycles never drift beyond the initial rounding;
///  - kInt8   — symmetric per-vector scaling (scale = max|x| / 127),
///    1 byte/factor. The max element always maps to ±127, which makes
///    dequantize→requantize a fixed point — stable under read-modify-
///    write — but the resolution (max|x|/127 per step) is coarse enough
///    that tiny SGD updates can be rounded away; the bench ledger's
///    recall guardrail is the honest check.
enum class FactorPrecision : std::uint8_t {
  kFloat32 = 0,
  kFloat16 = 1,
  kInt8 = 2,
};

inline const char* FactorPrecisionToString(FactorPrecision precision) {
  switch (precision) {
    case FactorPrecision::kFloat32:
      return "float32";
    case FactorPrecision::kFloat16:
      return "float16";
    case FactorPrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

/// Bytes per factor under `precision`.
inline std::size_t FactorWidthBytes(FactorPrecision precision) {
  switch (precision) {
    case FactorPrecision::kFloat32:
      return 4;
    case FactorPrecision::kFloat16:
      return 2;
    case FactorPrecision::kInt8:
      return 1;
  }
  return 4;
}

/// float32 -> IEEE 754 binary16, round-to-nearest-even, with subnormal
/// and Inf/NaN handling. Values above the half range round to ±Inf.
inline std::uint16_t EncodeHalf(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t biased_exp = (f >> 23) & 0xFFu;
  std::uint32_t mant = f & 0x7FFFFFu;
  if (biased_exp == 0xFFu) {  // Inf / NaN propagate (NaN keeps a payload bit).
    return sign | 0x7C00u | (mant != 0 ? 0x0200u : 0u);
  }
  const std::int32_t exp = static_cast<std::int32_t>(biased_exp) - 127 + 15;
  if (exp >= 0x1F) return sign | 0x7C00u;  // Overflow -> Inf.
  if (exp <= 0) {
    // Half subnormal (or underflow to zero): shift the 24-bit significand
    // down so the result is mant_h * 2^-24, rounding to nearest-even.
    if (exp < -10) return sign;
    mant |= 0x800000u;  // Implicit leading bit.
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    // A carry out of the subnormal range lands on exponent 1 — correct.
    return sign | static_cast<std::uint16_t>(half_mant);
  }
  std::uint32_t half =
      (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  if (half >= 0x7C00u) return sign | 0x7C00u;  // Rounded up to Inf.
  return sign | static_cast<std::uint16_t>(half);
}

/// IEEE 754 binary16 -> float32 (exact; every half is representable).
inline float DecodeHalf(std::uint16_t half) {
  const std::uint32_t sign =
      static_cast<std::uint32_t>(half & 0x8000u) << 16;
  std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // ±0.
    } else {
      // Normalize the subnormal: value = mant * 2^-24.
      std::uint32_t e = 113;  // 127 - 14, pre-decrement for the first shift.
      while (!(mant & 0x400u)) {
        mant <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((mant & 0x3FFu) << 13);
    }
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

/// Quantizes `n` floats into `out` (n * FactorWidthBytes(precision)
/// bytes). For kInt8 the symmetric per-vector scale (max|x| / 127) is
/// written to `*scale`; other precisions set it to 0. NaN/Inf inputs are
/// the caller's bug — training keeps factors finite.
inline void QuantizeVector(FactorPrecision precision, const float* in,
                           std::size_t n, std::byte* out, float* scale) {
  *scale = 0.0f;
  switch (precision) {
    case FactorPrecision::kFloat32:
      std::memcpy(out, in, n * sizeof(float));
      return;
    case FactorPrecision::kFloat16: {
      auto* half = reinterpret_cast<std::uint16_t*>(out);
      for (std::size_t i = 0; i < n; ++i) half[i] = EncodeHalf(in[i]);
      return;
    }
    case FactorPrecision::kInt8: {
      float max_abs = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        max_abs = std::max(max_abs, std::fabs(in[i]));
      }
      auto* q = reinterpret_cast<std::int8_t*>(out);
      if (max_abs == 0.0f) {
        std::memset(out, 0, n);
        return;
      }
      const float s = max_abs / 127.0f;
      *scale = s;
      const float inv = 127.0f / max_abs;
      for (std::size_t i = 0; i < n; ++i) {
        const float v = std::nearbyintf(in[i] * inv);
        q[i] = static_cast<std::int8_t>(std::clamp(v, -127.0f, 127.0f));
      }
      return;
    }
  }
}

/// Inverse of QuantizeVector; `scale` must be the value it produced.
inline void DequantizeVector(FactorPrecision precision, const std::byte* in,
                             std::size_t n, float scale, float* out) {
  switch (precision) {
    case FactorPrecision::kFloat32:
      std::memcpy(out, in, n * sizeof(float));
      return;
    case FactorPrecision::kFloat16: {
      const auto* half = reinterpret_cast<const std::uint16_t*>(in);
      for (std::size_t i = 0; i < n; ++i) out[i] = DecodeHalf(half[i]);
      return;
    }
    case FactorPrecision::kInt8: {
      const auto* q = reinterpret_cast<const std::int8_t*>(in);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(q[i]) * scale;
      }
      return;
    }
  }
}

}  // namespace rtrec

#endif  // RTREC_KVSTORE_QUANTIZATION_H_
