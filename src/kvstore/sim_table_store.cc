#include "kvstore/sim_table_store.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace rtrec {

namespace {
/// Slab chunks target this size so the allocator amortizes to one malloc
/// per ~64KB of table instead of one per video.
constexpr std::size_t kChunkTargetBytes = 64 * 1024;
}  // namespace

SimTableStore::SimTableStore() : SimTableStore(Options{}) {}

SimTableStore::SimTableStore(Options options) : options_(options) {
  small_slots_ = std::min<std::size_t>(8, std::max<std::size_t>(1, options_.top_k));
  const std::size_t n =
      std::bit_ceil(std::max<std::size_t>(1, options_.num_shards));
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  mask_ = n - 1;
}

SimilarVideo* SimTableStore::Arena::Alloc(std::size_t slots,
                                          std::vector<SimilarVideo*>& free) {
  if (!free.empty()) {
    SimilarVideo* slab = free.back();
    free.pop_back();
    return slab;
  }
  const std::size_t slabs_per_chunk = std::max<std::size_t>(
      1, kChunkTargetBytes / (slots * sizeof(SimilarVideo)));
  auto chunk = std::make_unique<SimilarVideo[]>(slabs_per_chunk * slots);
  SimilarVideo* base = chunk.get();
  bytes += slabs_per_chunk * slots * sizeof(SimilarVideo);
  chunks.push_back(std::move(chunk));
  // Hand out slab 0; the rest start on the free list.
  free.reserve(free.size() + slabs_per_chunk - 1);
  for (std::size_t i = slabs_per_chunk; i-- > 1;) {
    free.push_back(base + i * slots);
  }
  return base;
}

bool SimTableStore::EnsureRoom(Stripe& stripe, List& list) {
  if (list.size < list.capacity) return true;
  if (list.capacity >= options_.top_k) return false;
  if (list.slots == nullptr) {
    list.slots = stripe.arena.Alloc(small_slots_, stripe.arena.free_small);
    list.capacity = static_cast<std::uint32_t>(small_slots_);
    return true;
  }
  // Promote small → full: copy live entries, recycle the small slab.
  SimilarVideo* full =
      stripe.arena.Alloc(options_.top_k, stripe.arena.free_full);
  std::memcpy(full, list.slots, list.size * sizeof(SimilarVideo));
  stripe.arena.free_small.push_back(list.slots);
  list.slots = full;
  list.capacity = static_cast<std::uint32_t>(options_.top_k);
  return true;
}

double SimTableStore::Decay(double sim, Timestamp update_time,
                            Timestamp now) const {
  const double dt = static_cast<double>(now - update_time);
  if (dt <= 0) return sim;  // Future-stamped entries do not grow.
  return sim * std::exp2(-dt / options_.xi_millis);
}

void SimTableStore::Update(VideoId a, VideoId b, double sim, Timestamp now) {
  if (a == b) return;
  UpdateOneDirection(a, b, sim, now);
  UpdateOneDirection(b, a, sim, now);
}

void SimTableStore::UpdateOneDirection(VideoId from, VideoId to, double sim,
                                       Timestamp now) {
  Stripe& stripe = StripeFor(from);
  std::lock_guard<std::mutex> lock(stripe.mu);
  List& list = stripe.map[from];

  // Replace an existing entry for `to`, pruning dead entries on the way.
  bool replaced = false;
  SimilarVideo* entries = list.slots;
  for (std::uint32_t i = 0; i < list.size;) {
    if (entries[i].video == to) {
      entries[i].similarity = sim;
      entries[i].update_time = now;
      replaced = true;
      ++i;
    } else if (Decay(entries[i].similarity, entries[i].update_time, now) <
               options_.prune_threshold) {
      entries[i] = entries[list.size - 1];
      --list.size;
    } else {
      ++i;
    }
  }
  if (replaced) return;

  if (EnsureRoom(stripe, list)) {
    list.slots[list.size++] = SimilarVideo{to, sim, now};
    return;
  }
  // At full capacity: evict the weakest (by decayed similarity) if the
  // newcomer beats it.
  entries = list.slots;
  std::size_t weakest = 0;
  double weakest_sim =
      Decay(entries[0].similarity, entries[0].update_time, now);
  for (std::size_t i = 1; i < list.size; ++i) {
    const double s = Decay(entries[i].similarity, entries[i].update_time, now);
    if (s < weakest_sim) {
      weakest_sim = s;
      weakest = i;
    }
  }
  if (sim > weakest_sim) {
    entries[weakest] = SimilarVideo{to, sim, now};
  }
}

std::vector<SimilarVideo> SimTableStore::Query(VideoId video, Timestamp now,
                                               std::size_t limit) const {
  const Stripe& stripe = StripeFor(video);
  std::vector<SimilarVideo> decayed;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.map.find(video);
    if (it == stripe.map.end()) return {};
    const List& list = it->second;
    decayed.reserve(list.size);
    for (std::uint32_t i = 0; i < list.size; ++i) {
      const SimilarVideo& e = list.slots[i];
      const double s = Decay(e.similarity, e.update_time, now);
      if (s >= options_.prune_threshold) {
        decayed.push_back(SimilarVideo{e.video, s, e.update_time});
      }
    }
  }
  std::sort(decayed.begin(), decayed.end(),
            [](const SimilarVideo& x, const SimilarVideo& y) {
              return x.similarity > y.similarity;
            });
  if (decayed.size() > limit) decayed.resize(limit);
  return decayed;
}

double SimTableStore::GetDecayedSimilarity(VideoId a, VideoId b,
                                           Timestamp now) const {
  const Stripe& stripe = StripeFor(a);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(a);
  if (it == stripe.map.end()) return 0.0;
  const List& list = it->second;
  for (std::uint32_t i = 0; i < list.size; ++i) {
    const SimilarVideo& e = list.slots[i];
    if (e.video == b) {
      const double s = Decay(e.similarity, e.update_time, now);
      return s < options_.prune_threshold ? 0.0 : s;
    }
  }
  return 0.0;
}

void SimTableStore::ForEachList(
    const std::function<void(VideoId, std::span<const SimilarVideo>)>& fn)
    const {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [id, list] : stripe->map) {
      fn(id, std::span<const SimilarVideo>(list.slots, list.size));
    }
  }
}

void SimTableStore::LoadList(VideoId video,
                             std::vector<SimilarVideo> entries) {
  if (entries.size() > options_.top_k) entries.resize(options_.top_k);
  Stripe& stripe = StripeFor(video);
  std::lock_guard<std::mutex> lock(stripe.mu);
  List& list = stripe.map[video];
  list.size = 0;
  while (list.capacity < entries.size()) {
    if (!EnsureRoom(stripe, list)) break;
    // EnsureRoom grows small→full in one promotion; loop covers the
    // empty→small→full ladder.
    list.size = list.capacity;  // Force the next promotion step if needed.
  }
  list.size = static_cast<std::uint32_t>(
      std::min<std::size_t>(entries.size(), list.capacity));
  if (list.size > 0) {
    std::memcpy(list.slots, entries.data(),
                list.size * sizeof(SimilarVideo));
  }
}

std::size_t SimTableStore::ArenaBytes() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->arena.bytes;
  }
  return total;
}

std::size_t SimTableStore::NumVideos() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [id, list] : stripe->map) {
      if (list.size > 0) ++total;
    }
  }
  return total;
}

}  // namespace rtrec
