#include "kvstore/sim_table_store.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rtrec {

SimTableStore::SimTableStore() : SimTableStore(Options{}) {}

SimTableStore::SimTableStore(Options options) : options_(options) {
  const std::size_t n =
      std::bit_ceil(std::max<std::size_t>(1, options_.num_shards));
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  mask_ = n - 1;
}

double SimTableStore::Decay(double sim, Timestamp update_time,
                            Timestamp now) const {
  const double dt = static_cast<double>(now - update_time);
  if (dt <= 0) return sim;  // Future-stamped entries do not grow.
  return sim * std::exp2(-dt / options_.xi_millis);
}

void SimTableStore::Update(VideoId a, VideoId b, double sim, Timestamp now) {
  if (a == b) return;
  UpdateOneDirection(a, b, sim, now);
  UpdateOneDirection(b, a, sim, now);
}

void SimTableStore::UpdateOneDirection(VideoId from, VideoId to, double sim,
                                       Timestamp now) {
  Stripe& stripe = StripeFor(from);
  std::lock_guard<std::mutex> lock(stripe.mu);
  List& list = stripe.map[from];

  // Replace an existing entry for `to`, pruning dead entries on the way.
  bool replaced = false;
  auto& entries = list.entries;
  for (std::size_t i = 0; i < entries.size();) {
    if (entries[i].video == to) {
      entries[i].similarity = sim;
      entries[i].update_time = now;
      replaced = true;
      ++i;
    } else if (Decay(entries[i].similarity, entries[i].update_time, now) <
               options_.prune_threshold) {
      entries[i] = entries.back();
      entries.pop_back();
    } else {
      ++i;
    }
  }
  if (replaced) return;

  if (entries.size() < options_.top_k) {
    entries.push_back(SimilarVideo{to, sim, now});
    return;
  }
  // Evict the weakest (by decayed similarity) if the newcomer beats it.
  std::size_t weakest = 0;
  double weakest_sim =
      Decay(entries[0].similarity, entries[0].update_time, now);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const double s = Decay(entries[i].similarity, entries[i].update_time, now);
    if (s < weakest_sim) {
      weakest_sim = s;
      weakest = i;
    }
  }
  if (sim > weakest_sim) {
    entries[weakest] = SimilarVideo{to, sim, now};
  }
}

std::vector<SimilarVideo> SimTableStore::Query(VideoId video, Timestamp now,
                                               std::size_t limit) const {
  const Stripe& stripe = StripeFor(video);
  std::vector<SimilarVideo> decayed;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.map.find(video);
    if (it == stripe.map.end()) return {};
    decayed.reserve(it->second.entries.size());
    for (const SimilarVideo& e : it->second.entries) {
      const double s = Decay(e.similarity, e.update_time, now);
      if (s >= options_.prune_threshold) {
        decayed.push_back(SimilarVideo{e.video, s, e.update_time});
      }
    }
  }
  std::sort(decayed.begin(), decayed.end(),
            [](const SimilarVideo& x, const SimilarVideo& y) {
              return x.similarity > y.similarity;
            });
  if (decayed.size() > limit) decayed.resize(limit);
  return decayed;
}

double SimTableStore::GetDecayedSimilarity(VideoId a, VideoId b,
                                           Timestamp now) const {
  const Stripe& stripe = StripeFor(a);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(a);
  if (it == stripe.map.end()) return 0.0;
  for (const SimilarVideo& e : it->second.entries) {
    if (e.video == b) {
      const double s = Decay(e.similarity, e.update_time, now);
      return s < options_.prune_threshold ? 0.0 : s;
    }
  }
  return 0.0;
}

void SimTableStore::ForEachList(
    const std::function<void(VideoId, const std::vector<SimilarVideo>&)>& fn)
    const {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [id, list] : stripe->map) fn(id, list.entries);
  }
}

void SimTableStore::LoadList(VideoId video,
                             std::vector<SimilarVideo> entries) {
  if (entries.size() > options_.top_k) entries.resize(options_.top_k);
  Stripe& stripe = StripeFor(video);
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.map[video].entries = std::move(entries);
}

std::size_t SimTableStore::NumVideos() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [id, list] : stripe->map) {
      if (!list.entries.empty()) ++total;
    }
  }
  return total;
}

}  // namespace rtrec
