#ifndef RTREC_KVSTORE_SIM_TABLE_STORE_H_
#define RTREC_KVSTORE_SIM_TABLE_STORE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtrec {

/// One neighbour in a video's similar-video list: the fused similarity
/// sim_ij = (1-β)·s1 + β·s2 *as of `update_time`* (Eq. 12). The time-decay
/// factor d_ij = 2^(-Δt/ξ) (Eq. 11) is applied at read time from
/// `update_time`, so similarity fades continuously without background
/// sweeps.
struct SimilarVideo {
  VideoId video = 0;
  double similarity = 0.0;
  Timestamp update_time = 0;
};

/// The similar-video tables of Section 4: for each video, the top-K most
/// relevant videos. Maintained incrementally by the ItemPairSim /
/// ResultStorage bolts and queried on every recommendation request to
/// select candidates. Hash-sharded; each per-video list is bounded.
class SimTableStore {
 public:
  struct Options {
    /// Per-video list length K (candidate pool per seed).
    std::size_t top_k = 50;
    /// Half-life ξ of the time decay, in milliseconds (Eq. 11).
    double xi_millis = 3.0 * kMillisPerDay;
    /// Entries whose decayed similarity drops below this are pruned on
    /// touch.
    double prune_threshold = 1e-4;
    /// Lock-stripe count (rounded up to a power of two).
    std::size_t num_shards = 16;
  };

  /// Constructs with default options.
  SimTableStore();
  explicit SimTableStore(Options options);

  SimTableStore(const SimTableStore&) = delete;
  SimTableStore& operator=(const SimTableStore&) = delete;

  /// Records that the pair (a, b) has fused similarity `sim` as of `now`.
  /// Updates both directions (b appears in a's list and vice versa).
  /// An existing entry for the pair is replaced — per the paper, the
  /// similarity of a pair is recomputed from scratch whenever a new action
  /// touches it, and its decay clock restarts.
  void Update(VideoId a, VideoId b, double sim, Timestamp now);

  /// Returns up to `limit` neighbours of `video`, ranked by decayed
  /// similarity at `now`, i.e. sim · 2^(-(now - update_time)/ξ).
  /// Prunes entries that decayed below the threshold.
  std::vector<SimilarVideo> Query(VideoId video, Timestamp now,
                                  std::size_t limit) const;

  /// Decayed similarity of the (a, b) pair at `now`, or 0 if unknown.
  double GetDecayedSimilarity(VideoId a, VideoId b, Timestamp now) const;

  /// Number of videos having a non-empty list.
  std::size_t NumVideos() const;

  /// Visits every per-video directed list (checkpoint save path). Locks
  /// one stripe at a time.
  void ForEachList(const std::function<void(
                       VideoId, const std::vector<SimilarVideo>&)>& fn) const;

  /// Replaces the directed list of `video` wholesale (checkpoint load
  /// path). Entries beyond top_k are dropped.
  void LoadList(VideoId video, std::vector<SimilarVideo> entries);

  const Options& options() const { return options_; }

 private:
  struct List {
    std::vector<SimilarVideo> entries;  // Unordered; ranked at query time.
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<VideoId, List> map;
  };

  void UpdateOneDirection(VideoId from, VideoId to, double sim,
                          Timestamp now);
  double Decay(double sim, Timestamp update_time, Timestamp now) const;

  Stripe& StripeFor(VideoId v) { return *stripes_[MixHash64(v) & mask_]; }
  const Stripe& StripeFor(VideoId v) const {
    return *stripes_[MixHash64(v) & mask_];
  }

  Options options_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

}  // namespace rtrec

#endif  // RTREC_KVSTORE_SIM_TABLE_STORE_H_
