#ifndef RTREC_KVSTORE_SIM_TABLE_STORE_H_
#define RTREC_KVSTORE_SIM_TABLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtrec {

/// One neighbour in a video's similar-video list: the fused similarity
/// sim_ij = (1-β)·s1 + β·s2 *as of `update_time`* (Eq. 12). The time-decay
/// factor d_ij = 2^(-Δt/ξ) (Eq. 11) is applied at read time from
/// `update_time`, so similarity fades continuously without background
/// sweeps.
struct SimilarVideo {
  VideoId video = 0;
  double similarity = 0.0;
  Timestamp update_time = 0;
};

/// The similar-video tables of Section 4: for each video, the top-K most
/// relevant videos. Maintained incrementally by the ItemPairSim /
/// ResultStorage bolts and queried on every recommendation request to
/// select candidates. Hash-sharded; each per-video list is bounded.
///
/// Lists live in per-stripe slab arenas rather than one heap vector per
/// video: a list occupies a fixed-capacity slab carved from 64KB-class
/// chunks, starting in a small slab (8 slots) and promoted to a full
/// top_k slab the first time it fills. Slabs are recycled through per-
/// class free lists. At million-video scale this removes the per-list
/// malloc plus the 1→2→4→… realloc ladder, keeps neighbours contiguous,
/// and makes table memory a closed-form number (ArenaBytes) instead of
/// allocator guesswork.
class SimTableStore {
 public:
  struct Options {
    /// Per-video list length K (candidate pool per seed).
    std::size_t top_k = 50;
    /// Half-life ξ of the time decay, in milliseconds (Eq. 11).
    double xi_millis = 3.0 * kMillisPerDay;
    /// Entries whose decayed similarity drops below this are pruned on
    /// touch.
    double prune_threshold = 1e-4;
    /// Lock-stripe count (rounded up to a power of two).
    std::size_t num_shards = 16;
  };

  /// Constructs with default options.
  SimTableStore();
  explicit SimTableStore(Options options);

  SimTableStore(const SimTableStore&) = delete;
  SimTableStore& operator=(const SimTableStore&) = delete;

  /// Records that the pair (a, b) has fused similarity `sim` as of `now`.
  /// Updates both directions (b appears in a's list and vice versa).
  /// An existing entry for the pair is replaced — per the paper, the
  /// similarity of a pair is recomputed from scratch whenever a new action
  /// touches it, and its decay clock restarts.
  void Update(VideoId a, VideoId b, double sim, Timestamp now);

  /// Returns up to `limit` neighbours of `video`, ranked by decayed
  /// similarity at `now`, i.e. sim · 2^(-(now - update_time)/ξ).
  /// Prunes entries that decayed below the threshold.
  std::vector<SimilarVideo> Query(VideoId video, Timestamp now,
                                  std::size_t limit) const;

  /// Decayed similarity of the (a, b) pair at `now`, or 0 if unknown.
  double GetDecayedSimilarity(VideoId a, VideoId b, Timestamp now) const;

  /// Number of videos having a non-empty list.
  std::size_t NumVideos() const;

  /// Visits every per-video directed list (checkpoint save path). Locks
  /// one stripe at a time; the span borrows the arena slab and is valid
  /// only inside the callback.
  void ForEachList(const std::function<void(
                       VideoId, std::span<const SimilarVideo>)>& fn) const;

  /// Replaces the directed list of `video` wholesale (checkpoint load
  /// path). Entries beyond top_k are dropped.
  void LoadList(VideoId video, std::vector<SimilarVideo> entries);

  /// Bytes of slab-arena chunk memory across all stripes (allocated
  /// capacity, including free-listed slabs; excludes the per-video hash
  /// map itself).
  std::size_t ArenaBytes() const;

  const Options& options() const { return options_; }

 private:
  /// A list is a borrowed slab of `capacity` slots (small class first,
  /// full top_k class after promotion) with `size` of them live. Entries
  /// are unordered; ranking happens at query time.
  struct List {
    SimilarVideo* slots = nullptr;
    std::uint32_t size = 0;
    std::uint32_t capacity = 0;
  };

  /// Per-stripe slab allocator, guarded by the stripe mutex. Chunks are
  /// never returned to the OS; released slabs recycle via free lists.
  struct Arena {
    std::vector<std::unique_ptr<SimilarVideo[]>> chunks;
    std::vector<SimilarVideo*> free_small;
    std::vector<SimilarVideo*> free_full;
    std::size_t bytes = 0;

    SimilarVideo* Alloc(std::size_t slots, std::vector<SimilarVideo*>& free);
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<VideoId, List> map;
    Arena arena;
  };

  /// Grows `list` to hold one more entry, allocating its first small
  /// slab or promoting small→full as needed. Caller holds the stripe
  /// lock. Returns false when the list is already at top_k capacity.
  bool EnsureRoom(Stripe& stripe, List& list);

  void UpdateOneDirection(VideoId from, VideoId to, double sim,
                          Timestamp now);
  double Decay(double sim, Timestamp update_time, Timestamp now) const;

  Stripe& StripeFor(VideoId v) { return *stripes_[MixHash64(v) & mask_]; }
  const Stripe& StripeFor(VideoId v) const {
    return *stripes_[MixHash64(v) & mask_];
  }

  Options options_;
  /// Small-class slab width: full lists are rare in sparse catalogs, so
  /// new lists start at min(8, top_k) slots.
  std::size_t small_slots_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t mask_ = 0;
};

}  // namespace rtrec

#endif  // RTREC_KVSTORE_SIM_TABLE_STORE_H_
