#include "net/rec_client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/random.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace rtrec {
namespace {

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::chrono::steady_clock::time_point TimePointFromMillis(std::int64_t ms) {
  return std::chrono::steady_clock::time_point(std::chrono::milliseconds(ms));
}

// Per-thread source for retry jitter, seeded distinctly per thread so
// clients created together don't retry in lockstep.
std::uint64_t JitterMillis(std::int64_t bound_ms) {
  if (bound_ms <= 0) return 0;
  static std::atomic<std::uint64_t> seed_counter{0};
  thread_local Rng rng(0x9E3779B97F4A7C15ull *
                       (seed_counter.fetch_add(1, std::memory_order_relaxed) +
                        1));
  return rng.NextUint64(static_cast<std::uint64_t>(bound_ms) + 1);
}

}  // namespace

RecClient::RecClient(Options options)
    : options_(std::move(options)), decoder_(options_.max_frame_bytes) {
  if (options_.metrics != nullptr) {
    retries_ = options_.metrics->GetCounter("client.retries");
    stale_counter_ = options_.metrics->GetCounter("client.stale_responses");
  }
}

RecClient::~RecClient() { Disconnect(); }

Status RecClient::Connect() {
  // The connect path gets the same retry treatment as requests: a
  // refused connect while the server restarts backs off and tries again
  // until the deadline, instead of surfacing the first ECONNREFUSED.
  const std::int64_t give_up_ms = SteadyMillis() + options_.total_deadline_ms;
  Status status;
  {
    std::unique_lock<std::mutex> lock(mu_);
    status = EnsureConnectedLocked(lock, options_.connect_timeout_ms);
  }
  std::int64_t backoff_ms =
      std::max<std::int64_t>(1, options_.retry_backoff_initial_ms);
  for (int attempt = 0;
       !status.ok() && options_.auto_reconnect &&
       (options_.max_retries < 0 || attempt < options_.max_retries);
       ++attempt) {
    const std::int64_t remaining_ms = give_up_ms - SteadyMillis();
    if (remaining_ms <= 0) break;
    const std::int64_t sleep_ms = std::min<std::int64_t>(
        remaining_ms,
        backoff_ms + static_cast<std::int64_t>(JitterMillis(backoff_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::int64_t>(
        backoff_ms * 2,
        std::max<std::int64_t>(1, options_.retry_backoff_max_ms));
    if (retries_ != nullptr) retries_->Increment();
    std::unique_lock<std::mutex> lock(mu_);
    status = EnsureConnectedLocked(lock, options_.connect_timeout_ms);
  }
  return status;
}

void RecClient::Disconnect() {
  std::unique_lock<std::mutex> lock(mu_);
  DisconnectLocked(lock);
}

void RecClient::DisconnectLocked(std::unique_lock<std::mutex>& lock) {
  if (state_ == ConnState::kUp) {
    FailPendingLocked(Status::Unavailable("client disconnected"));
  }
  CleanupBrokenLocked(lock);
}

bool RecClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == ConnState::kUp;
}

std::uint8_t RecClient::negotiated_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == ConnState::kUp ? negotiated_version_ : 0;
}

bool RecClient::trace_propagation_negotiated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == ConnState::kUp &&
         (negotiated_features_ & kFeatureTracePropagation) != 0;
}

bool RecClient::Healthy(int deadline_ms) {
  if (deadline_ms <= 0) deadline_ms = 1;
  // Single attempt, hard budget: a probe's job is a bounded-time
  // verdict, so the retry policy and the Options timeouts deliberately
  // do not apply. Connect and round-trip are each bounded by
  // deadline_ms (so a cold probe is bounded by 2x).
  StatusOr<Frame> frame = CallOnce(
      [](std::uint64_t id) { return EncodePingRequest(id); }, deadline_ms,
      deadline_ms);
  return frame.ok() && frame->type == MessageType::kPongResponse;
}

// ---------------------------------------------------------------------------
// Connection lifecycle. state_ moves kDown -> kUp (OpenTransportLocked),
// kUp -> kBroken (transport failure, reported by whichever side saw it
// first), kBroken -> kDown (CleanupBrokenLocked joins the reader and
// resets). All transitions happen under mu_.

Status RecClient::EnsureConnectedLocked(std::unique_lock<std::mutex>& lock,
                                        int connect_timeout_ms) {
  while (true) {
    switch (state_) {
      case ConnState::kUp:
        return Status::OK();
      case ConnState::kBroken:
        CleanupBrokenLocked(lock);
        continue;  // Re-check: another thread may have reconnected.
      case ConnState::kDown:
        if (cleanup_in_progress_) {
          cv_.wait(lock);
          continue;
        }
        return OpenTransportLocked(connect_timeout_ms);
    }
  }
}

Status RecClient::OpenTransportLocked(int timeout_ms) {
  const std::int64_t deadline_ms =
      SteadyMillis() + std::max(1, timeout_ms);
  std::optional<std::string> shm_name = ParseShmAddress(options_.host);
  if (shm_name.has_value()) {
    ShmClient::Options shm_options;
    shm_options.max_frame_bytes = options_.max_frame_bytes;
    shm_options.metrics = options_.metrics;
    auto attached = ShmClient::Attach(*shm_name, shm_options);
    if (!attached.ok()) return attached.status();
    shm_ = std::move(*attached);
  } else {
    auto fd = ConnectTcp(options_.host, options_.port, timeout_ms);
    if (!fd.ok()) return fd.status();
    fd_ = std::move(*fd);
  }
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  Status handshake = HandshakeLocked(deadline_ms);
  if (!handshake.ok()) {
    fd_.Reset();
    shm_.reset();
    return handshake;
  }
  ++conn_epoch_;
  reader_stop_.store(false, std::memory_order_release);
  const std::uint64_t epoch = conn_epoch_;
  reader_ = std::thread([this, epoch] { ReaderLoop(epoch); });
  state_ = ConnState::kUp;
  return Status::OK();
}

Status RecClient::HandshakeLocked(std::int64_t deadline_ms) {
  negotiated_version_ = kWireVersion;
  negotiated_features_ = 0;
  const int offer = std::clamp(options_.max_wire_version, 1,
                               static_cast<int>(kMaxWireVersion));
  if (offer < kWireVersionV2) return Status::OK();  // Pure v1 by choice.
  const std::uint64_t id = next_request_id_++;
  HelloRequest hello;
  hello.min_version = kWireVersion;
  hello.max_version = static_cast<std::uint8_t>(offer);
  hello.features = kFeatureTracePropagation;
  RTREC_RETURN_IF_ERROR(SendLocked(EncodeHelloRequest(id, hello), deadline_ms));
  StatusOr<Frame> frame = ReadFrameLocked(deadline_ms);
  if (!frame.ok()) return frame.status();
  if (frame->request_id != id) {
    // A fresh stream owes us exactly one response; anything else means
    // the peer is not speaking this protocol.
    return Status::Internal("out-of-order response during hello handshake");
  }
  if (frame->type == MessageType::kHelloResponse) {
    auto reply = DecodeHelloResponse(*frame);
    if (!reply.ok()) return reply.status();
    if (reply->version > offer) {
      return Status::Internal(
          StringPrintf("server negotiated v%u above our offer v%d",
                       reply->version, offer));
    }
    negotiated_version_ = reply->version;
    // Only feature bits we offered AND the server echoed are live; a
    // server acks trace propagation only on a v2 connection.
    negotiated_features_ = reply->features & hello.features;
    return Status::OK();
  }
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    if (error->code == WireError::kUnknownType ||
        error->code == WireError::kBadVersion) {
      // A v1 server does not know Hello and says so; that IS the
      // negotiation result (docs/WIRE_PROTOCOL.md §5): stay on v1.
      negotiated_version_ = kWireVersion;
      return Status::OK();
    }
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to hello",
                                       MessageTypeToString(frame->type)));
}

void RecClient::CleanupBrokenLocked(std::unique_lock<std::mutex>& lock) {
  while (state_ == ConnState::kBroken) {
    if (cleanup_in_progress_) {
      cv_.wait(lock);
      continue;
    }
    cleanup_in_progress_ = true;
    reader_stop_.store(true, std::memory_order_release);
    // Wake the reader out of its poll so the join below is prompt.
    if (shm_ != nullptr) {
      shm_->ShutdownRead();
    } else if (fd_.valid()) {
      ::shutdown(fd_.get(), SHUT_RDWR);
    }
    std::thread dead = std::move(reader_);
    lock.unlock();  // Never join while holding mu_ — the reader takes it.
    if (dead.joinable()) dead.join();
    lock.lock();
    fd_.Reset();
    shm_.reset();
    decoder_ = FrameDecoder(options_.max_frame_bytes);
    for (auto& [id, waiter] : pending_) {
      waiter->result = Status::Unavailable("connection closed");
      waiter->done = true;
    }
    pending_.clear();
    negotiated_version_ = kWireVersion;
    negotiated_features_ = 0;
    v1_slot_busy_ = false;
    state_ = ConnState::kDown;
    cleanup_in_progress_ = false;
    cv_.notify_all();
  }
}

void RecClient::FailPendingLocked(const Status& status) {
  for (auto& [id, waiter] : pending_) {
    waiter->result = status;
    waiter->done = true;
  }
  pending_.clear();
  if (state_ == ConnState::kUp) state_ = ConnState::kBroken;
  reader_stop_.store(true, std::memory_order_release);
  if (shm_ != nullptr) {
    shm_->ShutdownRead();
  } else if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Reader: one background thread per live connection. It owns the
// receive side of the transport (decoder_/fd_/shm_ reads) and touches
// shared state only through mu_-guarded completion calls.

void RecClient::ReaderLoop(std::uint64_t epoch) {
  while (!reader_stop_.load(std::memory_order_acquire)) {
    StatusOr<Frame> frame = ReadPoll(/*timeout_ms=*/250);
    if (frame.status().IsNotFound()) continue;  // Nothing yet; poll again.
    if (!frame.ok()) {
      FailPending(frame.status(), epoch);
      return;
    }
    CompletePending(std::move(*frame));
  }
  FailPending(Status::Unavailable("client disconnected"), epoch);
}

StatusOr<Frame> RecClient::ReadPoll(int timeout_ms) {
  if (shm_ != nullptr) return shm_->NextFrame(SteadyMillis() + timeout_ms);
  StatusOr<Frame> frame = decoder_.Next();
  if (frame.ok() || !frame.status().IsNotFound()) return frame;
  Status ready = WaitReady(fd_.get(), /*for_read=*/true, timeout_ms);
  if (!ready.ok()) {
    // WaitReady reports a poll timeout as Unavailable; for the reader
    // that just means "nothing yet".
    if (ready.IsUnavailable()) return Status::NotFound("no data yet");
    return ready;
  }
  char buf[64 * 1024];
  ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
  if (n == 0) return Status::Unavailable("server closed the connection");
  if (n < 0) {
    if (errno == EINTR) return Status::NotFound("interrupted");
    return Status::Unavailable(StringPrintf("recv: %s", strerror(errno)));
  }
  decoder_.Append(std::string_view(buf, static_cast<std::size_t>(n)));
  return decoder_.Next();  // NotFound if the frame is still partial.
}

void RecClient::CompletePending(Frame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(frame.request_id);
  if (it == pending_.end()) {
    // Late answer to a timed-out (and possibly retried) request:
    // dropping it is the whole point of retrying under a fresh id.
    stale_responses_.fetch_add(1, std::memory_order_relaxed);
    if (stale_counter_ != nullptr) stale_counter_->Increment();
    return;
  }
  it->second->result = std::move(frame);
  it->second->done = true;
  pending_.erase(it);
  cv_.notify_all();
}

void RecClient::FailPending(const Status& status, std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != conn_epoch_) return;  // A newer connection owns pending_.
  FailPendingLocked(status);
}

// ---------------------------------------------------------------------------
// Call machinery.

StatusOr<Frame> RecClient::Call(const EncodeFn& encode) {
  // Only transport failures are retried (Unavailable/Internal from the
  // socket layer); typed server errors — OVERLOADED included — arrive
  // as OK frames and are never retried here.
  const std::int64_t give_up_ms = SteadyMillis() + options_.total_deadline_ms;
  StatusOr<Frame> result = CallOnce(encode, options_.connect_timeout_ms,
                                    options_.request_timeout_ms);
  std::int64_t backoff_ms =
      std::max<std::int64_t>(1, options_.retry_backoff_initial_ms);
  for (int attempt = 0;
       !result.ok() && options_.auto_reconnect &&
       (options_.max_retries < 0 || attempt < options_.max_retries);
       ++attempt) {
    const std::int64_t remaining_ms = give_up_ms - SteadyMillis();
    if (remaining_ms <= 0) break;
    const std::int64_t sleep_ms = std::min<std::int64_t>(
        remaining_ms,
        backoff_ms + static_cast<std::int64_t>(JitterMillis(backoff_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::int64_t>(
        backoff_ms * 2,
        std::max<std::int64_t>(1, options_.retry_backoff_max_ms));
    if (retries_ != nullptr) retries_->Increment();
    result = CallOnce(encode, options_.connect_timeout_ms,
                      options_.request_timeout_ms);
  }
  return result;
}

StatusOr<Frame> RecClient::CallOnce(const EncodeFn& encode,
                                    int connect_timeout_ms,
                                    int request_timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  RTREC_RETURN_IF_ERROR(EnsureConnectedLocked(lock, connect_timeout_ms));
  const std::int64_t deadline_ms = SteadyMillis() + request_timeout_ms;
  const std::uint64_t epoch = conn_epoch_;
  bool hold_v1_slot = false;
  if (negotiated_version_ < kWireVersionV2) {
    // v1 contract: one outstanding request per connection
    // (docs/WIRE_PROTOCOL.md §6). Later callers queue here.
    while (v1_slot_busy_ && state_ == ConnState::kUp &&
           conn_epoch_ == epoch) {
      if (cv_.wait_until(lock, TimePointFromMillis(deadline_ms)) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (state_ != ConnState::kUp || conn_epoch_ != epoch) {
      return Status::Unavailable("connection lost while queued");
    }
    if (v1_slot_busy_) {
      return Status::Unavailable(
          StringPrintf("request timed out after %dms queued behind the "
                       "v1 in-flight slot",
                       request_timeout_ms));
    }
    v1_slot_busy_ = true;
    hold_v1_slot = true;
  }

  const std::uint64_t id = next_request_id_++;
  std::string encoded = encode(id);
  // Stamp the calling thread's sampled trace context onto the frame —
  // only on a connection that negotiated the feature; against anything
  // else the context is silently dropped (WIRE_PROTOCOL.md §5.5).
  if ((negotiated_features_ & kFeatureTracePropagation) != 0) {
    const TraceContext& trace = CurrentTrace();
    if (trace.sampled()) {
      StampTraceExtension(&encoded, trace.id, kTraceFlagSampled, trace.hop);
    }
  }
  auto waiter = std::make_shared<Waiter>();
  pending_.emplace(id, waiter);

  StatusOr<Frame> result = Status::Unavailable("request not sent");
  const Status sent = SendLocked(encoded, deadline_ms);
  if (!sent.ok()) {
    pending_.erase(id);
    if (state_ == ConnState::kUp && conn_epoch_ == epoch) {
      // The write side is gone; the whole connection is. Fail fast for
      // everyone rather than letting them ride out their timeouts.
      FailPendingLocked(sent);
    }
    result = sent;
  } else {
    while (!waiter->done) {
      if (cv_.wait_until(lock, TimePointFromMillis(deadline_ms)) ==
              std::cv_status::timeout &&
          !waiter->done) {
        break;
      }
    }
    if (waiter->done) {
      result = std::move(waiter->result);
    } else {
      // Abandon the id: the reader drops the late response as stale.
      // The connection stays up — other callers are still on it.
      pending_.erase(id);
      result = Status::Unavailable(StringPrintf(
          "request timed out after %dms", request_timeout_ms));
    }
  }
  if (hold_v1_slot) {
    v1_slot_busy_ = false;
    cv_.notify_all();
  }
  return result;
}

Status RecClient::SendLocked(const std::string& bytes,
                             std::int64_t deadline_ms) {
  if (shm_ != nullptr) return shm_->Send(bytes, deadline_ms);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const std::int64_t remaining = deadline_ms - SteadyMillis();
    if (remaining <= 0) return Status::Unavailable("request send timed out");
    RTREC_RETURN_IF_ERROR(WaitReady(fd_.get(), /*for_read=*/false,
                                    static_cast<int>(remaining)));
    ssize_t n = write(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StringPrintf("send: %s", strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> RecClient::ReadFrameLocked(std::int64_t deadline_ms) {
  while (true) {
    const std::int64_t remaining = deadline_ms - SteadyMillis();
    if (remaining <= 0) return Status::Unavailable("handshake timed out");
    StatusOr<Frame> frame =
        ReadPoll(static_cast<int>(std::min<std::int64_t>(remaining, 250)));
    if (frame.status().IsNotFound()) continue;
    return frame;
  }
}

// ---------------------------------------------------------------------------
// RPC surface.

Status RecClient::Ping() {
  StatusOr<Frame> frame =
      Call([](std::uint64_t id) { return EncodePingRequest(id); });
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kPongResponse) return Status::OK();
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to ping",
                                       MessageTypeToString(frame->type)));
}

StatusOr<std::string> RecClient::Stats() {
  StatusOr<Frame> frame =
      Call([](std::uint64_t id) { return EncodeStatsRequest(id); });
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kStatsResponse) {
    return DecodeStatsResponse(*frame);
  }
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to stats",
                                       MessageTypeToString(frame->type)));
}

StatusOr<std::vector<ScoredVideo>> RecClient::Recommend(
    const RecRequest& request) {
  StatusOr<RecommendReply> reply = RecommendDetailed(request);
  RTREC_RETURN_IF_ERROR(reply.status());
  return std::move(reply->videos);
}

StatusOr<RecommendReply> RecClient::RecommendDetailed(
    const RecRequest& request) {
  StatusOr<Frame> frame = Call([&request](std::uint64_t id) {
    return EncodeRecommendRequest(id, request);
  });
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kRecommendResponse) {
    return DecodeRecommendReply(*frame);
  }
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to recommend",
                                       MessageTypeToString(frame->type)));
}

StatusOr<std::vector<RecClient::BatchItem>> RecClient::RecommendBatch(
    const std::vector<RecRequest>& requests) {
  std::vector<BatchItem> out(requests.size());
  if (requests.empty()) return out;
  bool use_v2;
  {
    std::unique_lock<std::mutex> lock(mu_);
    RTREC_RETURN_IF_ERROR(
        EnsureConnectedLocked(lock, options_.connect_timeout_ms));
    use_v2 = negotiated_version_ >= kWireVersionV2;
  }
  std::size_t pos = 0;
  while (pos < requests.size()) {
    const std::size_t chunk_len =
        use_v2 ? std::min(kMaxBatchedRequests, requests.size() - pos) : 1;
    bool chunk_done = false;
    if (use_v2) {
      const std::vector<RecRequest> chunk(
          requests.begin() + static_cast<std::ptrdiff_t>(pos),
          requests.begin() + static_cast<std::ptrdiff_t>(pos + chunk_len));
      StatusOr<Frame> frame = Call([&chunk](std::uint64_t id) {
        return EncodeBatchRecommendRequest(id, chunk);
      });
      if (!frame.ok()) {
        for (std::size_t i = 0; i < chunk_len; ++i) {
          out[pos + i].status = frame.status();
        }
        chunk_done = true;
      } else if (frame->type == MessageType::kBatchRecommendResponse) {
        auto items = DecodeBatchRecommendResponse(*frame);
        for (std::size_t i = 0; i < chunk_len; ++i) {
          if (!items.ok()) {
            out[pos + i].status = items.status();
          } else if (i >= items->size()) {
            out[pos + i].status = Status::Internal(
                "batch response shorter than the request batch");
          } else {
            BatchRecommendItem& item = (*items)[i];
            if (item.ok()) {
              out[pos + i].status = Status::OK();
              out[pos + i].reply = std::move(item.reply);
            } else {
              WireErrorInfo info;
              info.code = static_cast<WireError>(item.error);
              info.message = "batched recommend item failed";
              out[pos + i].status = WireErrorToStatus(info);
            }
          }
        }
        chunk_done = true;
      } else if (frame->type == MessageType::kErrorResponse) {
        auto error = DecodeErrorResponse(*frame);
        if (error.ok() && error->code == WireError::kUnknownType) {
          // We reconnected to a v1 server mid-batch: finish this and
          // every remaining request sequentially.
          use_v2 = false;
        } else {
          const Status mapped =
              error.ok() ? WireErrorToStatus(*error) : error.status();
          for (std::size_t i = 0; i < chunk_len; ++i) {
            out[pos + i].status = mapped;
          }
          chunk_done = true;
        }
      } else {
        const Status unexpected = Status::Internal(
            StringPrintf("unexpected response %s to batch recommend",
                         MessageTypeToString(frame->type)));
        for (std::size_t i = 0; i < chunk_len; ++i) {
          out[pos + i].status = unexpected;
        }
        chunk_done = true;
      }
    } else {
      StatusOr<RecommendReply> reply = RecommendDetailed(requests[pos]);
      if (reply.ok()) {
        out[pos].status = Status::OK();
        out[pos].reply = std::move(*reply);
      } else {
        out[pos].status = reply.status();
      }
      chunk_done = true;
    }
    if (chunk_done) pos += chunk_len;  // else: retry the chunk as v1
  }
  return out;
}

Status RecClient::Observe(const UserAction& action) {
  return ExpectAck(Call([&action](std::uint64_t id) {
    return EncodeObserveRequest(id, action);
  }));
}

Status RecClient::RegisterProfile(UserId user, const UserProfile& profile) {
  return ExpectAck(Call([&user, &profile](std::uint64_t id) {
    return EncodeRegisterProfileRequest(id, user, profile);
  }));
}

Status RecClient::ExpectAck(const StatusOr<Frame>& frame) {
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kAckResponse) return Status::OK();
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s, wanted ack",
                                       MessageTypeToString(frame->type)));
}

}  // namespace rtrec
