#include "net/rec_client.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/random.h"
#include "common/string_util.h"

namespace rtrec {
namespace {

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread source for retry jitter, seeded distinctly per thread so
// clients created together don't retry in lockstep.
std::uint64_t JitterMillis(std::int64_t bound_ms) {
  if (bound_ms <= 0) return 0;
  static std::atomic<std::uint64_t> seed_counter{0};
  thread_local Rng rng(0x9E3779B97F4A7C15ull *
                       (seed_counter.fetch_add(1, std::memory_order_relaxed) +
                        1));
  return rng.NextUint64(static_cast<std::uint64_t>(bound_ms) + 1);
}

}  // namespace

RecClient::RecClient(Options options)
    : options_(std::move(options)), decoder_(options_.max_frame_bytes) {
  if (options_.metrics != nullptr) {
    retries_ = options_.metrics->GetCounter("client.retries");
  }
}

RecClient::~RecClient() { Disconnect(); }

Status RecClient::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  // The connect path gets the same retry treatment as requests: a
  // refused connect while the server restarts backs off and tries again
  // until the deadline, instead of surfacing the first ECONNREFUSED.
  const std::int64_t give_up_ms = SteadyMillis() + options_.total_deadline_ms;
  Status status = ConnectLocked();
  std::int64_t backoff_ms =
      std::max<std::int64_t>(1, options_.retry_backoff_initial_ms);
  for (int attempt = 0;
       !status.ok() && options_.auto_reconnect &&
       (options_.max_retries < 0 || attempt < options_.max_retries);
       ++attempt) {
    const std::int64_t remaining_ms = give_up_ms - SteadyMillis();
    if (remaining_ms <= 0) break;
    const std::int64_t sleep_ms = std::min<std::int64_t>(
        remaining_ms,
        backoff_ms + static_cast<std::int64_t>(JitterMillis(backoff_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::int64_t>(
        backoff_ms * 2,
        std::max<std::int64_t>(1, options_.retry_backoff_max_ms));
    if (retries_ != nullptr) retries_->Increment();
    status = ConnectLocked();
  }
  return status;
}

bool RecClient::Healthy(int deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (deadline_ms <= 0) deadline_ms = 1;
  const std::uint64_t id = next_request_id_++;
  // Single attempt, hard budget: a probe's job is a bounded-time
  // verdict, so the retry policy and the Options timeouts deliberately
  // do not apply. Connect and round-trip are each bounded by
  // deadline_ms (so a cold probe is bounded by 2x).
  StatusOr<Frame> frame =
      CallOnce(EncodePingRequest(id), id, deadline_ms, deadline_ms);
  return frame.ok() && frame->type == MessageType::kPongResponse;
}

void RecClient::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  DisconnectLocked();
}

bool RecClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_.valid();
}

Status RecClient::ConnectLocked(int timeout_ms) {
  if (fd_.valid()) return Status::OK();
  auto fd = ConnectTcp(options_.host, options_.port, timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = std::move(*fd);
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  return Status::OK();
}

void RecClient::DisconnectLocked() {
  fd_.Reset();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
}

Status RecClient::Ping() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_request_id_++;
  StatusOr<Frame> frame = Call(EncodePingRequest(id), id);
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kPongResponse) return Status::OK();
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to ping",
                                       MessageTypeToString(frame->type)));
}

StatusOr<std::string> RecClient::Stats() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_request_id_++;
  StatusOr<Frame> frame = Call(EncodeStatsRequest(id), id);
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kStatsResponse) {
    return DecodeStatsResponse(*frame);
  }
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to stats",
                                       MessageTypeToString(frame->type)));
}

StatusOr<std::vector<ScoredVideo>> RecClient::Recommend(
    const RecRequest& request) {
  StatusOr<RecommendReply> reply = RecommendDetailed(request);
  RTREC_RETURN_IF_ERROR(reply.status());
  return std::move(reply->videos);
}

StatusOr<RecommendReply> RecClient::RecommendDetailed(
    const RecRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_request_id_++;
  StatusOr<Frame> frame = Call(EncodeRecommendRequest(id, request), id);
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kRecommendResponse) {
    return DecodeRecommendReply(*frame);
  }
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s to recommend",
                                       MessageTypeToString(frame->type)));
}

Status RecClient::Observe(const UserAction& action) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_request_id_++;
  return ExpectAck(Call(EncodeObserveRequest(id, action), id));
}

Status RecClient::RegisterProfile(UserId user, const UserProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_request_id_++;
  return ExpectAck(Call(EncodeRegisterProfileRequest(id, user, profile), id));
}

Status RecClient::ExpectAck(const StatusOr<Frame>& frame) {
  if (!frame.ok()) return frame.status();
  if (frame->type == MessageType::kAckResponse) return Status::OK();
  if (frame->type == MessageType::kErrorResponse) {
    auto error = DecodeErrorResponse(*frame);
    if (!error.ok()) return error.status();
    return WireErrorToStatus(*error);
  }
  return Status::Internal(StringPrintf("unexpected response %s, wanted ack",
                                       MessageTypeToString(frame->type)));
}

StatusOr<Frame> RecClient::Call(const std::string& encoded,
                                std::uint64_t request_id) {
  // Only transport failures are retried (Unavailable/Internal from the
  // socket layer); typed server errors — OVERLOADED included — arrive
  // as OK frames and are never retried here.
  const std::int64_t give_up_ms = SteadyMillis() + options_.total_deadline_ms;
  StatusOr<Frame> result = CallOnce(encoded, request_id,
                                    options_.connect_timeout_ms,
                                    options_.request_timeout_ms);
  std::int64_t backoff_ms =
      std::max<std::int64_t>(1, options_.retry_backoff_initial_ms);
  for (int attempt = 0;
       !result.ok() && options_.auto_reconnect &&
       (options_.max_retries < 0 || attempt < options_.max_retries);
       ++attempt) {
    const std::int64_t remaining_ms = give_up_ms - SteadyMillis();
    if (remaining_ms <= 0) break;
    const std::int64_t sleep_ms = std::min<std::int64_t>(
        remaining_ms,
        backoff_ms + static_cast<std::int64_t>(JitterMillis(backoff_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min<std::int64_t>(
        backoff_ms * 2, std::max<std::int64_t>(1, options_.retry_backoff_max_ms));
    if (retries_ != nullptr) retries_->Increment();
    DisconnectLocked();
    result = CallOnce(encoded, request_id, options_.connect_timeout_ms,
                      options_.request_timeout_ms);
  }
  if (!result.ok()) DisconnectLocked();
  return result;
}

StatusOr<Frame> RecClient::CallOnce(const std::string& encoded,
                                    std::uint64_t request_id,
                                    int connect_timeout_ms,
                                    int request_timeout_ms) {
  RTREC_RETURN_IF_ERROR(ConnectLocked(connect_timeout_ms));
  const std::int64_t deadline_ms = SteadyMillis() + request_timeout_ms;
  Status sent = SendAll(encoded, deadline_ms);
  if (!sent.ok()) {
    DisconnectLocked();
    return sent;
  }
  StatusOr<Frame> frame = ReadFrame(request_id, deadline_ms);
  if (!frame.ok()) DisconnectLocked();
  return frame;
}

Status RecClient::SendAll(const std::string& bytes,
                          std::int64_t deadline_ms) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const std::int64_t remaining = deadline_ms - SteadyMillis();
    if (remaining <= 0) return Status::Unavailable("request send timed out");
    RTREC_RETURN_IF_ERROR(WaitReady(fd_.get(), /*for_read=*/false,
                                    static_cast<int>(remaining)));
    ssize_t n = write(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StringPrintf("send: %s", strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> RecClient::ReadFrame(std::uint64_t request_id,
                                     std::int64_t deadline_ms) {
  char buf[64 * 1024];
  while (true) {
    StatusOr<Frame> frame = decoder_.Next();
    if (frame.ok()) {
      if (frame->request_id != request_id) {
        // One request is in flight at a time, so an id mismatch means
        // the stream is desynchronized (e.g. a stale response from
        // before a timeout). Drop the connection rather than guess.
        return Status::Internal(
            StringPrintf("response id %llu does not match request id %llu",
                         static_cast<unsigned long long>(frame->request_id),
                         static_cast<unsigned long long>(request_id)));
      }
      return frame;
    }
    if (!frame.status().IsNotFound()) return frame.status();  // Corrupt.
    const std::int64_t remaining = deadline_ms - SteadyMillis();
    if (remaining <= 0) {
      return Status::Unavailable(
          StringPrintf("request timed out after %dms",
                       options_.request_timeout_ms));
    }
    RTREC_RETURN_IF_ERROR(WaitReady(fd_.get(), /*for_read=*/true,
                                    static_cast<int>(remaining)));
    ssize_t n = read(fd_.get(), buf, sizeof(buf));
    if (n == 0) return Status::Unavailable("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StringPrintf("recv: %s", strerror(errno)));
    }
    decoder_.Append(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace rtrec
