#ifndef RTREC_NET_REC_CLIENT_H_
#define RTREC_NET_REC_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace rtrec {

/// Blocking client for the rtrec wire protocol: one TCP connection, one
/// outstanding request at a time. Calls are serialized with an internal
/// mutex, so a RecClient may be shared across threads, but callers that
/// want parallelism should hold one client per thread (the loadgen in
/// bench/bench_net_throughput.cc does exactly that).
///
/// Transport errors (connection refused/reset, timeout) surface as
/// Unavailable; if Options::auto_reconnect is set, the client retries
/// the call over a fresh connection with exponential backoff + jitter,
/// up to Options::max_retries attempts and never past
/// Options::total_deadline_ms. Typed server errors (net/wire.h
/// WireError) are mapped through WireErrorToStatus — notably OVERLOADED
/// becomes Unavailable and is never retried automatically, since
/// retrying into an overloaded server makes the overload worse.
///
/// Retried Observe/RegisterProfile calls are at-least-once: a transport
/// error after the server applied the action replays it. Both RPCs are
/// idempotent enough in practice (profile writes are, action replays
/// only double-count one engagement) for this to be the right trade.
class RecClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int connect_timeout_ms = 1'000;
    int request_timeout_ms = 5'000;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Master switch for transport-level retries.
    bool auto_reconnect = true;
    /// Retries after the first attempt (so max_retries + 1 attempts).
    int max_retries = 3;
    /// First backoff; doubles per retry up to retry_backoff_max_ms, with
    /// up to 100% uniform jitter added to decorrelate retry storms.
    int retry_backoff_initial_ms = 10;
    int retry_backoff_max_ms = 500;
    /// Budget across all attempts of one call, backoffs included.
    int total_deadline_ms = 10'000;
    /// Counter sink for "client.retries"; null disables.
    MetricsRegistry* metrics = nullptr;
  };

  explicit RecClient(Options options);
  ~RecClient();

  RecClient(const RecClient&) = delete;
  RecClient& operator=(const RecClient&) = delete;

  /// Establishes the connection eagerly. Calls connect lazily, so this
  /// is optional — useful to fail fast at startup.
  Status Connect();

  /// Closes the connection; the next call reconnects.
  void Disconnect();

  bool connected() const;

  /// Round-trip health check.
  Status Ping();

  /// Fetches the server's metrics as Prometheus text-format (0.0.4).
  /// Like Ping, answered even while the server is shedding load.
  StatusOr<std::string> Stats();

  /// Remote RecommendationService::Recommend.
  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest& request);

  /// Like Recommend, but surfaces the full reply including the DEGRADED
  /// flag, so callers can tell a fallback answer from an engine answer.
  StatusOr<RecommendReply> RecommendDetailed(const RecRequest& request);

  /// Remote RecommendationService::Observe. Acknowledged (the server
  /// replies after applying), so a returned OK means the action landed.
  Status Observe(const UserAction& action);

  /// Remote RecommendationService::RegisterProfile.
  Status RegisterProfile(UserId user, const UserProfile& profile);

 private:
  Status ConnectLocked();
  void DisconnectLocked();

  /// Sends `encoded` and waits for the frame answering `request_id`.
  /// On transport errors, retries over a fresh connection with
  /// exponential backoff + jitter per the Options retry policy.
  StatusOr<Frame> Call(const std::string& encoded, std::uint64_t request_id);
  StatusOr<Frame> CallOnce(const std::string& encoded,
                           std::uint64_t request_id);
  Status SendAll(const std::string& bytes, std::int64_t deadline_ms);
  StatusOr<Frame> ReadFrame(std::uint64_t request_id,
                            std::int64_t deadline_ms);

  /// Expects an Ack (or a typed error) for observe/register calls.
  Status ExpectAck(const StatusOr<Frame>& frame);

  Options options_;
  Counter* retries_ = nullptr;
  mutable std::mutex mu_;
  UniqueFd fd_;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace rtrec

#endif  // RTREC_NET_REC_CLIENT_H_
