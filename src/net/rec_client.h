#ifndef RTREC_NET_REC_CLIENT_H_
#define RTREC_NET_REC_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/shm_transport.h"
#include "net/socket.h"
#include "net/wire.h"

namespace rtrec {

/// Client for the rtrec wire protocol over TCP or the same-host
/// shared-memory transport (Options::host accepts "rec://shm/NAME",
/// "shm:NAME", or a TCP hostname — see net/shm_transport.h).
///
/// Connections negotiate wire v2 at connect (docs/WIRE_PROTOCOL.md §5)
/// and then PIPELINE: any number of threads may have calls in flight on
/// the one connection at once; a background reader matches responses to
/// callers by request id, out of order. Against a v1 server the client
/// falls back transparently and serializes calls (one in flight), which
/// is the v1 contract. The blocking per-call API is unchanged from the
/// v1-only client — pipelining is purely a concurrency upgrade.
///
/// Transport errors (connection refused/reset, timeout) surface as
/// Unavailable; if Options::auto_reconnect is set, the client retries
/// the call — re-encoded under a FRESH request id, so a late response
/// to the timed-out attempt is dropped as stale instead of being
/// mistaken for the retry's answer — with exponential backoff + jitter,
/// up to Options::max_retries attempts and never past
/// Options::total_deadline_ms. A call timeout does NOT tear down the
/// connection (other callers' requests are still in flight on it);
/// only transport failures do. The *connect* path retries under the
/// same policy — both the lazy connect inside a call and the eager
/// Connect() — so a connection refused while a server restarts rides
/// out the recovery window instead of surfacing immediately.
/// Typed server errors (net/wire.h
/// WireError) are mapped through WireErrorToStatus — notably OVERLOADED
/// becomes Unavailable and is never retried automatically, since
/// retrying into an overloaded server makes the overload worse.
///
/// Retried Observe/RegisterProfile calls are at-least-once: a transport
/// error after the server applied the action replays it. Both RPCs are
/// idempotent enough in practice (profile writes are, action replays
/// only double-count one engagement) for this to be the right trade.
class RecClient {
 public:
  struct Options {
    /// TCP hostname, or an shm address ("rec://shm/NAME" / "shm:NAME");
    /// port is ignored for shm.
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int connect_timeout_ms = 1'000;
    int request_timeout_ms = 5'000;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Master switch for transport-level retries.
    bool auto_reconnect = true;
    /// Retries after the first attempt (so max_retries + 1 attempts).
    /// Negative means "no attempt cap": keep retrying with backoff until
    /// total_deadline_ms runs out — the right shape for riding out a
    /// supervised shard restart.
    int max_retries = 3;
    /// First backoff; doubles per retry up to retry_backoff_max_ms, with
    /// up to 100% uniform jitter added to decorrelate retry storms.
    int retry_backoff_initial_ms = 10;
    int retry_backoff_max_ms = 500;
    /// Budget across all attempts of one call, backoffs included.
    int total_deadline_ms = 10'000;
    /// Counter sink for "client.retries" / "client.stale_responses";
    /// null disables.
    MetricsRegistry* metrics = nullptr;
    /// Highest wire version to offer in the Hello handshake. 1 skips
    /// the handshake entirely and speaks pure v1 (interop tests).
    /// Clamped to [1, kMaxWireVersion].
    int max_wire_version = kMaxWireVersion;
  };

  /// Per-request result of RecommendBatch: the reply is meaningful only
  /// when status is OK.
  struct BatchItem {
    Status status;
    RecommendReply reply;
  };

  explicit RecClient(Options options);
  ~RecClient();

  RecClient(const RecClient&) = delete;
  RecClient& operator=(const RecClient&) = delete;

  /// Establishes the connection eagerly (calls connect lazily, so this
  /// is optional). Under Options::auto_reconnect a refused or timed-out
  /// connect retries with exponential backoff + jitter per the retry
  /// policy, so connecting to a server that is still coming up (or
  /// restarting) succeeds as soon as it binds. Set auto_reconnect false
  /// to fail fast at startup instead.
  Status Connect();

  /// Closes the connection; the next call reconnects. Fails every
  /// request currently in flight with Unavailable.
  void Disconnect();

  bool connected() const;

  /// Wire version negotiated on the live connection (kWireVersionV2
  /// against a v2 server, kWireVersion against v1); 0 when not
  /// connected.
  std::uint8_t negotiated_version() const;

  /// Whether the live connection negotiated the trace-propagation
  /// feature (docs/WIRE_PROTOCOL.md §5.5). When true, calls made while
  /// the calling thread carries a sampled TraceContext stamp the trace
  /// extension onto their request frames; when false (v1 peer or a v2
  /// server without tracing) the context is silently dropped and the
  /// request is unchanged.
  bool trace_propagation_negotiated() const;

  /// Responses that arrived for requests nobody was waiting on any more
  /// (late answers to timed-out attempts). They are dropped by design.
  std::uint64_t stale_responses_dropped() const {
    return stale_responses_.load(std::memory_order_relaxed);
  }

  /// Round-trip health check.
  Status Ping();

  /// Ping-based liveness probe with a hard deadline: one attempt, no
  /// retries, connect and round-trip each bounded by `deadline_ms` (so a
  /// cold probe answers within 2x of it). True iff the server answered
  /// in time. The building block for circuit-breaker
  /// health probes (cluster/cluster_client.h) and readiness gating
  /// (scripts/cluster.sh via examples/rec_ping) — a probe must answer
  /// "dead or alive" in bounded time, never ride the retry policy.
  bool Healthy(int deadline_ms = 250);

  /// Fetches the server's metrics as Prometheus text-format (0.0.4).
  /// Like Ping, answered even while the server is shedding load.
  StatusOr<std::string> Stats();

  /// Remote RecommendationService::Recommend.
  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest& request);

  /// Like Recommend, but surfaces the full reply including the DEGRADED
  /// flag, so callers can tell a fallback answer from an engine answer.
  StatusOr<RecommendReply> RecommendDetailed(const RecRequest& request);

  /// Many Recommends in one round trip (v2 BatchRecommend, §7). Chunks
  /// of kMaxBatchedRequests per frame; per-item success/failure in the
  /// returned vector (index-aligned with `requests`). Against a v1
  /// server this degrades to sequential RecommendDetailed calls — same
  /// results, v1 latency. A non-OK return means the whole batch failed
  /// (e.g. could not connect).
  StatusOr<std::vector<BatchItem>> RecommendBatch(
      const std::vector<RecRequest>& requests);

  /// Remote RecommendationService::Observe. Acknowledged (the server
  /// replies after applying), so a returned OK means the action landed.
  Status Observe(const UserAction& action);

  /// Remote RecommendationService::RegisterProfile.
  Status RegisterProfile(UserId user, const UserProfile& profile);

 private:
  /// Re-encodes one request under a fresh id (retries must not reuse
  /// ids — a stale response would satisfy the wrong attempt).
  using EncodeFn = std::function<std::string(std::uint64_t request_id)>;

  enum class ConnState { kDown, kUp, kBroken };

  /// A caller parked on the pending map waiting for its response.
  struct Waiter {
    bool done = false;
    StatusOr<Frame> result = Status::Unavailable("response pending");
  };

  Status EnsureConnectedLocked(std::unique_lock<std::mutex>& lock,
                               int connect_timeout_ms);
  Status OpenTransportLocked(int timeout_ms);
  /// Synchronous Hello negotiation, run before the reader starts
  /// (docs/WIRE_PROTOCOL.md §5).
  Status HandshakeLocked(std::int64_t deadline_ms);
  /// kBroken -> kDown: joins the dead reader (outside the lock) and
  /// resets transport state. Safe to race from several callers.
  void CleanupBrokenLocked(std::unique_lock<std::mutex>& lock);
  void DisconnectLocked(std::unique_lock<std::mutex>& lock);

  /// Background reader: drains frames, completes waiters by request id.
  void ReaderLoop(std::uint64_t epoch);
  /// One poll step for the reader. NotFound = nothing yet; any other
  /// error is fatal for the connection.
  StatusOr<Frame> ReadPoll(int timeout_ms);
  void CompletePending(Frame frame);
  void FailPending(const Status& status, std::uint64_t epoch);
  /// Fails every waiter and marks the connection broken. Caller holds
  /// mu_ and has already checked the epoch.
  void FailPendingLocked(const Status& status);

  /// Retry wrapper (backoff + fresh ids) around CallOnce.
  StatusOr<Frame> Call(const EncodeFn& encode);
  StatusOr<Frame> CallOnce(const EncodeFn& encode, int connect_timeout_ms,
                           int request_timeout_ms);
  /// Blocking raw-byte send on the live transport. Caller holds mu_.
  Status SendLocked(const std::string& bytes, std::int64_t deadline_ms);
  /// Blocking raw frame read; only legal while the reader is not
  /// running (handshake). Caller holds mu_.
  StatusOr<Frame> ReadFrameLocked(std::int64_t deadline_ms);

  /// Expects an Ack (or a typed error) for observe/register calls.
  Status ExpectAck(const StatusOr<Frame>& frame);

  Options options_;
  Counter* retries_ = nullptr;
  Counter* stale_counter_ = nullptr;
  std::atomic<std::uint64_t> stale_responses_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  ConnState state_ = ConnState::kDown;
  bool cleanup_in_progress_ = false;
  UniqueFd fd_;                      // TCP transport (exclusive with shm_)
  std::unique_ptr<ShmClient> shm_;   // shm transport
  FrameDecoder decoder_;             // TCP reader/handshake only
  std::thread reader_;
  std::atomic<bool> reader_stop_{false};
  std::uint64_t conn_epoch_ = 0;     // bumped per successful connect
  std::uint8_t negotiated_version_ = kWireVersion;
  std::uint32_t negotiated_features_ = 0;
  std::unordered_map<std::uint64_t, std::shared_ptr<Waiter>> pending_;
  bool v1_slot_busy_ = false;        // v1 = one request in flight
  std::uint64_t next_request_id_ = 1;
};

}  // namespace rtrec

#endif  // RTREC_NET_REC_CLIENT_H_
