#ifndef RTREC_NET_REC_CLIENT_H_
#define RTREC_NET_REC_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace rtrec {

/// Blocking client for the rtrec wire protocol: one TCP connection, one
/// outstanding request at a time. Calls are serialized with an internal
/// mutex, so a RecClient may be shared across threads, but callers that
/// want parallelism should hold one client per thread (the loadgen in
/// bench/bench_net_throughput.cc does exactly that).
///
/// Transport errors (connection refused/reset, timeout) surface as
/// Unavailable; if Options::auto_reconnect is set, the client first
/// tears the connection down, reconnects, and retries the call once.
/// Typed server errors (net/wire.h WireError) are mapped through
/// WireErrorToStatus — notably OVERLOADED becomes Unavailable and is
/// never retried automatically, since retrying into an overloaded
/// server makes the overload worse.
class RecClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int connect_timeout_ms = 1'000;
    int request_timeout_ms = 5'000;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Retry a failed call once over a fresh connection.
    bool auto_reconnect = true;
  };

  explicit RecClient(Options options);
  ~RecClient();

  RecClient(const RecClient&) = delete;
  RecClient& operator=(const RecClient&) = delete;

  /// Establishes the connection eagerly. Calls connect lazily, so this
  /// is optional — useful to fail fast at startup.
  Status Connect();

  /// Closes the connection; the next call reconnects.
  void Disconnect();

  bool connected() const;

  /// Round-trip health check.
  Status Ping();

  /// Remote RecommendationService::Recommend.
  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest& request);

  /// Remote RecommendationService::Observe. Acknowledged (the server
  /// replies after applying), so a returned OK means the action landed.
  Status Observe(const UserAction& action);

  /// Remote RecommendationService::RegisterProfile.
  Status RegisterProfile(UserId user, const UserProfile& profile);

 private:
  Status ConnectLocked();
  void DisconnectLocked();

  /// Sends `encoded` and waits for the frame answering `request_id`.
  /// Retries once over a fresh connection on transport errors when
  /// auto_reconnect is on.
  StatusOr<Frame> Call(const std::string& encoded, std::uint64_t request_id);
  StatusOr<Frame> CallOnce(const std::string& encoded,
                           std::uint64_t request_id);
  Status SendAll(const std::string& bytes, std::int64_t deadline_ms);
  StatusOr<Frame> ReadFrame(std::uint64_t request_id,
                            std::int64_t deadline_ms);

  /// Expects an Ack (or a typed error) for observe/register calls.
  Status ExpectAck(const StatusOr<Frame>& frame);

  Options options_;
  mutable std::mutex mu_;
  UniqueFd fd_;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace rtrec

#endif  // RTREC_NET_REC_CLIENT_H_
