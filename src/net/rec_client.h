#ifndef RTREC_NET_REC_CLIENT_H_
#define RTREC_NET_REC_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace rtrec {

/// Blocking client for the rtrec wire protocol: one TCP connection, one
/// outstanding request at a time. Calls are serialized with an internal
/// mutex, so a RecClient may be shared across threads, but callers that
/// want parallelism should hold one client per thread (the loadgen in
/// bench/bench_net_throughput.cc does exactly that).
///
/// Transport errors (connection refused/reset, timeout) surface as
/// Unavailable; if Options::auto_reconnect is set, the client retries
/// the call over a fresh connection with exponential backoff + jitter,
/// up to Options::max_retries attempts and never past
/// Options::total_deadline_ms. The *connect* path retries under the
/// same policy — both the lazy connect inside a call and the eager
/// Connect() — so a connection refused while a server restarts rides
/// out the recovery window instead of surfacing immediately.
/// Typed server errors (net/wire.h
/// WireError) are mapped through WireErrorToStatus — notably OVERLOADED
/// becomes Unavailable and is never retried automatically, since
/// retrying into an overloaded server makes the overload worse.
///
/// Retried Observe/RegisterProfile calls are at-least-once: a transport
/// error after the server applied the action replays it. Both RPCs are
/// idempotent enough in practice (profile writes are, action replays
/// only double-count one engagement) for this to be the right trade.
class RecClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int connect_timeout_ms = 1'000;
    int request_timeout_ms = 5'000;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Master switch for transport-level retries.
    bool auto_reconnect = true;
    /// Retries after the first attempt (so max_retries + 1 attempts).
    /// Negative means "no attempt cap": keep retrying with backoff until
    /// total_deadline_ms runs out — the right shape for riding out a
    /// supervised shard restart.
    int max_retries = 3;
    /// First backoff; doubles per retry up to retry_backoff_max_ms, with
    /// up to 100% uniform jitter added to decorrelate retry storms.
    int retry_backoff_initial_ms = 10;
    int retry_backoff_max_ms = 500;
    /// Budget across all attempts of one call, backoffs included.
    int total_deadline_ms = 10'000;
    /// Counter sink for "client.retries"; null disables.
    MetricsRegistry* metrics = nullptr;
  };

  explicit RecClient(Options options);
  ~RecClient();

  RecClient(const RecClient&) = delete;
  RecClient& operator=(const RecClient&) = delete;

  /// Establishes the connection eagerly (calls connect lazily, so this
  /// is optional). Under Options::auto_reconnect a refused or timed-out
  /// connect retries with exponential backoff + jitter per the retry
  /// policy, so connecting to a server that is still coming up (or
  /// restarting) succeeds as soon as it binds. Set auto_reconnect false
  /// to fail fast at startup instead.
  Status Connect();

  /// Closes the connection; the next call reconnects.
  void Disconnect();

  bool connected() const;

  /// Round-trip health check.
  Status Ping();

  /// Ping-based liveness probe with a hard deadline: one attempt, no
  /// retries, connect and round-trip each bounded by `deadline_ms` (so a
  /// cold probe answers within 2x of it). True iff the server answered
  /// in time. The building block for circuit-breaker
  /// health probes (cluster/cluster_client.h) and readiness gating
  /// (scripts/cluster.sh via examples/rec_ping) — a probe must answer
  /// "dead or alive" in bounded time, never ride the retry policy.
  bool Healthy(int deadline_ms = 250);

  /// Fetches the server's metrics as Prometheus text-format (0.0.4).
  /// Like Ping, answered even while the server is shedding load.
  StatusOr<std::string> Stats();

  /// Remote RecommendationService::Recommend.
  StatusOr<std::vector<ScoredVideo>> Recommend(const RecRequest& request);

  /// Like Recommend, but surfaces the full reply including the DEGRADED
  /// flag, so callers can tell a fallback answer from an engine answer.
  StatusOr<RecommendReply> RecommendDetailed(const RecRequest& request);

  /// Remote RecommendationService::Observe. Acknowledged (the server
  /// replies after applying), so a returned OK means the action landed.
  Status Observe(const UserAction& action);

  /// Remote RecommendationService::RegisterProfile.
  Status RegisterProfile(UserId user, const UserProfile& profile);

 private:
  Status ConnectLocked() { return ConnectLocked(options_.connect_timeout_ms); }
  Status ConnectLocked(int timeout_ms);
  void DisconnectLocked();

  /// Sends `encoded` and waits for the frame answering `request_id`.
  /// On transport errors, retries over a fresh connection with
  /// exponential backoff + jitter per the Options retry policy.
  StatusOr<Frame> Call(const std::string& encoded, std::uint64_t request_id);
  /// One attempt with explicit connect/request budgets (Healthy probes
  /// pass a tight shared deadline; Call passes the Options timeouts).
  StatusOr<Frame> CallOnce(const std::string& encoded,
                           std::uint64_t request_id, int connect_timeout_ms,
                           int request_timeout_ms);
  Status SendAll(const std::string& bytes, std::int64_t deadline_ms);
  StatusOr<Frame> ReadFrame(std::uint64_t request_id,
                            std::int64_t deadline_ms);

  /// Expects an Ack (or a typed error) for observe/register calls.
  Status ExpectAck(const StatusOr<Frame>& frame);

  Options options_;
  Counter* retries_ = nullptr;
  mutable std::mutex mu_;
  UniqueFd fd_;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace rtrec

#endif  // RTREC_NET_REC_CLIENT_H_
