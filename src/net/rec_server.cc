#include "net/rec_server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace rtrec {
namespace {

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker: one epoll event loop owning a share of the connections.

class RecServer::Worker {
 public:
  Worker(RecServer* server, int index) : server_(server), index_(index) {}

  ~Worker() {
    // Connections normally close when the loop exits; pending fds that
    // were never adopted still need closing.
    for (int fd : pending_) ::close(fd);
  }

  Status Init() {
    epoll_fd_.Reset(epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      return Status::Internal(
          StringPrintf("epoll_create1: %s", strerror(errno)));
    }
    wake_fd_.Reset(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!wake_fd_.valid()) {
      return Status::Internal(StringPrintf("eventfd: %s", strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_.get();
    if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) < 0) {
      return Status::Internal(
          StringPrintf("epoll_ctl(wakeup): %s", strerror(errno)));
    }
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Loop(); });
  }

  /// Called from the acceptor thread: hand over an accepted socket.
  void AddConnection(int fd) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(fd);
    }
    Wake();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Connection {
    explicit Connection(int raw_fd, std::size_t max_frame_bytes)
        : fd(raw_fd), decoder(max_frame_bytes) {}

    UniqueFd fd;
    FrameDecoder decoder;
    std::string outbuf;
    std::size_t outpos = 0;
    std::int64_t last_active_ms = 0;
    bool close_after_flush = false;
    bool epollout_armed = false;
  };

  void Wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_.get(), &one, sizeof(one));
  }

  void Loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (!stop_.load(std::memory_order_acquire)) {
      int n = epoll_wait(epoll_fd_.get(), events, kMaxEvents, /*timeout=*/250);
      if (n < 0) {
        if (errno == EINTR) continue;
        RTREC_LOG(kError) << "worker " << index_
                          << " epoll_wait: " << strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == wake_fd_.get()) {
          std::uint64_t drained;
          while (read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
          }
          AdoptPending();
        } else {
          HandleEvent(events[i].data.fd, events[i].events);
        }
      }
      SweepIdle();
    }
    // Close every connection this worker owns.
    while (!conns_.empty()) CloseConnection(conns_.begin()->first);
  }

  void AdoptPending() {
    std::vector<int> adopted;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      adopted.swap(pending_);
    }
    for (int fd : adopted) {
      if (stop_.load(std::memory_order_acquire)) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Connection>(
          fd, server_->options_.max_frame_bytes);
      conn->last_active_ms = SteadyMillis();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
        RTREC_LOG(kError) << "epoll_ctl(add conn): " << strerror(errno);
        continue;  // UniqueFd closes the socket.
      }
      conns_.emplace(fd, std::move(conn));
      server_->metrics_->GetGauge("net.server.connections.active")->Add(1);
    }
  }

  void HandleEvent(int fd, std::uint32_t events) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // Already closed this pass.
    Connection* conn = it->second.get();
    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConnection(fd);
      return;
    }
    if ((events & EPOLLIN) && !ReadAndHandle(conn)) {
      CloseConnection(fd);
      return;
    }
    if (!FlushWrites(conn)) {
      CloseConnection(fd);
      return;
    }
    if (conn->close_after_flush && conn->outpos >= conn->outbuf.size()) {
      CloseConnection(fd);
    }
  }

  /// Drains the socket and handles every complete frame. Returns false
  /// if the connection must be closed now (EOF or fatal error).
  bool ReadAndHandle(Connection* conn) {
    char buf[64 * 1024];
    while (!conn->close_after_flush) {
      // An injected read fault plays as a peer that died mid-stream.
      if (!RTREC_FAULT_POINT("net.socket.read").ok()) return false;
      ssize_t n = read(conn->fd.get(), buf, sizeof(buf));
      if (n == 0) return false;  // Peer closed.
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      server_->metrics_->GetCounter("net.server.bytes.in")->Increment(n);
      conn->last_active_ms = SteadyMillis();
      conn->decoder.Append(std::string_view(buf, static_cast<std::size_t>(n)));
      while (!conn->close_after_flush) {
        StatusOr<Frame> frame = conn->decoder.Next();
        if (frame.ok()) {
          HandleFrame(conn, *frame);
          continue;
        }
        if (frame.status().IsNotFound()) break;  // Partial frame: wait.
        // Structurally corrupt stream: framing is lost, so answer once
        // (request id unknowable -> 0) and drop the connection.
        server_->metrics_->GetCounter("net.server.protocol_errors")
            ->Increment();
        QueueResponse(conn,
                      EncodeErrorResponse(0, WireError::kMalformedFrame,
                                          frame.status().message()));
        conn->close_after_flush = true;
      }
    }
    return true;
  }

  void HandleFrame(Connection* conn, const Frame& frame) {
    server_->metrics_->GetCounter("net.server.requests")->Increment();
    if (frame.version != kWireVersion) {
      server_->metrics_->GetCounter("net.server.protocol_errors")->Increment();
      QueueResponse(conn, EncodeErrorResponse(
                              frame.request_id, WireError::kBadVersion,
                              StringPrintf("unsupported wire version %u; "
                                           "server speaks %u",
                                           frame.version, kWireVersion)));
      conn->close_after_flush = true;  // Peer speaks a different dialect.
      return;
    }
    switch (frame.type) {
      case MessageType::kPingRequest: {
        // Health checks bypass admission control by design.
        ScopedLatencyTimer timer(
            server_->metrics_->GetHistogram("net.server.rpc.ping.latency_us"));
        QueueResponse(conn, EncodePongResponse(frame.request_id));
        return;
      }
      case MessageType::kStatsRequest: {
        // Observability bypasses admission control like ping does: a
        // scrape must still answer while the server is shedding load.
        ScopedLatencyTimer timer(server_->metrics_->GetHistogram(
            "net.server.rpc.stats.latency_us"));
        server_->metrics_->GetCounter("net.server.stats_scrapes")
            ->Increment();
        // Keep the whole frame under the peer's likely cap: leave room
        // for the length prefix, header, and body length field.
        const std::size_t max_text =
            server_->options_.max_frame_bytes > 64
                ? server_->options_.max_frame_bytes - 64
                : 0;
        QueueResponse(conn, EncodeStatsResponse(
                                frame.request_id,
                                server_->metrics_->PrometheusText(),
                                max_text));
        return;
      }
      case MessageType::kRecommendRequest:
      case MessageType::kObserveRequest:
      case MessageType::kRegisterProfileRequest:
        HandleServiceRpc(conn, frame);
        return;
      default:
        server_->metrics_->GetCounter("net.server.protocol_errors")
            ->Increment();
        QueueResponse(conn,
                      EncodeErrorResponse(
                          frame.request_id, WireError::kUnknownType,
                          StringPrintf("server does not handle type 0x%02x",
                                       static_cast<unsigned>(frame.type))));
        return;
    }
  }

  /// The three RPCs that reach the RecommendationService; all sit behind
  /// the in-flight admission gate.
  void HandleServiceRpc(Connection* conn, const Frame& frame) {
    if (!server_->TryAcquireInFlight()) {
      server_->metrics_->GetCounter("net.server.requests.shed")->Increment();
      QueueResponse(conn,
                    EncodeErrorResponse(
                        frame.request_id, WireError::kOverloaded,
                        StringPrintf("in-flight cap %d reached; retry later",
                                     server_->options_.max_in_flight)));
      return;
    }
    if (server_->options_.handler_delay_for_test_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          server_->options_.handler_delay_for_test_ms));
    }
    // Every admitted service RPC is a trace root; a sampled context is
    // installed as the thread-current trace so spans recorded inside the
    // service (and the KV stores under it) nest under this request.
    Tracer* const tracer = server_->options_.tracer;
    TraceContext trace;
    if (tracer != nullptr) trace = tracer->StartTrace();
    std::optional<ScopedTraceContext> trace_scope;
    if (trace.sampled()) trace_scope.emplace(trace);
    switch (frame.type) {
      case MessageType::kRecommendRequest: {
        ScopedLatencyTimer timer(server_->metrics_->GetHistogram(
            "net.server.rpc.recommend.latency_us"));
        StatusOr<RecRequest> request = DecodeRecommendRequest(frame);
        if (!request.ok()) {
          QueueDecodeError(conn, frame.request_id, request.status());
          break;
        }
        HandleRecommend(conn, frame.request_id, *request);
        break;
      }
      case MessageType::kObserveRequest: {
        ScopedLatencyTimer timer(server_->metrics_->GetHistogram(
            "net.server.rpc.observe.latency_us"));
        StatusOr<UserAction> action = DecodeObserveRequest(frame);
        if (!action.ok()) {
          QueueDecodeError(conn, frame.request_id, action.status());
          break;
        }
        server_->service_->Observe(*action);
        QueueResponse(conn, EncodeAckResponse(frame.request_id));
        break;
      }
      case MessageType::kRegisterProfileRequest: {
        ScopedLatencyTimer timer(server_->metrics_->GetHistogram(
            "net.server.rpc.register_profile.latency_us"));
        StatusOr<ProfileUpdate> update = DecodeRegisterProfileRequest(frame);
        if (!update.ok()) {
          QueueDecodeError(conn, frame.request_id, update.status());
          break;
        }
        server_->service_->RegisterProfile(update->user, update->profile);
        QueueResponse(conn, EncodeAckResponse(frame.request_id));
        break;
      }
      default:
        break;  // Unreachable: caller dispatched on type.
    }
    if (trace.sampled()) {
      const char* stage =
          frame.type == MessageType::kRecommendRequest ? "wire.recommend"
          : frame.type == MessageType::kObserveRequest ? "wire.observe"
                                                       : "wire.register_profile";
      tracer->RecordSinceRoot(trace, stage);
    }
    server_->ReleaseInFlight();
  }

  /// The Recommend serving ladder: breaker-open -> straight fallback;
  /// engine OK within its deadline -> full answer; engine error or
  /// deadline breach -> fallback with the DEGRADED flag (or, with the
  /// fallback disabled, a typed error / the late answer).
  void HandleRecommend(Connection* conn, std::uint64_t request_id,
                       const RecRequest& request) {
    const int deadline_ms = server_->options_.recommend_deadline_ms;
    const bool fallback_on = server_->options_.degraded_fallback;
    std::vector<ScoredVideo> results;
    std::uint8_t flags = 0;
    bool answered = false;
    if (fallback_on && server_->InBreakerCooldown(SteadyMillis())) {
      results = server_->service_->FallbackRecommend(request);
      flags |= kRecommendFlagDegraded;
      answered = true;
    } else {
      const std::int64_t start_ms = SteadyMillis();
      StatusOr<std::vector<ScoredVideo>> recs =
          server_->service_->Recommend(request);
      const std::int64_t elapsed_ms = SteadyMillis() - start_ms;
      if (!recs.ok() && recs.status().IsInvalidArgument()) {
        // The client's fault, not the engine's: no breaker bookkeeping,
        // no fallback masking.
        QueueResponse(conn,
                      EncodeErrorResponse(request_id, WireError::kBadRequest,
                                          recs.status().message()));
        return;
      }
      const bool late = deadline_ms > 0 && elapsed_ms > deadline_ms;
      if (late) {
        server_->metrics_->GetCounter("net.server.deadline_breaches")
            ->Increment();
      }
      if (recs.ok() && !late) {
        server_->RecordEngineSuccess();
        results = std::move(*recs);
        answered = true;
      } else {
        server_->RecordEngineFailure(SteadyMillis());
        if (fallback_on) {
          results = server_->service_->FallbackRecommend(request);
          flags |= kRecommendFlagDegraded;
          answered = true;
        } else if (recs.ok()) {
          // Late but the fallback is disabled: the stale answer is all
          // we have.
          results = std::move(*recs);
          answered = true;
        } else {
          QueueResponse(conn,
                        EncodeErrorResponse(request_id, WireError::kInternal,
                                            recs.status().message()));
        }
      }
    }
    if (answered) {
      if ((flags & kRecommendFlagDegraded) != 0) {
        server_->metrics_->GetCounter("server.degraded_responses")
            ->Increment();
      }
      QueueResponse(conn,
                    EncodeRecommendResponse(request_id, results, flags));
    }
  }

  /// A frame that parsed structurally but whose body would not decode:
  /// the stream is still framed, so answer and keep the connection.
  void QueueDecodeError(Connection* conn, std::uint64_t request_id,
                        const Status& status) {
    server_->metrics_->GetCounter("net.server.protocol_errors")->Increment();
    QueueResponse(conn, EncodeErrorResponse(request_id,
                                            WireError::kMalformedFrame,
                                            status.message()));
  }

  void QueueResponse(Connection* conn, std::string bytes) {
    if (conn->outpos > 0 && conn->outpos == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->outpos = 0;
    }
    conn->outbuf.append(bytes);
  }

  /// Writes as much buffered output as the socket accepts. Returns false
  /// on a fatal write error.
  bool FlushWrites(Connection* conn) {
    while (conn->outpos < conn->outbuf.size()) {
      // An injected write fault plays as a connection reset under us.
      if (!RTREC_FAULT_POINT("net.socket.write").ok()) return false;
      ssize_t n = write(conn->fd.get(), conn->outbuf.data() + conn->outpos,
                        conn->outbuf.size() - conn->outpos);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      conn->outpos += static_cast<std::size_t>(n);
      conn->last_active_ms = SteadyMillis();
      server_->metrics_->GetCounter("net.server.bytes.out")->Increment(n);
    }
    if (conn->outpos == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->outpos = 0;
    }
    // Arm EPOLLOUT only while output is pending.
    const bool want_out = !conn->outbuf.empty();
    if (want_out != conn->epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
      ev.data.fd = conn->fd.get();
      if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) < 0) {
        return false;
      }
      conn->epollout_armed = want_out;
    }
    return true;
  }

  void CloseConnection(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    conns_.erase(it);  // UniqueFd closes the socket.
    server_->metrics_->GetGauge("net.server.connections.active")->Add(-1);
  }

  void SweepIdle() {
    const int timeout_ms = server_->options_.idle_timeout_ms;
    if (timeout_ms <= 0) return;
    const std::int64_t now = SteadyMillis();
    if (now - last_sweep_ms_ < std::min<std::int64_t>(timeout_ms / 4 + 1, 1000))
      return;
    last_sweep_ms_ = now;
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns_) {
      if (now - conn->last_active_ms > timeout_ms) idle.push_back(fd);
    }
    for (int fd : idle) {
      server_->metrics_->GetCounter("net.server.connections.idle_closed")
          ->Increment();
      CloseConnection(fd);
    }
  }

  RecServer* server_;
  int index_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex pending_mu_;
  std::vector<int> pending_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::int64_t last_sweep_ms_ = 0;
};

// ---------------------------------------------------------------------------
// RecServer.

RecServer::RecServer(RecommendationService* service, Options options)
    : service_(service), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
}

RecServer::~RecServer() { Stop(); }

Status RecServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  auto listener =
      ListenTcp(options_.host, options_.port, options_.accept_backlog);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;

  workers_.clear();
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(this, i);
    RTREC_RETURN_IF_ERROR(worker->Init());
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) worker->StartThread();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  RTREC_LOG(kInfo) << "RecServer listening on " << options_.host << ":"
                   << port_ << " (" << options_.num_workers << " workers, "
                   << options_.max_in_flight << " in-flight cap)";
  return Status::OK();
}

void RecServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) worker->RequestStop();
  for (auto& worker : workers_) worker->Join();
  workers_.clear();
  listen_fd_.Reset();
  port_ = 0;
  RTREC_LOG(kInfo) << "RecServer stopped";
}

void RecServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Status ready = WaitReady(listen_fd_.get(), /*for_read=*/true,
                             /*timeout_ms=*/250);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (!ready.ok()) {
      if (ready.IsUnavailable()) continue;  // Poll timeout: re-check stop.
      RTREC_LOG(kError) << "acceptor poll failed: " << ready.ToString();
      break;
    }
    while (true) {
      int fd = accept4(listen_fd_.get(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        RTREC_LOG(kWarn) << "accept4: " << strerror(errno);
        break;
      }
      // An injected accept fault drops the new connection on the floor,
      // as a listener hitting EMFILE or a dying acceptor would.
      if (!RTREC_FAULT_POINT("net.socket.accept").ok()) {
        ::close(fd);
        continue;
      }
      SetTcpNoDelay(fd);  // Best effort; a failure only costs latency.
      metrics_->GetCounter("net.server.connections.accepted")->Increment();
      const std::size_t target =
          next_worker_.fetch_add(1, std::memory_order_relaxed) %
          workers_.size();
      workers_[target]->AddConnection(fd);
    }
  }
}

bool RecServer::TryAcquireInFlight() {
  int current = in_flight_.load(std::memory_order_relaxed);
  while (current < options_.max_in_flight) {
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void RecServer::ReleaseInFlight() {
  in_flight_.fetch_sub(1, std::memory_order_release);
}

bool RecServer::InBreakerCooldown(std::int64_t now_ms) const {
  return now_ms < degraded_until_ms_.load(std::memory_order_acquire);
}

void RecServer::RecordEngineFailure(std::int64_t now_ms) {
  const int threshold = options_.breaker_failure_threshold;
  if (threshold <= 0) return;
  const int failures =
      consecutive_engine_failures_.fetch_add(1, std::memory_order_relaxed) +
      1;
  if (failures >= threshold) {
    degraded_until_ms_.store(now_ms + options_.breaker_cooldown_ms,
                             std::memory_order_release);
    consecutive_engine_failures_.store(0, std::memory_order_relaxed);
    metrics_->GetCounter("net.server.breaker_trips")->Increment();
    RTREC_LOG(kWarn) << "Recommend circuit breaker tripped; serving "
                        "degraded fallback for "
                     << options_.breaker_cooldown_ms << " ms";
  }
}

void RecServer::RecordEngineSuccess() {
  consecutive_engine_failures_.store(0, std::memory_order_relaxed);
}

}  // namespace rtrec
