#include "net/rec_server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/shm_transport.h"
#include "obs/span_collector.h"

namespace rtrec {
namespace {

std::int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker: one epoll event loop owning a share of the connections.

class RecServer::Worker {
 public:
  Worker(RecServer* server, int index) : server_(server), index_(index) {}

  ~Worker() {
    // Connections normally close when the loop exits; pending fds that
    // were never adopted still need closing.
    for (int fd : pending_) ::close(fd);
  }

  Status Init() {
    epoll_fd_.Reset(epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      return Status::Internal(
          StringPrintf("epoll_create1: %s", strerror(errno)));
    }
    wake_fd_.Reset(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!wake_fd_.valid()) {
      return Status::Internal(StringPrintf("eventfd: %s", strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_.get();
    if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) < 0) {
      return Status::Internal(
          StringPrintf("epoll_ctl(wakeup): %s", strerror(errno)));
    }
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { Loop(); });
  }

  /// Called from the acceptor thread: hand over an accepted socket.
  void AddConnection(int fd) {
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(fd);
    }
    Wake();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Connection {
    explicit Connection(int raw_fd, std::size_t max_frame_bytes)
        : fd(raw_fd), decoder(max_frame_bytes) {}

    bool HasPendingOutput() const { return !outq.empty(); }

    UniqueFd fd;
    FrameDecoder decoder;
    RequestContext ctx;
    /// Encoded response frames awaiting the socket, flushed with writev
    /// so a burst of pipelined replies leaves in one syscall. outpos is
    /// the partially-written offset into outq.front().
    std::deque<std::string> outq;
    std::size_t outpos = 0;
    std::int64_t last_active_ms = 0;
    bool close_after_flush = false;
    bool epollout_armed = false;
  };

  void Wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_.get(), &one, sizeof(one));
  }

  void Loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (!stop_.load(std::memory_order_acquire)) {
      int n = epoll_wait(epoll_fd_.get(), events, kMaxEvents, /*timeout=*/250);
      if (n < 0) {
        if (errno == EINTR) continue;
        RTREC_LOG(kError) << "worker " << index_
                          << " epoll_wait: " << strerror(errno);
        break;
      }
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == wake_fd_.get()) {
          std::uint64_t drained;
          while (read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
          }
          AdoptPending();
        } else {
          HandleEvent(events[i].data.fd, events[i].events);
        }
      }
      SweepIdle();
    }
    // Close every connection this worker owns.
    while (!conns_.empty()) CloseConnection(conns_.begin()->first);
  }

  void AdoptPending() {
    std::vector<int> adopted;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      adopted.swap(pending_);
    }
    for (int fd : adopted) {
      if (stop_.load(std::memory_order_acquire)) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Connection>(
          fd, server_->options_.max_frame_bytes);
      conn->last_active_ms = SteadyMillis();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
        RTREC_LOG(kError) << "epoll_ctl(add conn): " << strerror(errno);
        continue;  // UniqueFd closes the socket.
      }
      conns_.emplace(fd, std::move(conn));
      server_->metrics_->GetGauge("net.server.connections.active")->Add(1);
    }
  }

  void HandleEvent(int fd, std::uint32_t events) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // Already closed this pass.
    Connection* conn = it->second.get();
    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConnection(fd);
      return;
    }
    if ((events & EPOLLIN) && !ReadAndHandle(conn)) {
      CloseConnection(fd);
      return;
    }
    if (!FlushWrites(conn)) {
      CloseConnection(fd);
      return;
    }
    if (conn->close_after_flush && !conn->HasPendingOutput()) {
      CloseConnection(fd);
    }
  }

  /// Drains the socket and handles every complete frame. Returns false
  /// if the connection must be closed now (EOF or fatal error).
  bool ReadAndHandle(Connection* conn) {
    char buf[64 * 1024];
    while (!conn->close_after_flush) {
      // An injected read fault plays as a peer that died mid-stream.
      if (!RTREC_FAULT_POINT("net.socket.read").ok()) return false;
      ssize_t n = read(conn->fd.get(), buf, sizeof(buf));
      if (n == 0) return false;  // Peer closed.
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      server_->metrics_->GetCounter("net.server.bytes.in")->Increment(n);
      conn->last_active_ms = SteadyMillis();
      conn->decoder.Append(std::string_view(buf, static_cast<std::size_t>(n)));
      while (!conn->close_after_flush) {
        StatusOr<Frame> frame = conn->decoder.Next();
        if (frame.ok()) {
          HandleFrame(conn, *frame);
          continue;
        }
        if (frame.status().IsNotFound()) break;  // Partial frame: wait.
        // Structurally corrupt stream: framing is lost, so answer once
        // (request id unknowable -> 0) and drop the connection.
        server_->metrics_->GetCounter("net.server.protocol_errors")
            ->Increment();
        QueueResponse(conn,
                      EncodeErrorResponse(0, WireError::kMalformedFrame,
                                          frame.status().message()));
        conn->close_after_flush = true;
      }
    }
    return true;
  }

  void HandleFrame(Connection* conn, const Frame& frame) {
    server_->DispatchFrame(frame, &conn->ctx,
                           [this, conn](std::string&& bytes) {
                             QueueResponse(conn, std::move(bytes));
                           });
    if (conn->ctx.close_connection) conn->close_after_flush = true;
  }

  void QueueResponse(Connection* conn, std::string bytes) {
    conn->outq.push_back(std::move(bytes));
  }

  /// Writes as much buffered output as the socket accepts, gathering up
  /// to kMaxIov queued response frames per writev call. Returns false on
  /// a fatal write error.
  bool FlushWrites(Connection* conn) {
    constexpr int kMaxIov = 64;
    while (!conn->outq.empty()) {
      // An injected write fault plays as a connection reset under us.
      if (!RTREC_FAULT_POINT("net.socket.write").ok()) return false;
      struct iovec iov[kMaxIov];
      int iovcnt = 0;
      for (const std::string& chunk : conn->outq) {
        const std::size_t skip = iovcnt == 0 ? conn->outpos : 0;
        iov[iovcnt].iov_base = const_cast<char*>(chunk.data() + skip);
        iov[iovcnt].iov_len = chunk.size() - skip;
        if (++iovcnt == kMaxIov) break;
      }
      ssize_t n = writev(conn->fd.get(), iov, iovcnt);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      conn->last_active_ms = SteadyMillis();
      server_->metrics_->GetCounter("net.server.bytes.out")->Increment(n);
      std::size_t consumed = static_cast<std::size_t>(n);
      while (consumed > 0) {
        const std::size_t front_left = conn->outq.front().size() - conn->outpos;
        if (consumed >= front_left) {
          consumed -= front_left;
          conn->outq.pop_front();
          conn->outpos = 0;
        } else {
          conn->outpos += consumed;
          consumed = 0;
        }
      }
    }
    // Arm EPOLLOUT only while output is pending.
    const bool want_out = conn->HasPendingOutput();
    if (want_out != conn->epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
      ev.data.fd = conn->fd.get();
      if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) < 0) {
        return false;
      }
      conn->epollout_armed = want_out;
    }
    return true;
  }

  void CloseConnection(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    conns_.erase(it);  // UniqueFd closes the socket.
    server_->metrics_->GetGauge("net.server.connections.active")->Add(-1);
  }

  void SweepIdle() {
    const int timeout_ms = server_->options_.idle_timeout_ms;
    if (timeout_ms <= 0) return;
    const std::int64_t now = SteadyMillis();
    if (now - last_sweep_ms_ < std::min<std::int64_t>(timeout_ms / 4 + 1, 1000))
      return;
    last_sweep_ms_ = now;
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns_) {
      if (now - conn->last_active_ms > timeout_ms) idle.push_back(fd);
    }
    for (int fd : idle) {
      server_->metrics_->GetCounter("net.server.connections.idle_closed")
          ->Increment();
      CloseConnection(fd);
    }
  }

  RecServer* server_;
  int index_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex pending_mu_;
  std::vector<int> pending_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::int64_t last_sweep_ms_ = 0;
};

// ---------------------------------------------------------------------------
// RecServer.

RecServer::RecServer(RecommendationService* service, Options options)
    : service_(service), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_in_flight < 1) options_.max_in_flight = 1;
  if (options_.max_wire_version < 1) options_.max_wire_version = 1;
  if (options_.max_wire_version > kMaxWireVersion) {
    options_.max_wire_version = kMaxWireVersion;
  }
  if (options_.spans != nullptr) {
    obs::SpanCollector* spans = options_.spans;
    span_names_.rpc_recommend = spans->InternName("rpc.recommend");
    span_names_.rpc_batch = spans->InternName("rpc.batch_recommend");
    span_names_.rpc_observe = spans->InternName("rpc.observe");
    span_names_.rpc_register = spans->InternName("rpc.register_profile");
    span_names_.decode = spans->InternName("decode");
    span_names_.engine = spans->InternName("engine");
    span_names_.respond = spans->InternName("respond");
  }
}

int RecServer::ServerMaxWireVersion() const {
  return options_.max_wire_version;
}

namespace {

/// Builds "<prefix>.<rpc>.latency_us" without StringPrintf's vararg trip.
std::string RpcMetricName(const char* prefix, const char* rpc) {
  std::string name(prefix);
  name += '.';
  name += rpc;
  name += ".latency_us";
  return name;
}

}  // namespace

void RecServer::DispatchFrame(const Frame& frame, RequestContext* ctx,
                              const SendFn& send) {
  // Hello is connection setup, not traffic: keeping it out of
  // net.server.requests preserves that counter's meaning (RPCs served)
  // across the v1->v2 transition.
  if (frame.type == MessageType::kHelloRequest) {
    metrics_->GetCounter("net.v2.hellos")->Increment();
  } else {
    metrics_->GetCounter("net.server.requests")->Increment();
  }
  // Sampled by scrapes: how many decoded-but-unanswered requests exist
  // right now across all connections and transports. With inline
  // handling this tracks handler concurrency, and it spikes when
  // pipelined batches queue up behind a slow RPC.
  Gauge* inflight = metrics_->GetGauge("net.server.pipelined_inflight");
  inflight->Add(1);

  // Version gate (docs/WIRE_PROTOCOL.md §5): v1 frames are always
  // legal; v2 frames only on a connection that negotiated v2 via Hello.
  // A trace extension (decoded into frame.has_trace) counts as part of
  // the version byte: on a connection that did not negotiate the
  // feature it is a version violation, which is what a pre-trace server
  // answers when it sees the marker bit (§5.5).
  const bool version_ok =
      (frame.version == kWireVersion ||
       (frame.version == kWireVersionV2 &&
        ctx->negotiated_version >= kWireVersionV2)) &&
      (!frame.has_trace ||
       (ctx->negotiated_features & kFeatureTracePropagation) != 0);
  if (!version_ok) {
    metrics_->GetCounter("net.server.protocol_errors")->Increment();
    send(EncodeErrorResponse(
        frame.request_id, WireError::kBadVersion,
        StringPrintf("frame version %u not allowed here (negotiated %u)",
                     frame.version, ctx->negotiated_version)));
    ctx->close_connection = true;  // Framing discipline is gone.
    inflight->Add(-1);
    return;
  }
  switch (frame.type) {
    case MessageType::kPingRequest: {
      // Health checks bypass admission control by design.
      ScopedLatencyTimer timer(
          metrics_->GetHistogram(RpcMetricName(ctx->rpc_prefix, "ping")));
      send(EncodePongResponse(frame.request_id));
      break;
    }
    case MessageType::kStatsRequest: {
      // Observability bypasses admission control like ping does: a
      // scrape must still answer while the server is shedding load.
      ScopedLatencyTimer timer(
          metrics_->GetHistogram(RpcMetricName(ctx->rpc_prefix, "stats")));
      metrics_->GetCounter("net.server.stats_scrapes")->Increment();
      // Keep the whole frame under the peer's likely cap: leave room
      // for the length prefix, header, and body length field.
      const std::size_t max_text = options_.max_frame_bytes > 64
                                       ? options_.max_frame_bytes - 64
                                       : 0;
      send(EncodeStatsResponse(frame.request_id, metrics_->PrometheusText(),
                               max_text));
      break;
    }
    case MessageType::kHelloRequest:
      if (ServerMaxWireVersion() < kWireVersionV2) {
        // A v1-capped server predates Hello: answer UNKNOWN_TYPE, which
        // is exactly what clients probe for when falling back (§5).
        SendUnknownType(frame, send);
        break;
      }
      HandleHello(frame, ctx, send);
      break;
    case MessageType::kBatchRecommendRequest:
      if (ctx->negotiated_version < kWireVersionV2) {
        // v2-only RPC on an un-negotiated connection. A genuine v1
        // server would say UNKNOWN_TYPE; we do the same so a confused
        // client learns the same lesson either way (§7).
        SendUnknownType(frame, send);
        break;
      }
      HandleServiceRpc(frame, ctx, send);
      break;
    case MessageType::kRecommendRequest:
    case MessageType::kObserveRequest:
    case MessageType::kRegisterProfileRequest:
      HandleServiceRpc(frame, ctx, send);
      break;
    default:
      SendUnknownType(frame, send);
      break;
  }
  inflight->Add(-1);
}

void RecServer::SendUnknownType(const Frame& frame, const SendFn& send) {
  metrics_->GetCounter("net.server.protocol_errors")->Increment();
  send(EncodeErrorResponse(
      frame.request_id, WireError::kUnknownType,
      StringPrintf("server does not handle type 0x%02x",
                   static_cast<unsigned>(frame.type))));
}

void RecServer::HandleHello(const Frame& frame, RequestContext* ctx,
                            const SendFn& send) {
  StatusOr<HelloRequest> hello = DecodeHelloRequest(frame);
  if (!hello.ok()) {
    metrics_->GetCounter("net.server.protocol_errors")->Increment();
    send(EncodeErrorResponse(frame.request_id, WireError::kMalformedFrame,
                             hello.status().message()));
    return;
  }
  const int server_max = ServerMaxWireVersion();
  if (hello->min_version > server_max) {
    metrics_->GetCounter("net.server.protocol_errors")->Increment();
    send(EncodeErrorResponse(
        frame.request_id, WireError::kBadVersion,
        StringPrintf("client requires wire version >= %u; server speaks "
                     "up to %d",
                     hello->min_version, server_max)));
    ctx->close_connection = true;  // No dialect in common.
    return;
  }
  const std::uint8_t negotiated =
      static_cast<std::uint8_t>(std::min<int>(hello->max_version, server_max));
  ctx->negotiated_version = negotiated;
  // Feature bits: ack the intersection of what the client offered and
  // what this server supports. Trace propagation needs v2 framing
  // semantics, so it is never acked on a v1 negotiation.
  std::uint32_t features = 0;
  if (negotiated >= kWireVersionV2) {
    features = hello->features & kFeatureTracePropagation;
  }
  ctx->negotiated_features = features;
  HelloReply reply;
  reply.version = negotiated;
  reply.features = features;
  reply.max_in_flight_hint = static_cast<std::uint32_t>(options_.max_in_flight);
  reply.max_batch = static_cast<std::uint32_t>(kMaxBatchedRequests);
  send(EncodeHelloResponse(frame.request_id, reply));
}

/// The RPCs that reach the RecommendationService; all sit behind the
/// in-flight admission gate (a batch holds one slot for its whole run).
void RecServer::HandleServiceRpc(const Frame& frame, RequestContext* ctx,
                                 const SendFn& send) {
  if (!TryAcquireInFlight()) {
    metrics_->GetCounter("net.server.requests.shed")->Increment();
    send(EncodeErrorResponse(
        frame.request_id, WireError::kOverloaded,
        StringPrintf("in-flight cap %d reached; retry later",
                     options_.max_in_flight)));
    return;
  }
  // Every admitted service RPC is a trace boundary. A frame carrying a
  // sampled upstream context ADOPTS it — the root made the sampling
  // decision (Dapper semantics), so this shard's spans stitch into the
  // caller's trace by id instead of starting a fresh one. Everything
  // else mints a root here, head-sampled 1-in-N. The sampled context is
  // installed as the thread-current trace so spans recorded inside the
  // service (and the KV stores under it) nest under this request.
  Tracer* const tracer = options_.tracer;
  TraceContext trace;
  const bool adopt = frame.has_trace &&
                     (frame.trace_flags & kTraceFlagSampled) != 0 &&
                     (ctx->negotiated_features & kFeatureTracePropagation) != 0;
  if (tracer != nullptr) {
    trace = adopt ? tracer->AdoptTrace(frame.trace_id, frame.trace_hop)
                  : tracer->StartTrace();
  }
  std::optional<ScopedTraceContext> trace_scope;
  if (trace.sampled()) trace_scope.emplace(trace);
  // Structured spans: staged per-request, committed at Finish when the
  // trace is sampled or the request turns out slow (tail capture).
  obs::RequestRecorder recorder(options_.spans, trace, options_.trace_slow_us,
                                adopt ? obs::kSpanFlagAdopted : 0);
  if (options_.handler_delay_for_test_ms > 0) {
    // Inside the recorder window so the injected latency is also visible
    // to tail capture — admission tests only need the slot held.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.handler_delay_for_test_ms));
  }
  const auto send_decode_error = [this, &frame, &send](const Status& status) {
    // Parsed structurally but the body would not decode: the stream is
    // still framed, so answer and keep the connection.
    metrics_->GetCounter("net.server.protocol_errors")->Increment();
    send(EncodeErrorResponse(frame.request_id, WireError::kMalformedFrame,
                             status.message()));
  };
  switch (frame.type) {
    case MessageType::kRecommendRequest: {
      ScopedLatencyTimer timer(
          metrics_->GetHistogram(RpcMetricName(ctx->rpc_prefix, "recommend")));
      StatusOr<RecRequest> request = [&] {
        const auto span = recorder.Span(span_names_.decode);
        return DecodeRecommendRequest(frame);
      }();
      if (!request.ok()) {
        send_decode_error(request.status());
        break;
      }
      RecommendOutcome outcome = [&] {
        const auto span = recorder.Span(span_names_.engine);
        return RecommendWithFallback(*request);
      }();
      {
        const auto span = recorder.Span(span_names_.respond);
        if (outcome.ok) {
          send(EncodeRecommendResponse(frame.request_id, outcome.videos,
                                       outcome.flags));
        } else {
          send(EncodeErrorResponse(frame.request_id, outcome.error,
                                   outcome.message));
        }
      }
      break;
    }
    case MessageType::kBatchRecommendRequest: {
      ScopedLatencyTimer timer(metrics_->GetHistogram(
          RpcMetricName(ctx->rpc_prefix, "batch_recommend")));
      StatusOr<std::vector<RecRequest>> batch = [&] {
        const auto span = recorder.Span(span_names_.decode);
        return DecodeBatchRecommendRequest(frame);
      }();
      if (!batch.ok()) {
        send_decode_error(batch.status());
        break;
      }
      metrics_->GetCounter("net.v2.batched_requests")
          ->Increment(batch->size());
      std::vector<BatchRecommendItem> items;
      items.reserve(batch->size());
      {
        const auto span = recorder.Span(span_names_.engine);
        for (const RecRequest& request : *batch) {
          RecommendOutcome outcome = RecommendWithFallback(request);
          BatchRecommendItem item;
          if (outcome.ok) {
            item.reply.flags = outcome.flags;
            item.reply.videos = std::move(outcome.videos);
          } else {
            item.error = static_cast<std::uint8_t>(outcome.error);
          }
          items.push_back(std::move(item));
        }
      }
      {
        const auto span = recorder.Span(span_names_.respond);
        send(EncodeBatchRecommendResponse(frame.request_id, items));
      }
      break;
    }
    case MessageType::kObserveRequest: {
      ScopedLatencyTimer timer(
          metrics_->GetHistogram(RpcMetricName(ctx->rpc_prefix, "observe")));
      StatusOr<UserAction> action = [&] {
        const auto span = recorder.Span(span_names_.decode);
        return DecodeObserveRequest(frame);
      }();
      if (!action.ok()) {
        send_decode_error(action.status());
        break;
      }
      {
        const auto span = recorder.Span(span_names_.engine);
        service_->Observe(*action);
      }
      send(EncodeAckResponse(frame.request_id));
      break;
    }
    case MessageType::kRegisterProfileRequest: {
      ScopedLatencyTimer timer(metrics_->GetHistogram(
          RpcMetricName(ctx->rpc_prefix, "register_profile")));
      StatusOr<ProfileUpdate> update = [&] {
        const auto span = recorder.Span(span_names_.decode);
        return DecodeRegisterProfileRequest(frame);
      }();
      if (!update.ok()) {
        send_decode_error(update.status());
        break;
      }
      {
        const auto span = recorder.Span(span_names_.engine);
        service_->RegisterProfile(update->user, update->profile);
      }
      send(EncodeAckResponse(frame.request_id));
      break;
    }
    default:
      break;  // Unreachable: caller dispatched on type.
  }
  if (trace.sampled()) {
    const char* stage =
        frame.type == MessageType::kRecommendRequest ? "wire.recommend"
        : frame.type == MessageType::kBatchRecommendRequest
            ? "wire.batch_recommend"
        : frame.type == MessageType::kObserveRequest ? "wire.observe"
                                                     : "wire.register_profile";
    tracer->RecordSinceRoot(trace, stage);
  }
  recorder.Finish(
      frame.type == MessageType::kRecommendRequest ? span_names_.rpc_recommend
      : frame.type == MessageType::kBatchRecommendRequest
          ? span_names_.rpc_batch
      : frame.type == MessageType::kObserveRequest ? span_names_.rpc_observe
                                                   : span_names_.rpc_register);
  ReleaseInFlight();
}

/// The Recommend serving ladder: breaker-open -> straight fallback;
/// engine OK within its deadline -> full answer; engine error or
/// deadline breach -> fallback with the DEGRADED flag (or, with the
/// fallback disabled, a typed error / the late answer).
RecServer::RecommendOutcome RecServer::RecommendWithFallback(
    const RecRequest& request) {
  RecommendOutcome out;
  const int deadline_ms = options_.recommend_deadline_ms;
  const bool fallback_on = options_.degraded_fallback;
  if (fallback_on && InBreakerCooldown(SteadyMillis())) {
    out.videos = service_->FallbackRecommend(request);
    out.flags |= kRecommendFlagDegraded;
    out.ok = true;
  } else {
    const std::int64_t start_ms = SteadyMillis();
    StatusOr<std::vector<ScoredVideo>> recs = service_->Recommend(request);
    const std::int64_t elapsed_ms = SteadyMillis() - start_ms;
    if (!recs.ok() && recs.status().IsInvalidArgument()) {
      // The client's fault, not the engine's: no breaker bookkeeping,
      // no fallback masking.
      out.error = WireError::kBadRequest;
      out.message = recs.status().message();
      return out;
    }
    const bool late = deadline_ms > 0 && elapsed_ms > deadline_ms;
    if (late) {
      metrics_->GetCounter("net.server.deadline_breaches")->Increment();
    }
    if (recs.ok() && !late) {
      RecordEngineSuccess();
      out.videos = std::move(*recs);
      out.ok = true;
    } else {
      RecordEngineFailure(SteadyMillis());
      if (fallback_on) {
        out.videos = service_->FallbackRecommend(request);
        out.flags |= kRecommendFlagDegraded;
        out.ok = true;
      } else if (recs.ok()) {
        // Late but the fallback is disabled: the stale answer is all we
        // have.
        out.videos = std::move(*recs);
        out.ok = true;
      } else {
        out.error = WireError::kInternal;
        out.message = recs.status().message();
      }
    }
  }
  if (out.ok && (out.flags & kRecommendFlagDegraded) != 0) {
    metrics_->GetCounter("server.degraded_responses")->Increment();
  }
  return out;
}

RecServer::~RecServer() { Stop(); }

Status RecServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  auto listener =
      ListenTcp(options_.host, options_.port, options_.accept_backlog);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;

  workers_.clear();
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(this, i);
    RTREC_RETURN_IF_ERROR(worker->Init());
    workers_.push_back(std::move(worker));
  }

  if (!options_.shm_name.empty()) {
    ShmServer::Options shm_options;
    shm_options.slot_count = options_.shm_slot_count;
    shm_options.max_frame_bytes = options_.max_frame_bytes;
    shm_options.metrics = metrics_;
    auto shm = ShmServer::Create(
        options_.shm_name, shm_options,
        [this](const Frame& frame, ShmServer::ConnState* conn,
               const ShmServer::SendFn& send) {
          // Bridge the shm attachment's negotiation state into the
          // shared dispatch path; "shm.rpc" keys the per-transport
          // latency histograms.
          RequestContext ctx;
          ctx.negotiated_version = conn->negotiated_version;
          ctx.negotiated_features = conn->negotiated_features;
          ctx.rpc_prefix = "shm.rpc";
          DispatchFrame(frame, &ctx,
                        [&send](std::string&& bytes) { send(std::move(bytes)); });
          conn->negotiated_version = ctx.negotiated_version;
          conn->negotiated_features = ctx.negotiated_features;
          if (ctx.close_connection) conn->close = true;
        });
    if (!shm.ok()) {
      workers_.clear();
      listen_fd_.Reset();
      port_ = 0;
      return shm.status();
    }
    shm_server_ = std::move(*shm);
  }

  for (auto& worker : workers_) worker->StartThread();
  acceptor_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  RTREC_LOG(kInfo) << "RecServer listening on " << options_.host << ":"
                   << port_ << " (" << options_.num_workers << " workers, "
                   << options_.max_in_flight << " in-flight cap"
                   << (shm_server_ ? ", shm " + options_.shm_name : "")
                   << ")";
  return Status::OK();
}

void RecServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shm_server_.reset();  // Marks the segment down; clients see Unavailable.
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) worker->RequestStop();
  for (auto& worker : workers_) worker->Join();
  workers_.clear();
  listen_fd_.Reset();
  port_ = 0;
  RTREC_LOG(kInfo) << "RecServer stopped";
}

void RecServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Status ready = WaitReady(listen_fd_.get(), /*for_read=*/true,
                             /*timeout_ms=*/250);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (!ready.ok()) {
      if (ready.IsUnavailable()) continue;  // Poll timeout: re-check stop.
      RTREC_LOG(kError) << "acceptor poll failed: " << ready.ToString();
      break;
    }
    while (true) {
      int fd = accept4(listen_fd_.get(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        RTREC_LOG(kWarn) << "accept4: " << strerror(errno);
        break;
      }
      // An injected accept fault drops the new connection on the floor,
      // as a listener hitting EMFILE or a dying acceptor would.
      if (!RTREC_FAULT_POINT("net.socket.accept").ok()) {
        ::close(fd);
        continue;
      }
      SetTcpNoDelay(fd);  // Best effort; a failure only costs latency.
      metrics_->GetCounter("net.server.connections.accepted")->Increment();
      const std::size_t target =
          next_worker_.fetch_add(1, std::memory_order_relaxed) %
          workers_.size();
      workers_[target]->AddConnection(fd);
    }
  }
}

bool RecServer::TryAcquireInFlight() {
  int current = in_flight_.load(std::memory_order_relaxed);
  while (current < options_.max_in_flight) {
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void RecServer::ReleaseInFlight() {
  in_flight_.fetch_sub(1, std::memory_order_release);
}

bool RecServer::InBreakerCooldown(std::int64_t now_ms) const {
  return now_ms < degraded_until_ms_.load(std::memory_order_acquire);
}

void RecServer::RecordEngineFailure(std::int64_t now_ms) {
  const int threshold = options_.breaker_failure_threshold;
  if (threshold <= 0) return;
  const int failures =
      consecutive_engine_failures_.fetch_add(1, std::memory_order_relaxed) +
      1;
  if (failures >= threshold) {
    degraded_until_ms_.store(now_ms + options_.breaker_cooldown_ms,
                             std::memory_order_release);
    consecutive_engine_failures_.store(0, std::memory_order_relaxed);
    metrics_->GetCounter("net.server.breaker_trips")->Increment();
    RTREC_LOG(kWarn) << "Recommend circuit breaker tripped; serving "
                        "degraded fallback for "
                     << options_.breaker_cooldown_ms << " ms";
  }
}

void RecServer::RecordEngineSuccess() {
  consecutive_engine_failures_.store(0, std::memory_order_relaxed);
}

}  // namespace rtrec
