#ifndef RTREC_NET_REC_SERVER_H_
#define RTREC_NET_REC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/recommendation_service.h"

namespace rtrec {

/// The network front of the serving stack: an epoll-based TCP server
/// speaking the rtrec wire protocol (net/wire.h) over a
/// RecommendationService.
///
/// Threading model:
///  - one acceptor thread owns the listening socket and hands accepted
///    connections to the workers round-robin;
///  - N worker threads each run an epoll event loop over their share of
///    the connections (a connection lives on one worker for its whole
///    lifetime, so per-connection state needs no locking);
///  - request handling runs inline on the worker: decode, call the
///    service, encode, flush. The service itself is thread-safe, so
///    workers call it concurrently.
///
/// Backpressure: a global in-flight gate caps concurrently handled
/// service RPCs. When the cap is reached, the request is answered
/// immediately with an OVERLOADED error instead of queueing — bounded
/// work, explicit shedding, client decides whether to retry. Pings are
/// exempt so health checks stay responsive under load.
///
/// Malformed input: a structurally corrupt stream (bad length prefix)
/// gets one typed MALFORMED_FRAME error and the connection is closed;
/// an undecodable body on an intact frame gets a typed error and the
/// connection stays open. Idle connections are reaped after
/// Options::idle_timeout_ms.
///
/// Graceful degradation: Recommend carries a latency budget
/// (Options::recommend_deadline_ms) and a circuit breaker. When the
/// engine errors, breaches the budget, or the breaker is open, the
/// request is answered from the demographic hot-video fallback and
/// flagged DEGRADED on the wire instead of failing — recommendations
/// keep flowing while the engine misbehaves.
class RecServer {
 public:
  struct Options {
    /// IPv4 address to bind; loopback by default.
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    std::uint16_t port = 0;
    /// Worker event-loop threads.
    int num_workers = 2;
    /// Max service RPCs handled concurrently before shedding.
    int max_in_flight = 256;
    /// Connections idle longer than this are closed. <= 0 disables.
    int idle_timeout_ms = 60'000;
    /// Frames with a larger payload are rejected as corrupt.
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// listen(2) backlog.
    int accept_backlog = 128;
    /// Registry for server metrics (counters, gauges, histograms under
    /// "net.server."). Null falls back to an internal registry.
    MetricsRegistry* metrics = nullptr;
    /// Request tracing (common/trace.h): when set, every admitted
    /// service RPC is a trace root (sampled 1-in-N by the tracer);
    /// sampled requests install a thread-current trace for the handler's
    /// duration — so service / engine / KV spans attach to it — and
    /// record "trace.e2e.wire.<rpc>.us" when the handler finishes. Null
    /// disables tracing at zero cost.
    Tracer* tracer = nullptr;
    /// Test hook: sleep this long inside each admitted service RPC, to
    /// make admission-control shedding deterministic. 0 in production.
    int handler_delay_for_test_ms = 0;

    /// Per-request latency budget for Recommend. When > 0 and the engine
    /// takes longer, the late answer is discarded in favour of the
    /// degraded fallback (when enabled) and the request counts as an
    /// engine failure for the circuit breaker. 0 disables the deadline.
    int recommend_deadline_ms = 0;
    /// Answer Recommend from the demographic hot-video fallback —
    /// flagged DEGRADED on the wire and counted in
    /// "server.degraded_responses" — when the engine errors or breaches
    /// its deadline budget. When false, engine errors surface as typed
    /// wire errors (the pre-degradation behaviour).
    bool degraded_fallback = true;
    /// Consecutive Recommend engine failures (errors or deadline
    /// breaches) that trip the circuit breaker. While tripped, Recommend
    /// is served straight from the fallback for breaker_cooldown_ms
    /// without touching the engine, giving it room to recover. <= 0
    /// disables the breaker.
    int breaker_failure_threshold = 8;
    int breaker_cooldown_ms = 2'000;
  };

  RecServer(RecommendationService* service, Options options);
  ~RecServer();  ///< Stops the server if still running.

  RecServer(const RecServer&) = delete;
  RecServer& operator=(const RecServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads.
  Status Start();

  /// Stops accepting, wakes every worker, closes all connections, and
  /// joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with Options::port == 0). 0 before Start.
  std::uint16_t port() const { return port_; }

  /// The registry holding this server's metrics.
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  class Worker;

  void AcceptLoop();

  /// Admission gate: true (and a slot held) if under max_in_flight.
  bool TryAcquireInFlight();
  void ReleaseInFlight();

  /// Circuit breaker over the Recommend engine path (worker threads
  /// share this state through atomics).
  bool InBreakerCooldown(std::int64_t now_ms) const;
  void RecordEngineFailure(std::int64_t now_ms);
  void RecordEngineSuccess();

  RecommendationService* service_;
  Options options_;

  std::unique_ptr<MetricsRegistry> owned_metrics_;  // When options.metrics==0.
  MetricsRegistry* metrics_ = nullptr;

  UniqueFd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<std::size_t> next_worker_{0};
  std::atomic<int> consecutive_engine_failures_{0};
  std::atomic<std::int64_t> degraded_until_ms_{0};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
};

}  // namespace rtrec

#endif  // RTREC_NET_REC_SERVER_H_
