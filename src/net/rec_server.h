#ifndef RTREC_NET_REC_SERVER_H_
#define RTREC_NET_REC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/recommendation_service.h"

namespace rtrec {

namespace obs {
class SpanCollector;
}  // namespace obs

class ShmServer;

/// The network front of the serving stack: an epoll-based TCP server
/// speaking the rtrec wire protocol (net/wire.h) over a
/// RecommendationService, optionally doubled by a same-host
/// shared-memory transport (Options::shm_name) that funnels into the
/// same dispatch path.
///
/// Threading model:
///  - one acceptor thread owns the listening socket and hands accepted
///    connections to the workers round-robin;
///  - N worker threads each run an epoll event loop over their share of
///    the connections (a connection lives on one worker for its whole
///    lifetime, so per-connection state needs no locking);
///  - request handling runs inline on the worker: decode, call the
///    service, encode, flush. The service itself is thread-safe, so
///    workers call it concurrently.
///
/// Pipelining: every frame carries a request id and the server answers
/// in whatever order handling completes, so a v2 client may keep many
/// requests in flight per connection (docs/WIRE_PROTOCOL.md §6).
/// Responses are gathered with writev from a queue of encoded frames —
/// one syscall flushes many pipelined replies.
///
/// Backpressure: a global in-flight gate caps concurrently handled
/// service RPCs. When the cap is reached, the request is answered
/// immediately with an OVERLOADED error instead of queueing — bounded
/// work, explicit shedding, client decides whether to retry. Pings are
/// exempt so health checks stay responsive under load.
///
/// Malformed input: a structurally corrupt stream (bad length prefix)
/// gets one typed MALFORMED_FRAME error and the connection is closed;
/// an undecodable body on an intact frame gets a typed error and the
/// connection stays open. Idle connections are reaped after
/// Options::idle_timeout_ms.
///
/// Graceful degradation: Recommend carries a latency budget
/// (Options::recommend_deadline_ms) and a circuit breaker. When the
/// engine errors, breaches the budget, or the breaker is open, the
/// request is answered from the demographic hot-video fallback and
/// flagged DEGRADED on the wire instead of failing — recommendations
/// keep flowing while the engine misbehaves.
class RecServer {
 public:
  struct Options {
    /// IPv4 address to bind; loopback by default.
    std::string host = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back via port().
    std::uint16_t port = 0;
    /// Worker event-loop threads.
    int num_workers = 2;
    /// Max service RPCs handled concurrently before shedding.
    int max_in_flight = 256;
    /// Connections idle longer than this are closed. <= 0 disables.
    int idle_timeout_ms = 60'000;
    /// Frames with a larger payload are rejected as corrupt.
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// listen(2) backlog.
    int accept_backlog = 128;
    /// Registry for server metrics (counters, gauges, histograms under
    /// "net.server."). Null falls back to an internal registry.
    MetricsRegistry* metrics = nullptr;
    /// Request tracing (common/trace.h): when set, every admitted
    /// service RPC is a trace root (sampled 1-in-N by the tracer);
    /// sampled requests install a thread-current trace for the handler's
    /// duration — so service / engine / KV spans attach to it — and
    /// record "trace.e2e.wire.<rpc>.us" when the handler finishes. Null
    /// disables tracing at zero cost.
    Tracer* tracer = nullptr;
    /// Structured span recording (obs/span_collector.h): when set, every
    /// traced request stages per-stage spans and commits them to the
    /// collector at request end — head-sampled traces always, untraced
    /// requests when their e2e latency crosses trace_slow_us (tail
    /// capture). Null disables span recording; histogram tracing via
    /// `tracer` is unaffected.
    obs::SpanCollector* spans = nullptr;
    /// Tail-capture threshold in µs: an untraced request slower than
    /// this is retroactively kept as a slow-capture trace. <= 0
    /// disables tail capture (only head-sampled traces record spans).
    std::int64_t trace_slow_us = 0;
    /// Test hook: sleep this long inside each admitted service RPC, to
    /// make admission-control shedding deterministic. 0 in production.
    int handler_delay_for_test_ms = 0;

    /// Per-request latency budget for Recommend. When > 0 and the engine
    /// takes longer, the late answer is discarded in favour of the
    /// degraded fallback (when enabled) and the request counts as an
    /// engine failure for the circuit breaker. 0 disables the deadline.
    int recommend_deadline_ms = 0;
    /// Answer Recommend from the demographic hot-video fallback —
    /// flagged DEGRADED on the wire and counted in
    /// "server.degraded_responses" — when the engine errors or breaches
    /// its deadline budget. When false, engine errors surface as typed
    /// wire errors (the pre-degradation behaviour).
    bool degraded_fallback = true;
    /// Consecutive Recommend engine failures (errors or deadline
    /// breaches) that trip the circuit breaker. While tripped, Recommend
    /// is served straight from the fallback for breaker_cooldown_ms
    /// without touching the engine, giving it room to recover. <= 0
    /// disables the breaker.
    int breaker_failure_threshold = 8;
    int breaker_cooldown_ms = 2'000;

    /// Highest wire version this server negotiates in the v2 Hello
    /// handshake (docs/WIRE_PROTOCOL.md §5). Setting 1 makes the server
    /// behave exactly like a pre-v2 build — Hello is answered with
    /// UNKNOWN_TYPE and v2 frames are rejected — which the interop
    /// tests use. Clamped to [1, kMaxWireVersion].
    int max_wire_version = kMaxWireVersion;
    /// When non-empty, also serve the same RPCs over the same-host
    /// shared-memory transport (net/shm_transport.h) under this POSIX
    /// shm object name (e.g. from ParseShmAddress). Empty disables.
    std::string shm_name;
    /// Concurrent same-host clients (slots) for the shm transport.
    std::uint32_t shm_slot_count = 8;
  };

  /// Per-connection protocol state shared by every transport. A
  /// connection starts at v1 and is upgraded by a successful Hello.
  struct RequestContext {
    std::uint8_t negotiated_version = kWireVersion;
    /// Feature bits acked in this connection's Hello (net/wire.h
    /// kFeature*). A frame carrying the trace extension on a connection
    /// that did not negotiate kFeatureTracePropagation is a version
    /// violation — exactly what a pre-trace server would answer.
    std::uint32_t negotiated_features = 0;
    /// Metric prefix for per-RPC latency histograms; distinguishes
    /// transports ("net.server.rpc" for TCP, "shm.rpc" for shm).
    const char* rpc_prefix = "net.server.rpc";
    /// Set by dispatch when the connection must be torn down after the
    /// queued responses flush (framing lost, version violation).
    bool close_connection = false;
  };

  /// Queues one encoded response frame on the originating connection.
  using SendFn = std::function<void(std::string&&)>;

  RecServer(RecommendationService* service, Options options);
  ~RecServer();  ///< Stops the server if still running.

  RecServer(const RecServer&) = delete;
  RecServer& operator=(const RecServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker threads.
  Status Start();

  /// Stops accepting, wakes every worker, closes all connections, and
  /// joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (useful with Options::port == 0). 0 before Start.
  std::uint16_t port() const { return port_; }

  /// The registry holding this server's metrics.
  MetricsRegistry& metrics() { return *metrics_; }

 private:
  class Worker;

  void AcceptLoop();

  /// Transport-independent RPC dispatch: decodes nothing about how the
  /// frame arrived, only what it says. Both the TCP workers and the shm
  /// poller funnel every decoded frame through here, so negotiation,
  /// admission, batching, and the degraded ladder behave identically on
  /// both transports. Thread-safe (workers + shm poller call it
  /// concurrently).
  void DispatchFrame(const Frame& frame, RequestContext* ctx,
                     const SendFn& send);
  void HandleHello(const Frame& frame, RequestContext* ctx,
                   const SendFn& send);
  void SendUnknownType(const Frame& frame, const SendFn& send);
  void HandleServiceRpc(const Frame& frame, RequestContext* ctx,
                        const SendFn& send);

  /// Result of one Recommend through the breaker/deadline/fallback
  /// ladder; shared by the single and batched RPC paths.
  struct RecommendOutcome {
    bool ok = false;
    std::uint8_t flags = 0;
    std::vector<ScoredVideo> videos;
    WireError error = WireError::kInternal;
    std::string message;
  };
  RecommendOutcome RecommendWithFallback(const RecRequest& request);

  /// Highest version Hello may negotiate (Options::max_wire_version
  /// clamped).
  int ServerMaxWireVersion() const;

  /// Admission gate: true (and a slot held) if under max_in_flight.
  bool TryAcquireInFlight();
  void ReleaseInFlight();

  /// Circuit breaker over the Recommend engine path (worker threads
  /// share this state through atomics).
  bool InBreakerCooldown(std::int64_t now_ms) const;
  void RecordEngineFailure(std::int64_t now_ms);
  void RecordEngineSuccess();

  RecommendationService* service_;
  Options options_;

  /// Span names interned once at construction (interning takes a lock;
  /// the handler path must not). All zero when Options::spans is null.
  struct SpanNames {
    std::uint16_t rpc_recommend = 0;
    std::uint16_t rpc_batch = 0;
    std::uint16_t rpc_observe = 0;
    std::uint16_t rpc_register = 0;
    std::uint16_t decode = 0;
    std::uint16_t engine = 0;
    std::uint16_t respond = 0;
  };
  SpanNames span_names_;

  std::unique_ptr<MetricsRegistry> owned_metrics_;  // When options.metrics==0.
  MetricsRegistry* metrics_ = nullptr;

  UniqueFd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<std::size_t> next_worker_{0};
  std::atomic<int> consecutive_engine_failures_{0};
  std::atomic<std::int64_t> degraded_until_ms_{0};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::unique_ptr<ShmServer> shm_server_;  // When Options::shm_name set.
};

}  // namespace rtrec

#endif  // RTREC_NET_REC_SERVER_H_
